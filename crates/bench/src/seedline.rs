//! The *pre-sharding* exploration engine, preserved as a live benchmark
//! baseline.
//!
//! `versa::explore` used to parallelize successor expansion per BFS level and
//! then funnel every discovered term through a single-threaded interner — a
//! plain `HashMap<P, StateId>` probed with std's SipHash, re-walking each
//! deep term on every probe (and every key again whenever the map grew).
//! That architecture has since been replaced by the expand-and-intern
//! pipeline over a sharded, hash-cached visited set; this module keeps the
//! old engine alive (states/transitions only — no traces, no LTS, no
//! instrumentation beyond the output-buffer contention proxy) so the A/B
//! comparison in `BENCH_exploration.json` measures the architecture we
//! actually shipped away from, not a synthetic strawman.
//!
//! Do **not** use this for analysis — it exists to be measured against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};

use acsr::{prioritized_steps, Env, Label, P};

/// What the baseline engine reports: enough to check it agrees with the real
/// engine and to bench it, nothing more.
#[derive(Clone, Debug, Default)]
pub struct SeedStats {
    /// Number of interned states.
    pub states: usize,
    /// Number of transitions traversed.
    pub transitions: usize,
    /// Number of deadlocked states found.
    pub deadlocks: usize,
    /// `try_lock` misses on the single output buffer.
    pub lock_contention: u64,
}

/// Breadth-first exploration with parallel expansion and *serial* interning —
/// the seed architecture. Deterministic in `threads` like the real engine
/// (chunked expansion preserves frontier order).
pub fn explore_seedline(env: &Env, initial: &P, threads: usize) -> SeedStats {
    let threads = threads.max(1);
    let contention = AtomicU64::new(0);
    let mut interner: HashMap<P, u32> = HashMap::new();
    let mut states: Vec<P> = vec![initial.clone()];
    interner.insert(initial.clone(), 0);
    let mut stats = SeedStats::default();
    let mut frontier: Vec<u32> = vec![0];

    while !frontier.is_empty() {
        let expanded: Vec<Vec<(Label, P)>> = if threads > 1 && frontier.len() >= 4 * threads {
            let chunk = frontier.len().div_ceil(threads);
            type ChunkResult = Vec<Vec<(Label, P)>>;
            let out: Mutex<Vec<(usize, ChunkResult)>> = Mutex::new(Vec::with_capacity(threads));
            std::thread::scope(|s| {
                for (ci, ids) in frontier.chunks(chunk).enumerate() {
                    let out = &out;
                    let contention = &contention;
                    let states = &states[..];
                    s.spawn(move || {
                        let local: ChunkResult = ids
                            .iter()
                            .map(|&id| prioritized_steps(env, &states[id as usize]))
                            .collect();
                        let mut guard = match out.try_lock() {
                            Ok(guard) => guard,
                            Err(TryLockError::WouldBlock) => {
                                contention.fetch_add(1, Ordering::Relaxed);
                                out.lock().expect("seedline lock poisoned")
                            }
                            Err(TryLockError::Poisoned(_)) => panic!("seedline lock poisoned"),
                        };
                        guard.push((ci, local));
                    });
                }
            });
            let mut chunks = out.into_inner().expect("seedline lock poisoned");
            chunks.sort_unstable_by_key(|(ci, _)| *ci);
            chunks.into_iter().flat_map(|(_, v)| v).collect()
        } else {
            frontier
                .iter()
                .map(|&id| prioritized_steps(env, &states[id as usize]))
                .collect()
        };

        let mut next: Vec<u32> = Vec::new();
        for succs in expanded {
            if succs.is_empty() {
                stats.deadlocks += 1;
            }
            for (_label, p) in succs {
                stats.transitions += 1;
                if interner.contains_key(&p) {
                    continue;
                }
                let id = states.len() as u32;
                interner.insert(p.clone(), id);
                states.push(p);
                next.push(id);
            }
        }
        frontier = next;
    }
    stats.states = states.len();
    stats.lock_contention = contention.into_inner();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use acsr::prelude::*;

    #[test]
    fn seedline_agrees_with_the_real_engine() {
        let mut env = Env::new();
        let d = env.declare("C", 1);
        env.set_body(
            d,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(12)),
                    act(
                        [(Res::new("cpu"), 1)],
                        invoke(d, [Expr::p(0).add(Expr::c(1))]),
                    ),
                ),
                guard(BExpr::eq(Expr::p(0), Expr::c(12)), nil()),
            ]),
        );
        let p = invoke(d, [Expr::c(0)]);
        let real = versa::explore(&env, &p, &versa::Options::default());
        for threads in [1, 4] {
            let seed = explore_seedline(&env, &p, threads);
            assert_eq!(seed.states, real.num_states());
            assert_eq!(seed.transitions, real.stats.transitions);
            assert_eq!(seed.deadlocks, real.deadlocks.len());
        }
    }
}
