//! A minimal std-only wall-clock benchmarking harness.
//!
//! Replaces the previous criterion dependency so that `cargo bench` works in
//! the hermetic, registry-free build (see DESIGN.md, "Determinism & vendored
//! utilities"). Each benchmark target is a plain `fn main()` compiled with
//! `harness = false`; it constructs a [`Runner`] from the command line and
//! registers closures with [`Runner::bench`] / [`Runner::bench_with_param`].
//!
//! Methodology: a short warm-up sizes the per-sample iteration count so one
//! sample takes ≈5 ms, then a fixed number of samples is timed with
//! [`std::time::Instant`] and the per-iteration minimum / median / mean are
//! reported. The *minimum* is the headline number — it is the least noisy
//! estimator of the true cost on a shared machine. No statistics beyond that:
//! this harness is for tracking relative regressions, not publishing absolute
//! numbers.
//!
//! A substring filter can be passed on the command line (criterion-style):
//! `cargo bench -p bench --bench exploration -- product` runs only benchmarks
//! whose name contains `product`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 10;
/// Target wall-clock duration of one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Warm-up budget before iteration sizing.
const WARMUP: Duration = Duration::from_millis(20);

/// Per-iteration timing statistics of one benchmark.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark name (including any `/param` suffix).
    pub name: String,
    /// Fastest sample, per iteration.
    pub min: Duration,
    /// Median sample, per iteration.
    pub median: Duration,
    /// Mean over all samples, per iteration.
    pub mean: Duration,
    /// Iterations per sample.
    pub iters: u32,
}

/// Benchmark registry and runner for one `harness = false` target.
pub struct Runner {
    filter: Option<String>,
    results: Vec<Stats>,
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new(None)
    }
}

impl Runner {
    /// A runner with an optional substring filter.
    pub fn new(filter: Option<String>) -> Runner {
        Runner {
            filter,
            results: Vec::new(),
        }
    }

    /// Build a runner from `std::env::args`, taking the first non-flag
    /// argument as a substring filter (flags like `--bench`, which cargo
    /// forwards, are ignored).
    pub fn from_args() -> Runner {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Runner::new(filter)
    }

    /// Time `f` and print one result line. Skipped (silently) when a filter
    /// is set and `name` does not contain it.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let stats = measure(name, &mut f);
        println!(
            "{:<48} min {:>12}  median {:>12}  mean {:>12}  ({} iters x {} samples)",
            stats.name,
            fmt_dur(stats.min),
            fmt_dur(stats.median),
            fmt_dur(stats.mean),
            stats.iters,
            SAMPLES,
        );
        self.results.push(stats);
    }

    /// Like [`Runner::bench`] with a criterion-style `group/param` name.
    pub fn bench_with_param<T>(
        &mut self,
        group: &str,
        param: impl std::fmt::Display,
        f: impl FnMut() -> T,
    ) {
        self.bench(&format!("{group}/{param}"), f);
    }

    /// Results recorded so far (post-filter), in registration order.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }
}

fn measure<T>(name: &str, f: &mut impl FnMut() -> T) -> Stats {
    // Warm up and estimate the cost of a single iteration.
    let warm_start = Instant::now();
    let mut one = Duration::MAX;
    let mut warm_iters = 0u32;
    while warm_iters < 3 || warm_start.elapsed() < WARMUP {
        let t = Instant::now();
        black_box(f());
        one = one.min(t.elapsed().max(Duration::from_nanos(1)));
        warm_iters += 1;
    }
    // Size a sample to ≈SAMPLE_TARGET.
    let iters = (SAMPLE_TARGET.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u32;

    let mut per_iter: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed() / iters
        })
        .collect();
    per_iter.sort_unstable();
    let mean = per_iter.iter().sum::<Duration>() / SAMPLES as u32;
    Stats {
        name: name.to_string(),
        min: per_iter[0],
        median: per_iter[SAMPLES / 2],
        mean,
        iters,
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_results() {
        let mut r = Runner::new(None);
        let mut x = 0u64;
        r.bench("noop_add", || {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(r.results().len(), 1);
        let s = &r.results()[0];
        assert_eq!(s.name, "noop_add");
        assert!(s.min <= s.median && s.median <= s.mean * 2);
        assert!(s.iters >= 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = Runner::new(Some("explore".into()));
        r.bench("parse_only", || 1 + 1);
        assert!(r.results().is_empty());
        r.bench("explore_fast", || 1 + 1);
        assert_eq!(r.results().len(), 1);
    }

    #[test]
    fn param_names_are_joined_with_slash() {
        let mut r = Runner::new(None);
        r.bench_with_param("group", 7, || 0);
        assert_eq!(r.results()[0].name, "group/7");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00 s");
    }
}
