//! Regenerate every quantitative table of `EXPERIMENTS.md` in one run:
//!
//! ```sh
//! cargo run --release -p bench --bin harness
//! ```
//!
//! `--smoke` runs the cheap subset — the cruise-control inventory (F1), the
//! parallel-scaling sweep (Q8, on a smaller model), the instrumented
//! exploration report (Q6, which refreshes `BENCH_exploration.json`) and the
//! concurrency-control verdicts (Q7) — so CI can exercise the harness
//! end-to-end without the full sweeps. The store A/B (Q12), the delay-zone
//! A/B (Q13) and the advance-engine A/B (Q14) run in every mode: all three
//! feed committed sections of `BENCH_exploration.json`, which must not
//! depend on how the harness was invoked. Q13 and Q14 dominate the smoke
//! wall clock (both run best-of-3 exhaustive explorations of the
//! long-hyperperiod model, a couple of minutes together).
//!
//! `--threads <n>` sets the exploration worker count for every analysis the
//! harness runs (the Q8 sweep ignores it — it sweeps its own grid). The
//! engine is deterministic in the thread count, so CI runs the smoke subset
//! at 1 and 4 workers and diffs the verdict lines.
//!
//! `--no-memo` disables the successor memo for every analysis (the Q9 A/B
//! sweeps its own memo grid). The memo is a pure cache, so CI also diffs the
//! verdict lines of a `--no-memo` run against the default.
//!
//! `--store <dir>` points the Q12 warm-vs-cold sweep at a persistent
//! artifact-store directory instead of the default `target/bench-cas`
//! (which is wiped per run so the cold pass is honestly cold). With an
//! explicit directory nothing is wiped — a second harness run then serves
//! its "cold" pass from the store, which is exactly what the CI cas stage
//! asserts.

use std::time::Instant;

use aadl::examples::{cruise_control_model, cruise_control_overloaded, flight_control_model};
use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::properties::{ConcurrencyControlProtocol, TimeVal};
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};
use bench::{harmonic_system, overrun_system, wide_system};
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::rm_schedulable;
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(1usize);
    let memo = !args.iter().any(|a| a == "--no-memo");
    let store_dir = args
        .windows(2)
        .find(|w| w[0] == "--store")
        .map(|w| w[1].clone());
    f1_cruise_control(threads, memo);
    if !smoke {
        q1_quantum_tradeoff();
        q2_verdict_agreement();
        q2b_acceptance_by_utilization();
        q3_scaling();
        q5_queue_overflow();
    }
    let scaling = q8_thread_scaling(smoke);
    let interning = q9_interning(smoke);
    let cas_section = q12_store_warm_sweep(store_dir.as_deref());
    let zones_section = q13_zones(threads, memo);
    let zone_advance_section = q14_zone_advance(threads, memo);
    q6_exploration_report(
        threads,
        memo,
        scaling,
        interning,
        cas_section,
        zones_section,
        zone_advance_section,
    );
    q7_locking_protocols(threads, memo);
    if smoke {
        println!("\nharness: smoke mode (skipped Q1/Q2/Q2b/Q3/Q5 sweeps)");
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn f1_cruise_control(threads: usize, memo: bool) {
    header("F1 — cruise control (Fig. 1): inventory and verdicts");
    let m = cruise_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    println!(
        "inventory: {} thread processes, {} dispatchers, {} queues (paper §4.1: 6/6/0)",
        tm.inventory.threads, tm.inventory.dispatchers, tm.inventory.queues
    );
    let mut exhaustive = AnalysisOptions::exhaustive();
    exhaustive.explore.threads = threads;
    exhaustive.explore.memo = memo;
    let v = analyze(&m, &TranslateOptions::default(), &exhaustive).unwrap();
    println!(
        "nominal:    schedulable={} states={} transitions={} time={:?}",
        v.schedulable(), v.stats().states, v.stats().transitions, v.stats().duration
    );
    let m = instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap();
    let mut default = AnalysisOptions::default();
    default.explore.threads = threads;
    default.explore.memo = memo;
    let v = analyze(&m, &TranslateOptions::default(), &default).unwrap();
    println!(
        "overloaded: schedulable={} first deadlock at quantum {} ({} states)",
        v.schedulable(),
        v.scenario().as_ref().map(|s| s.at_quantum).unwrap_or(0),
        v.stats().states
    );
}

/// Path to a bundled `.aadl` model, robust to the harness cwd.
fn model_file(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/models")
        .join(name)
}

/// Parse and instantiate a bundled model once — sweeps hoist this out of
/// their loops so per-point cost is translation + exploration, never
/// re-parsing.
fn parsed_cruise_control() -> aadl::instance::InstanceModel {
    let path = model_file("cruise_control.aadl");
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let pkg = parse_package(&source).expect("parse cruise_control.aadl");
    instantiate(&pkg, "CruiseControl.impl").expect("cruise control instantiates")
}

fn q1_quantum_tradeoff() {
    header("Q1 — quantum sweep on the cruise-control model (§4.1 trade-off)");
    // The `.aadl` source is parsed once, outside the sweep loop; each point
    // re-translates the same instance at its own quantum.
    let m = parsed_cruise_control();
    println!("{:>10} {:>13} {:>10} {:>13} {:>12}", "quantum", "schedulable", "states", "transitions", "time");
    for q in [10i64, 5, 1] {
        let v = analyze(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(q)),
                ..Default::default()
            },
            &AnalysisOptions::default(),
        )
        .unwrap();
        println!(
            "{:>8}ms {:>13} {:>10} {:>13} {:>12?}",
            q, v.schedulable(), v.stats().states, v.stats().transitions, v.stats().duration
        );
    }
}

fn q2_verdict_agreement() {
    header("Q2 — verdict agreement: exhaustive ACSR vs exact baselines");
    let mut rm_agree = 0;
    let mut edf_agree = 0;
    let n = 20u64;
    for seed in 0..n {
        let ts = uunifast(&TaskSetSpec {
            n: 3,
            target_utilization: 0.85,
            periods: vec![4, 5, 8, 10],
            seed,
        });
        let rm_exact = rm_schedulable(&ts);
        let rm_acsr = {
            let pkg = taskset_to_package(&ts, "RMS");
            let m = instantiate(&pkg, "Top.impl").unwrap();
            analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default())
                .unwrap()
                .schedulable()
        };
        if rm_exact == rm_acsr {
            rm_agree += 1;
        }
        let edf_exact = edf_schedulable(&ts);
        let edf_acsr = {
            let pkg = taskset_to_package(&ts, "EDF");
            let m = instantiate(&pkg, "Top.impl").unwrap();
            analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default())
                .unwrap()
                .schedulable()
        };
        if edf_exact == edf_acsr {
            edf_agree += 1;
        }
    }
    println!("random task sets (n=3, U*=0.85): {n} sets");
    println!("RMS:  ACSR vs exact RTA agreement        {rm_agree}/{n}");
    println!("EDF:  ACSR vs processor-demand agreement {edf_agree}/{n}");
}

fn q2b_acceptance_by_utilization() {
    header("Q2b — acceptance ratio by utilization: RMS vs EDF (exhaustive ACSR)");
    println!("{:>6} {:>12} {:>12}", "U", "RMS accept", "EDF accept");
    for u10 in [7u64, 8, 9, 10] {
        let target = u10 as f64 / 10.0;
        let n = 10u64;
        let mut rm_ok = 0;
        let mut edf_ok = 0;
        for seed in 0..n {
            let ts = uunifast(&TaskSetSpec {
                n: 3,
                target_utilization: target,
                periods: vec![4, 5, 8, 10],
                seed: 1000 * u10 + seed,
            });
            for (protocol, counter) in [("RMS", &mut rm_ok), ("EDF", &mut edf_ok)] {
                let pkg = taskset_to_package(&ts, protocol);
                let m = instantiate(&pkg, "Top.impl").unwrap();
                if analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default())
                    .unwrap()
                    .schedulable()
                {
                    *counter += 1;
                }
            }
        }
        println!(
            "{:>6.2} {:>9}/{n} {:>9}/{n}",
            target, rm_ok, edf_ok
        );
    }
    println!("(EDF dominates RMS; the gap widens toward U = 1 — the classic curve.)");
}

fn q3_scaling() {
    header("Q3 — exploration scaling: model size and engine workers");
    println!("{:>8} {:>10} {:>13} {:>12}", "threads", "states", "transitions", "time");
    for n in [2usize, 3, 4, 5, 6] {
        let m = harmonic_system(n, 4, 0.12);
        let t0 = Instant::now();
        let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default()).unwrap();
        println!(
            "{:>8} {:>10} {:>13} {:>12?}",
            n,
            v.stats().states,
            v.stats().transitions,
            t0.elapsed()
        );
        assert!(v.schedulable());
    }
    let m = harmonic_system(6, 4, 0.12);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    println!("\nengine workers on the (narrow-frontier) 6-thread harmonic model:");
    println!("{:>8} {:>12}", "workers", "time");
    for w in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let ex = versa::explore(&tm.env, &tm.initial, &versa::Options::default().with_threads(w));
        println!("{:>8} {:>12?}   ({} states)", w, t0.elapsed(), ex.num_states());
    }

    // Wide-frontier variant: independent execution-time choices on separate
    // processors make the BFS frontier wide enough for workers to pay off.
    let m = wide_system(5, 4);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    println!("\nengine workers on the wide-frontier model (5 cpus, exec 1..4):");
    println!("{:>8} {:>12}", "workers", "time");
    for w in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let ex = versa::explore(&tm.env, &tm.initial, &versa::Options::default().with_threads(w));
        println!("{:>8} {:>12?}   ({} states)", w, t0.elapsed(), ex.num_states());
    }
}

fn q5_queue_overflow() {
    header("Q5 — queue overflow (§4.4): size sweep under the Error protocol");
    println!("{:>6} {:>12} {:>18}", "size", "verdict", "overflow quantum");
    for size in [1i64, 2, 3, 4] {
        let m = overrun_system(size, "Error");
        let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default()).unwrap();
        println!(
            "{:>6} {:>12} {:>18}",
            size,
            if v.schedulable() { "clean" } else { "overflow" },
            v.scenario().map(|s| s.at_quantum.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    let m = overrun_system(1, "DropNewest");
    let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::exhaustive()).unwrap();
    println!("DropNewest, size 1: schedulable={} ({} states)", v.schedulable(), v.stats().states);
}

/// Read back a counter from a finished run (0 when it was never registered).
fn run_counter(run: &obs::RunData, name: &str) -> u64 {
    run.counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// The parallel-scaling sweep behind `EXPERIMENTS.md` Q8 and the `scaling`
/// section of `BENCH_exploration.json`. Two engines, A/B, on each model:
///
/// * **seed** — the pre-sharding architecture kept alive in
///   [`bench::seedline`]: parallel expansion, single-`Mutex` output buffer,
///   serial interner re-hashing deep terms on every probe;
/// * **sharded** — the shipped expand-and-intern pipeline (hash-cached
///   terms, sharded visited set), swept over workers, plus one row pinning
///   the sharded engine to a *single* shard so the shard count's own effect
///   is visible at 4 workers.
///
/// Every configuration runs three times and reports the best wall clock —
/// min-of-N is the standard way to strip scheduler noise from short runs.
fn q8_thread_scaling(smoke: bool) -> obs::Json {
    header("Q8 — parallel scaling: engines × workers × visited-set shards");
    let mut models: Vec<(String, aadl::instance::InstanceModel)> = vec![
        ("cruise_control".into(), cruise_control_model()),
        ("flight_control".into(), flight_control_model()),
        (
            "overloaded".into(),
            instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap(),
        ),
    ];
    let (cpus, spread) = if smoke { (5, 4) } else { (6, 4) };
    models.push((format!("wide_system({cpus},{spread})"), wide_system(cpus, spread)));
    let reps = 3u32;

    let mut sections: Vec<obs::Json> = Vec::new();
    for (name, m) in &models {
        let tm = translate(m, &TranslateOptions::default()).unwrap();
        println!("\n{name}:");
        println!(
            "{:>9} {:>8} {:>8} {:>8} {:>13} {:>9} {:>11}",
            "engine", "workers", "shards", "states", "best time", "out-lock", "shard-lock"
        );
        let mut rows: Vec<obs::Json> = Vec::new();

        for threads in [1usize, 2, 4, 8] {
            let mut best: Option<(std::time::Duration, bench::seedline::SeedStats)> = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let st = bench::seedline::explore_seedline(&tm.env, &tm.initial, threads);
                let wall = t0.elapsed();
                if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                    best = Some((wall, st));
                }
            }
            let (wall, st) = best.unwrap();
            println!(
                "{:>9} {:>8} {:>8} {:>8} {:>13?} {:>9} {:>11}",
                "seed", threads, "-", st.states, wall, st.lock_contention, "-"
            );
            rows.push(obs::Json::obj([
                ("engine", obs::Json::from("seed")),
                ("threads", obs::Json::from(threads)),
                ("states", obs::Json::from(st.states)),
                ("wall_ns", obs::Json::from(wall.as_nanos() as u64)),
                ("lock_contention", obs::Json::from(st.lock_contention)),
            ]));
        }

        for (threads, shards) in [(1usize, 0usize), (2, 0), (4, 1), (4, 0), (8, 0)] {
            type Best = (std::time::Duration, usize, u64, u64);
            let mut best: Option<Best> = None;
            for _ in 0..reps {
                let rec = obs::Recorder::enabled();
                let opts = versa::Options::default()
                    .with_threads(threads)
                    .with_shards(shards)
                    .with_obs(rec.clone());
                let t0 = Instant::now();
                let ex = versa::explore(&tm.env, &tm.initial, &opts);
                let wall = t0.elapsed();
                let run = rec.finish();
                if best.as_ref().is_none_or(|(w, ..)| wall < *w) {
                    best = Some((
                        wall,
                        ex.num_states(),
                        run_counter(&run, "explore.lock_contention"),
                        run_counter(&run, "explore.shard_contention"),
                    ));
                }
            }
            let (wall, states, out_lock, shard_lock) = best.unwrap();
            let shards_actual = if shards == 0 {
                threads.next_power_of_two()
            } else {
                shards
            };
            println!(
                "{:>9} {:>8} {:>8} {:>8} {:>13?} {:>9} {:>11}",
                "sharded",
                threads,
                if shards == 0 {
                    format!("auto({shards_actual})")
                } else {
                    shards_actual.to_string()
                },
                states,
                wall,
                out_lock,
                shard_lock
            );
            rows.push(obs::Json::obj([
                ("engine", obs::Json::from("sharded")),
                ("threads", obs::Json::from(threads)),
                ("shards", obs::Json::from(shards_actual)),
                ("states", obs::Json::from(states)),
                ("wall_ns", obs::Json::from(wall.as_nanos() as u64)),
                ("lock_contention", obs::Json::from(out_lock)),
                ("shard_contention", obs::Json::from(shard_lock)),
            ]));
        }
        sections.push(obs::Json::obj([
            ("model", obs::Json::from(name.as_str())),
            ("rows", obs::Json::Arr(rows)),
        ]));
    }
    println!(
        "\n(seed = pre-sharding engine: serial interner, no hash cache; \
         out-lock / shard-lock = try_lock misses.)"
    );
    obs::Json::obj([
        ("reps", obs::Json::from(reps as u64)),
        ("policy", obs::Json::from("min_wall_of_reps")),
        ("models", obs::Json::Arr(sections)),
    ])
}

/// The hash-consing A/B behind `EXPERIMENTS.md` Q9 and the `interning`
/// section of `BENCH_exploration.json`. Four engines, all at **one** worker
/// (the memo and the store are wins before any parallelism), on each model:
///
/// * **seed** — the pre-sharding [`bench::seedline`] engine (serial interner,
///   deep re-hashing on every probe);
/// * **hashed** — the pre-interning engine preserved as
///   [`versa::explore_hashed`]: digest-cached keys, deep-compare fallback,
///   successors re-derived on every expansion;
/// * **interned** — the shipped engine with the successor memo disabled
///   (isolates the term store's contribution);
/// * **interned+memo** — the shipped default.
///
/// Same min-of-3-reps wall-clock policy as Q8. The interned rows carry the
/// memo hit/miss/eviction counters and the store's unique-subterm count from
/// [`versa::Stats`].
fn q9_interning(smoke: bool) -> obs::Json {
    header("Q9 — hash-consed store + successor memo: engine A/B at 1 worker");
    let mut models: Vec<(String, aadl::instance::InstanceModel)> = vec![
        ("cruise_control".into(), cruise_control_model()),
        ("flight_control".into(), flight_control_model()),
        (
            "overloaded".into(),
            instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap(),
        ),
    ];
    let (cpus, spread) = if smoke { (5, 4) } else { (6, 4) };
    models.push((format!("wide_system({cpus},{spread})"), wide_system(cpus, spread)));
    let reps = 3u32;

    let mut sections: Vec<obs::Json> = Vec::new();
    for (name, m) in &models {
        let tm = translate(m, &TranslateOptions::default()).unwrap();
        println!("\n{name}:");
        println!(
            "{:>14} {:>8} {:>13} {:>10} {:>10} {:>7} {:>9}",
            "engine", "states", "best time", "memo-hit", "memo-miss", "evict", "subterms"
        );
        let mut rows: Vec<obs::Json> = Vec::new();
        let mut row = |engine: &str, states: usize, wall: std::time::Duration, stats: Option<&versa::Stats>| {
            let (hits, misses, evictions, subterms) = stats
                .map(|s| (s.memo_hits, s.memo_misses, s.memo_evictions, s.unique_subterms as u64))
                .unwrap_or((0, 0, 0, 0));
            let dash = |v: u64| if stats.is_some() { v.to_string() } else { "-".into() };
            println!(
                "{:>14} {:>8} {:>13?} {:>10} {:>10} {:>7} {:>9}",
                engine, states, wall, dash(hits), dash(misses), dash(evictions), dash(subterms)
            );
            let mut fields = vec![
                ("engine", obs::Json::from(engine)),
                ("states", obs::Json::from(states)),
                ("wall_ns", obs::Json::from(wall.as_nanos() as u64)),
            ];
            if stats.is_some() {
                fields.push(("memo_hits", obs::Json::from(hits)));
                fields.push(("memo_misses", obs::Json::from(misses)));
                fields.push(("memo_evictions", obs::Json::from(evictions)));
                fields.push(("unique_subterms", obs::Json::from(subterms)));
            }
            rows.push(obs::Json::obj(fields));
        };

        let mut best: Option<(std::time::Duration, usize)> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let st = bench::seedline::explore_seedline(&tm.env, &tm.initial, 1);
            let wall = t0.elapsed();
            if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                best = Some((wall, st.states));
            }
        }
        let (wall, states) = best.unwrap();
        row("seed", states, wall, None);

        let mut best: Option<(std::time::Duration, versa::Exploration)> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let ex = versa::explore_hashed(&tm.env, &tm.initial, &versa::Options::default());
            let wall = t0.elapsed();
            if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                best = Some((wall, ex));
            }
        }
        let (wall, ex) = best.unwrap();
        row("hashed", ex.num_states(), wall, None);

        for (engine, memo) in [("interned", false), ("interned+memo", true)] {
            let mut best: Option<(std::time::Duration, versa::Exploration)> = None;
            for _ in 0..reps {
                // A fresh store per rep: reusing the translator's (or a prior
                // rep's) store would hand later reps a pre-populated interner
                // and flatter the steady state.
                let opts = versa::Options::default().with_memo(memo);
                let t0 = Instant::now();
                let ex = versa::explore(&tm.env, &tm.initial, &opts);
                let wall = t0.elapsed();
                if best.as_ref().is_none_or(|(w, _)| wall < *w) {
                    best = Some((wall, ex));
                }
            }
            let (wall, ex) = best.unwrap();
            row(engine, ex.num_states(), wall, Some(&ex.stats));
        }

        sections.push(obs::Json::obj([
            ("model", obs::Json::from(name.as_str())),
            ("rows", obs::Json::Arr(rows)),
        ]));
    }
    println!(
        "\n(seed = serial interner, deep re-hash per probe; hashed = digest keys, \
         deep-compare fallback, no memo; interned = O(1) TermId keys; \
         +memo = cached successor lists.)"
    );
    obs::Json::obj([
        ("reps", obs::Json::from(reps as u64)),
        ("policy", obs::Json::from("min_wall_of_reps")),
        ("models", obs::Json::Arr(sections)),
    ])
}

/// Instrumented exhaustive run of the cruise-control model, written as
/// `BENCH_exploration.json` — the same `aadlsched-metrics` schema the CLI
/// emits with `--metrics`, so the two are diffable with the same tooling.
/// Q12 — the cross-run artifact store: the identical 10-point quantum sweep
/// twice, cold then warm (EXPERIMENTS.md Q12). The `.aadl` source is parsed
/// once; every point re-translates at its own quantum, so each point keys a
/// distinct artifact. The warm pass must reproduce every verdict row
/// byte-for-byte from replayed artifacts — the harness aborts otherwise.
fn q12_store_warm_sweep(store_dir: Option<&str>) -> obs::Json {
    header("Q12 — warm vs cold quantum sweep (cross-run artifact store)");
    let m = parsed_cruise_control();
    let dir = match store_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => {
            // A fresh store per run keeps the cold pass honestly cold.
            let d = std::path::PathBuf::from("target/bench-cas");
            let _ = std::fs::remove_dir_all(&d);
            d
        }
    };
    let store = std::sync::Arc::new(
        cas::CasStore::open(&dir, cas::Mode::ReadWrite).expect("open artifact store"),
    );
    let quanta: Vec<i64> = (1..=10).collect();
    let sweep = |rec: &obs::Recorder| -> (Vec<String>, u64) {
        let t0 = Instant::now();
        let rows: Vec<String> = quanta
            .iter()
            .map(|&q| {
                let topts = TranslateOptions {
                    quantum: Some(TimeVal::ms(q)),
                    ..Default::default()
                };
                let mut aopts = AnalysisOptions::default();
                aopts.explore.cas = Some(store.clone());
                aopts.explore.obs = rec.clone();
                let v = analyze(&m, &topts, &aopts).unwrap();
                format!(
                    "quantum={q}ms schedulable={} states={} transitions={}",
                    v.schedulable(),
                    v.stats().states,
                    v.stats().transitions
                )
            })
            .collect();
        (rows, t0.elapsed().as_nanos() as u64)
    };
    let cold_rec = obs::Recorder::enabled();
    let (cold_rows, cold_ns) = sweep(&cold_rec);
    let warm_rec = obs::Recorder::enabled();
    let (warm_rows, warm_ns) = sweep(&warm_rec);
    assert_eq!(cold_rows, warm_rows, "warm sweep changed a verdict row");
    for row in &cold_rows {
        println!("{row}");
    }
    let counts = |rec: &obs::Recorder| {
        [
            rec.counter("cas.hits").get(),
            rec.counter("cas.misses").get(),
            rec.counter("cas.writes").get(),
            rec.counter("cas.invalidations").get(),
        ]
    };
    let [ch, cm, cw, ci] = counts(&cold_rec);
    let [wh, wm, ww, wi] = counts(&warm_rec);
    println!(
        "cold pass: hits={ch} misses={cm} writes={cw} invalidations={ci} wall={:?}",
        std::time::Duration::from_nanos(cold_ns)
    );
    println!(
        "warm pass: hits={wh} misses={wm} writes={ww} invalidations={wi} wall={:?}",
        std::time::Duration::from_nanos(warm_ns)
    );
    let pass = |hits, misses, writes, invalidations, wall_ns| {
        obs::Json::obj([
            ("hits", obs::Json::from(hits)),
            ("misses", obs::Json::from(misses)),
            ("writes", obs::Json::from(writes)),
            ("invalidations", obs::Json::from(invalidations)),
            ("wall_ns", obs::Json::from(wall_ns)),
        ])
    };
    obs::Json::obj([
        ("model", obs::Json::from("cruise_control")),
        ("points", obs::Json::from(quanta.len())),
        ("cold", pass(ch, cm, cw, ci, cold_ns)),
        ("warm", pass(wh, wm, ww, wi, warm_ns)),
        ("verdicts_identical", obs::Json::Bool(true)),
    ])
}

/// The delay-zone A/B behind `EXPERIMENTS.md` Q13 and the `zones` section of
/// `BENCH_exploration.json`: the bundled co-prime long-hyperperiod model
/// (`longperiod.aadl`, hyperperiod 17·19·23·29 = 215441 quanta), explored
/// concretely and with `--zones`, best-of-3 wall clocks. The verdicts must
/// match and zone mode must materialize at least 10× fewer states — the
/// harness aborts otherwise, so the committed report can never carry a
/// regressed ratio. The state counts are deterministic; only the wall
/// clocks are subject to noise (hence min-of-reps, same policy as Q8/Q9).
fn q13_zones(threads: usize, memo: bool) -> obs::Json {
    header("Q13 — delay zones vs concrete quantum stepping (longperiod model)");
    let path = model_file("longperiod.aadl");
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let pkg = parse_package(&source).expect("parse longperiod.aadl");
    let m = instantiate(&pkg, "Top.impl").expect("longperiod instantiates");
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let reps = 3u32;

    type Best = (std::time::Duration, versa::Exploration, [u64; 3]);
    let run_mode = |zones: bool| -> Best {
        let mut best: Option<Best> = None;
        for _ in 0..reps {
            let rec = obs::Recorder::enabled();
            let opts = versa::Options::default()
                .with_threads(threads)
                .with_memo(memo)
                .with_zones(zones)
                .with_obs(rec.clone());
            let t0 = Instant::now();
            let ex = versa::explore(&tm.env, &tm.initial, &opts);
            let wall = t0.elapsed();
            let run = rec.finish();
            let counters = [
                run_counter(&run, "zone.delay_steps"),
                run_counter(&run, "zone.quanta_collapsed"),
                run_counter(&run, "zone.singleton_steps"),
            ];
            if best.as_ref().is_none_or(|(w, ..)| wall < *w) {
                best = Some((wall, ex, counters));
            }
        }
        best.unwrap()
    };

    let (cw, cex, _) = run_mode(false);
    let (zw, zex, [delay_steps, quanta_collapsed, singleton_steps]) = run_mode(true);
    println!(
        "concrete: schedulable={} states={} transitions={} time={cw:?}",
        cex.deadlocks.is_empty(),
        cex.num_states(),
        cex.stats.transitions
    );
    println!(
        "zones:    schedulable={} states={} transitions={} time={zw:?}",
        zex.deadlocks.is_empty(),
        zex.num_states(),
        zex.stats.transitions
    );
    println!(
        "collapse: delay_steps={delay_steps} quanta_collapsed={quanta_collapsed} \
         singleton_steps={singleton_steps} ({:.1}x fewer states)",
        cex.num_states() as f64 / zex.num_states() as f64
    );
    assert_eq!(
        cex.deadlocks.is_empty(),
        zex.deadlocks.is_empty(),
        "zone mode changed the longperiod verdict"
    );
    assert!(
        zex.num_states() * 10 <= cex.num_states(),
        "zone mode below the 10x state bar: {} vs {}",
        zex.num_states(),
        cex.num_states()
    );
    let mode = |wall: std::time::Duration, ex: &versa::Exploration| {
        obs::Json::obj([
            ("schedulable", obs::Json::Bool(ex.deadlocks.is_empty())),
            ("states", obs::Json::from(ex.num_states())),
            ("transitions", obs::Json::from(ex.stats.transitions)),
            ("wall_ns", obs::Json::from(wall.as_nanos() as u64)),
        ])
    };
    obs::Json::obj([
        ("model", obs::Json::from("longperiod")),
        ("hyperperiod_quanta", obs::Json::from(215441u64)),
        ("reps", obs::Json::from(reps as u64)),
        ("policy", obs::Json::from("min_wall_of_reps")),
        ("concrete", mode(cw, &cex)),
        (
            "zones",
            obs::Json::obj([
                ("schedulable", obs::Json::Bool(zex.deadlocks.is_empty())),
                ("states", obs::Json::from(zex.num_states())),
                ("transitions", obs::Json::from(zex.stats.transitions)),
                ("wall_ns", obs::Json::from(zw.as_nanos() as u64)),
                ("delay_steps", obs::Json::from(delay_steps)),
                ("quanta_collapsed", obs::Json::from(quanta_collapsed)),
                ("singleton_steps", obs::Json::from(singleton_steps)),
            ]),
        ),
    ])
}

/// The closed-form advance A/B behind `EXPERIMENTS.md` Q14 and the
/// `zone_advance` section of `BENCH_exploration.json`: every bundled
/// `.aadl` model explored three ways — concrete quantum stepping, replay
/// zones (the PR 9 path: zone *states* collapse, but every quantum is
/// still re-derived) and closed-form zones (spans and unit macros served
/// arithmetically) — best-of-3 wall clocks each. The verdicts and deadlock
/// counts must agree across all three engines on every model, the
/// closed-form run must report at least one `zone.closed_form_advances`,
/// and closed-form must not be slower than replay on `longperiod.aadl`
/// (the long-hyperperiod model the closed-form path targets) — the
/// harness aborts otherwise, so the committed report can never carry a
/// regressed ratio. State counts are deterministic; only wall clocks are
/// noisy (min-of-reps, same policy as Q8/Q9/Q13).
fn q14_zone_advance(threads: usize, memo: bool) -> obs::Json {
    header("Q14 — closed-form vs replay vs concrete (all bundled models)");
    let models = [
        "cruise_control",
        "flight_control",
        "inversion",
        "longperiod",
        "overloaded",
        "producer_handler",
    ];
    let reps = 3u32;
    println!(
        "{:>17} {:>12} {:>13} {:>12} {:>12} {:>8}",
        "model", "schedulable", "concrete", "replay", "closed", "ratio"
    );
    let mut rows = Vec::new();
    for name in models {
        let path = model_file(&format!("{name}.aadl"));
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let pkg = parse_package(&source).unwrap_or_else(|e| panic!("parse {name}: {e}"));
        let root = pkg.default_root().unwrap_or_else(|e| panic!("root {name}: {e}"));
        let m = instantiate(&pkg, &root).unwrap_or_else(|e| panic!("instantiate {name}: {e}"));
        let tm = translate(&m, &TranslateOptions::default()).unwrap();

        type Best = (std::time::Duration, versa::Exploration, u64);
        let run_once = |zones: Option<versa::ZoneAdvance>, best: &mut Option<Best>| {
            let rec = obs::Recorder::enabled();
            let mut opts = versa::Options::default()
                .with_threads(threads)
                .with_memo(memo)
                .with_obs(rec.clone());
            if let Some(advance) = zones {
                opts = opts.with_zones(true).with_zone_advance(advance);
            }
            let t0 = Instant::now();
            let ex = versa::explore(&tm.env, &tm.initial, &opts);
            let wall = t0.elapsed();
            let run = rec.finish();
            let closed_advances = run_counter(&run, "zone.closed_form_advances");
            if best.as_ref().is_none_or(|(w, ..)| wall < *w) {
                *best = Some((wall, ex, closed_advances));
            }
        };

        // Interleave the reps (closed, replay, concrete, repeat) so every
        // engine samples the same allocator and cache conditions — a
        // sequential block per engine lets heap state drift between the
        // A and the B, which skews the ratio by tens of percent.
        let (mut closed, mut replay, mut concrete) = (None, None, None);
        for _ in 0..reps {
            run_once(Some(versa::ZoneAdvance::Closed), &mut closed);
            run_once(Some(versa::ZoneAdvance::Replay), &mut replay);
            run_once(None, &mut concrete);
        }
        let (cw, cex, _) = concrete.unwrap();
        let (rw, rex, _) = replay.unwrap();
        let (zw, zex, closed_advances) = closed.unwrap();
        let schedulable = cex.deadlocks.is_empty();
        let ratio = rw.as_secs_f64() / zw.as_secs_f64().max(1e-9);
        println!(
            "{:>17} {:>12} {:>13?} {:>12?} {:>12?} {:>7.2}x",
            name, schedulable, cw, rw, zw, ratio
        );
        for (engine, ex) in [("replay", &rex), ("closed", &zex)] {
            assert_eq!(
                schedulable,
                ex.deadlocks.is_empty(),
                "{engine} zones changed the {name} verdict"
            );
            assert_eq!(
                cex.deadlocks.len(),
                ex.deadlocks.len(),
                "{engine} zones changed the {name} deadlock count"
            );
        }
        if name == "longperiod" {
            assert!(
                closed_advances >= 1,
                "closed-form path never fired on longperiod"
            );
            assert!(
                zw <= rw,
                "closed-form advance slower than replay on longperiod: {zw:?} vs {rw:?}"
            );
        }
        let engine = |wall: std::time::Duration, ex: &versa::Exploration| {
            obs::Json::obj([
                ("schedulable", obs::Json::Bool(ex.deadlocks.is_empty())),
                ("states", obs::Json::from(ex.num_states())),
                ("wall_ns", obs::Json::from(wall.as_nanos() as u64)),
            ])
        };
        rows.push(obs::Json::obj([
            ("model", obs::Json::from(name)),
            ("concrete", engine(cw, &cex)),
            ("replay", engine(rw, &rex)),
            (
                "closed",
                obs::Json::obj([
                    ("schedulable", obs::Json::Bool(zex.deadlocks.is_empty())),
                    ("states", obs::Json::from(zex.num_states())),
                    ("wall_ns", obs::Json::from(zw.as_nanos() as u64)),
                    ("closed_form_advances", obs::Json::from(closed_advances)),
                ]),
            ),
        ]));
    }
    obs::Json::obj([
        ("reps", obs::Json::from(reps as u64)),
        ("policy", obs::Json::from("min_wall_of_reps")),
        ("models", obs::Json::Arr(rows)),
    ])
}

fn q6_exploration_report(
    threads: usize,
    memo: bool,
    scaling: obs::Json,
    interning: obs::Json,
    cas_section: obs::Json,
    zones_section: obs::Json,
    zone_advance_section: obs::Json,
) {
    header("Q6 — instrumented exploration report (BENCH_exploration.json)");
    let rec = obs::Recorder::enabled();
    let m = cruise_control_model();
    let topts = TranslateOptions {
        obs: rec.clone(),
        ..Default::default()
    };
    let mut aopts = AnalysisOptions::exhaustive();
    aopts.explore.threads = threads;
    aopts.explore.memo = memo;
    aopts.explore.obs = rec.clone();
    let tm = translate(&m, &topts).unwrap();
    let v = aadl2acsr::analyze_translated(&m, &tm, &aopts);

    let canon = format!("exhaustive;threads={threads};memo={memo}");
    let run_id = obs::run_id(&[b"cruise_control", canon.as_bytes()]);
    let mut report = obs::Report::new(&run_id, "bench-harness");
    report.set(
        "model",
        obs::Json::obj([
            ("name", obs::Json::from("cruise_control")),
            ("threads", obs::Json::from(m.threads().count())),
            ("processors", obs::Json::from(m.processors().count())),
        ]),
    );
    report.set(
        "translation",
        obs::Json::obj([
            ("threads", obs::Json::from(tm.inventory.threads)),
            ("dispatchers", obs::Json::from(tm.inventory.dispatchers)),
            ("queues", obs::Json::from(tm.inventory.queues)),
            ("defs", obs::Json::from(tm.env.num_defs())),
            ("quantum_ps", obs::Json::Int(tm.quantum_ps)),
        ]),
    );
    report.set(
        "exploration",
        obs::Json::obj([
            ("states", obs::Json::from(v.stats().states)),
            ("transitions", obs::Json::from(v.stats().transitions)),
            ("levels", obs::Json::from(v.stats().levels)),
            ("peak_frontier", obs::Json::from(v.stats().peak_frontier)),
            ("dedup_hits", obs::Json::from(v.stats().dedup_hits)),
            ("deadlocks", obs::Json::from(v.stats().deadlocks)),
            ("memo_hits", obs::Json::from(v.stats().memo_hits)),
            ("memo_misses", obs::Json::from(v.stats().memo_misses)),
            ("memo_evictions", obs::Json::from(v.stats().memo_evictions)),
            ("unique_subterms", obs::Json::from(v.stats().unique_subterms)),
        ]),
    );
    report.set(
        "verdict",
        obs::Json::obj([
            ("schedulable", obs::Json::Bool(v.schedulable())),
            ("truncated", obs::Json::Bool(v.truncated())),
        ]),
    );
    report.set("scaling", scaling);
    report.set("interning", interning);
    report.set("cas", cas_section);
    report.set("zones", zones_section);
    report.set("zone_advance", zone_advance_section);
    report.attach_run(&rec.finish());
    match std::fs::write("BENCH_exploration.json", report.to_json()) {
        Ok(()) => println!("report written to BENCH_exploration.json (run_id {run_id})"),
        Err(e) => println!("cannot write BENCH_exploration.json: {e}"),
    }
    println!("exploration: {}", v.stats());
}

/// The three concurrency-control protocols on the bundled priority-inversion
/// model (§7 extension): verdict, miss quantum and state count per protocol.
fn q7_locking_protocols(threads: usize, memo: bool) {
    header("Q7 — concurrency control on the inversion model (§7 ext.)");
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/models/inversion.aadl"
    ))
    .expect("bundled inversion model");
    let pkg = parse_package(&source).unwrap();
    let m = instantiate(&pkg, "Top.impl").unwrap();
    println!("{:>22} {:>13} {:>14} {:>8}", "protocol", "schedulable", "miss quantum", "states");
    for (name, protocol) in [
        ("None_Specified", None),
        ("Priority_Ceiling", Some(ConcurrencyControlProtocol::PriorityCeiling)),
        ("Priority_Inheritance", Some(ConcurrencyControlProtocol::PriorityInheritance)),
    ] {
        let mut aopts = AnalysisOptions::exhaustive();
        aopts.explore.threads = threads;
        aopts.explore.memo = memo;
        let v = analyze(
            &m,
            &TranslateOptions {
                protocol_override: protocol,
                ..Default::default()
            },
            &aopts,
        )
        .unwrap();
        println!(
            "{:>22} {:>13} {:>14} {:>8}",
            name,
            v.schedulable(),
            v.scenario()
                .map(|s| s.at_quantum.to_string())
                .unwrap_or_else(|| "-".into()),
            v.stats().states
        );
    }
    println!("(m preempts the lock-holding l while h blocks — unless the holder is elevated.)");
}
