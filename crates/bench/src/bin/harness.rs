//! Regenerate every quantitative table of `EXPERIMENTS.md` in one run:
//!
//! ```sh
//! cargo run --release -p bench --bin harness
//! ```
//!
//! `--smoke` runs the cheap subset — the cruise-control inventory (F1), the
//! concurrency-control verdicts (Q7) and the instrumented exploration report
//! (Q6, which refreshes `BENCH_exploration.json`) — in well under a second,
//! so CI can exercise the harness end-to-end without the full sweeps.

use std::time::Instant;

use aadl::examples::{cruise_control_model, cruise_control_overloaded};
use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::properties::{ConcurrencyControlProtocol, TimeVal};
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};
use bench::{harmonic_system, overrun_system, wide_system};
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::rm_schedulable;
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    f1_cruise_control();
    if !smoke {
        q1_quantum_tradeoff();
        q2_verdict_agreement();
        q2b_acceptance_by_utilization();
        q3_scaling();
        q5_queue_overflow();
    }
    q6_exploration_report();
    q7_locking_protocols();
    if smoke {
        println!("\nharness: smoke mode (skipped Q1/Q2/Q2b/Q3/Q5 sweeps)");
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn f1_cruise_control() {
    header("F1 — cruise control (Fig. 1): inventory and verdicts");
    let m = cruise_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    println!(
        "inventory: {} thread processes, {} dispatchers, {} queues (paper §4.1: 6/6/0)",
        tm.inventory.threads, tm.inventory.dispatchers, tm.inventory.queues
    );
    let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::exhaustive()).unwrap();
    println!(
        "nominal:    schedulable={} states={} transitions={} time={:?}",
        v.schedulable, v.stats.states, v.stats.transitions, v.stats.duration
    );
    let m = instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap();
    let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default()).unwrap();
    println!(
        "overloaded: schedulable={} first deadlock at quantum {} ({} states)",
        v.schedulable,
        v.scenario.as_ref().map(|s| s.at_quantum).unwrap_or(0),
        v.stats.states
    );
}

fn q1_quantum_tradeoff() {
    header("Q1 — quantum sweep on the cruise-control model (§4.1 trade-off)");
    let m = cruise_control_model();
    println!("{:>10} {:>13} {:>10} {:>13} {:>12}", "quantum", "schedulable", "states", "transitions", "time");
    for q in [10i64, 5, 1] {
        let v = analyze(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(q)),
                ..Default::default()
            },
            &AnalysisOptions::default(),
        )
        .unwrap();
        println!(
            "{:>8}ms {:>13} {:>10} {:>13} {:>12?}",
            q, v.schedulable, v.stats.states, v.stats.transitions, v.stats.duration
        );
    }
}

fn q2_verdict_agreement() {
    header("Q2 — verdict agreement: exhaustive ACSR vs exact baselines");
    let mut rm_agree = 0;
    let mut edf_agree = 0;
    let n = 20u64;
    for seed in 0..n {
        let ts = uunifast(&TaskSetSpec {
            n: 3,
            target_utilization: 0.85,
            periods: vec![4, 5, 8, 10],
            seed,
        });
        let rm_exact = rm_schedulable(&ts);
        let rm_acsr = {
            let pkg = taskset_to_package(&ts, "RMS");
            let m = instantiate(&pkg, "Top.impl").unwrap();
            analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default())
                .unwrap()
                .schedulable
        };
        if rm_exact == rm_acsr {
            rm_agree += 1;
        }
        let edf_exact = edf_schedulable(&ts);
        let edf_acsr = {
            let pkg = taskset_to_package(&ts, "EDF");
            let m = instantiate(&pkg, "Top.impl").unwrap();
            analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default())
                .unwrap()
                .schedulable
        };
        if edf_exact == edf_acsr {
            edf_agree += 1;
        }
    }
    println!("random task sets (n=3, U*=0.85): {n} sets");
    println!("RMS:  ACSR vs exact RTA agreement        {rm_agree}/{n}");
    println!("EDF:  ACSR vs processor-demand agreement {edf_agree}/{n}");
}

fn q2b_acceptance_by_utilization() {
    header("Q2b — acceptance ratio by utilization: RMS vs EDF (exhaustive ACSR)");
    println!("{:>6} {:>12} {:>12}", "U", "RMS accept", "EDF accept");
    for u10 in [7u64, 8, 9, 10] {
        let target = u10 as f64 / 10.0;
        let n = 10u64;
        let mut rm_ok = 0;
        let mut edf_ok = 0;
        for seed in 0..n {
            let ts = uunifast(&TaskSetSpec {
                n: 3,
                target_utilization: target,
                periods: vec![4, 5, 8, 10],
                seed: 1000 * u10 + seed,
            });
            for (protocol, counter) in [("RMS", &mut rm_ok), ("EDF", &mut edf_ok)] {
                let pkg = taskset_to_package(&ts, protocol);
                let m = instantiate(&pkg, "Top.impl").unwrap();
                if analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default())
                    .unwrap()
                    .schedulable
                {
                    *counter += 1;
                }
            }
        }
        println!(
            "{:>6.2} {:>9}/{n} {:>9}/{n}",
            target, rm_ok, edf_ok
        );
    }
    println!("(EDF dominates RMS; the gap widens toward U = 1 — the classic curve.)");
}

fn q3_scaling() {
    header("Q3 — exploration scaling: model size and engine workers");
    println!("{:>8} {:>10} {:>13} {:>12}", "threads", "states", "transitions", "time");
    for n in [2usize, 3, 4, 5, 6] {
        let m = harmonic_system(n, 4, 0.12);
        let t0 = Instant::now();
        let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default()).unwrap();
        println!(
            "{:>8} {:>10} {:>13} {:>12?}",
            n,
            v.stats.states,
            v.stats.transitions,
            t0.elapsed()
        );
        assert!(v.schedulable);
    }
    let m = harmonic_system(6, 4, 0.12);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    println!("\nengine workers on the (narrow-frontier) 6-thread harmonic model:");
    println!("{:>8} {:>12}", "workers", "time");
    for w in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let ex = versa::explore(&tm.env, &tm.initial, &versa::Options::default().with_threads(w));
        println!("{:>8} {:>12?}   ({} states)", w, t0.elapsed(), ex.num_states());
    }

    // Wide-frontier variant: independent execution-time choices on separate
    // processors make the BFS frontier wide enough for workers to pay off.
    let m = wide_system(5, 4);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    println!("\nengine workers on the wide-frontier model (5 cpus, exec 1..4):");
    println!("{:>8} {:>12}", "workers", "time");
    for w in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let ex = versa::explore(&tm.env, &tm.initial, &versa::Options::default().with_threads(w));
        println!("{:>8} {:>12?}   ({} states)", w, t0.elapsed(), ex.num_states());
    }
}

fn q5_queue_overflow() {
    header("Q5 — queue overflow (§4.4): size sweep under the Error protocol");
    println!("{:>6} {:>12} {:>18}", "size", "verdict", "overflow quantum");
    for size in [1i64, 2, 3, 4] {
        let m = overrun_system(size, "Error");
        let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::default()).unwrap();
        println!(
            "{:>6} {:>12} {:>18}",
            size,
            if v.schedulable { "clean" } else { "overflow" },
            v.scenario.map(|s| s.at_quantum.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    let m = overrun_system(1, "DropNewest");
    let v = analyze(&m, &TranslateOptions::default(), &AnalysisOptions::exhaustive()).unwrap();
    println!("DropNewest, size 1: schedulable={} ({} states)", v.schedulable, v.stats.states);
}

/// Instrumented exhaustive run of the cruise-control model, written as
/// `BENCH_exploration.json` — the same `aadlsched-metrics` schema the CLI
/// emits with `--metrics`, so the two are diffable with the same tooling.
fn q6_exploration_report() {
    header("Q6 — instrumented exploration report (BENCH_exploration.json)");
    let rec = obs::Recorder::enabled();
    let m = cruise_control_model();
    let topts = TranslateOptions {
        obs: rec.clone(),
        ..Default::default()
    };
    let mut aopts = AnalysisOptions::exhaustive();
    aopts.explore.obs = rec.clone();
    let tm = translate(&m, &topts).unwrap();
    let v = aadl2acsr::analyze_translated(&m, &tm, &aopts);

    let run_id = obs::run_id(&[b"cruise_control", b"exhaustive;threads=1"]);
    let mut report = obs::Report::new(&run_id, "bench-harness");
    report.set(
        "model",
        obs::Json::obj([
            ("name", obs::Json::from("cruise_control")),
            ("threads", obs::Json::from(m.threads().count())),
            ("processors", obs::Json::from(m.processors().count())),
        ]),
    );
    report.set(
        "translation",
        obs::Json::obj([
            ("threads", obs::Json::from(tm.inventory.threads)),
            ("dispatchers", obs::Json::from(tm.inventory.dispatchers)),
            ("queues", obs::Json::from(tm.inventory.queues)),
            ("defs", obs::Json::from(tm.env.num_defs())),
            ("quantum_ps", obs::Json::Int(tm.quantum_ps)),
        ]),
    );
    report.set(
        "exploration",
        obs::Json::obj([
            ("states", obs::Json::from(v.stats.states)),
            ("transitions", obs::Json::from(v.stats.transitions)),
            ("levels", obs::Json::from(v.stats.levels)),
            ("peak_frontier", obs::Json::from(v.stats.peak_frontier)),
            ("dedup_hits", obs::Json::from(v.stats.dedup_hits)),
            ("deadlocks", obs::Json::from(v.stats.deadlocks)),
        ]),
    );
    report.set(
        "verdict",
        obs::Json::obj([
            ("schedulable", obs::Json::Bool(v.schedulable)),
            ("truncated", obs::Json::Bool(v.truncated)),
        ]),
    );
    report.attach_run(&rec.finish());
    match std::fs::write("BENCH_exploration.json", report.to_json()) {
        Ok(()) => println!("report written to BENCH_exploration.json (run_id {run_id})"),
        Err(e) => println!("cannot write BENCH_exploration.json: {e}"),
    }
    println!("exploration: {}", v.stats);
}

/// The three concurrency-control protocols on the bundled priority-inversion
/// model (§7 extension): verdict, miss quantum and state count per protocol.
fn q7_locking_protocols() {
    header("Q7 — concurrency control on the inversion model (§7 ext.)");
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/models/inversion.aadl"
    ))
    .expect("bundled inversion model");
    let pkg = parse_package(&source).unwrap();
    let m = instantiate(&pkg, "Top.impl").unwrap();
    println!("{:>22} {:>13} {:>14} {:>8}", "protocol", "schedulable", "miss quantum", "states");
    for (name, protocol) in [
        ("None_Specified", None),
        ("Priority_Ceiling", Some(ConcurrencyControlProtocol::PriorityCeiling)),
        ("Priority_Inheritance", Some(ConcurrencyControlProtocol::PriorityInheritance)),
    ] {
        let v = analyze(
            &m,
            &TranslateOptions {
                protocol_override: protocol,
                ..Default::default()
            },
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        println!(
            "{:>22} {:>13} {:>14} {:>8}",
            name,
            v.schedulable,
            v.scenario
                .map(|s| s.at_quantum.to_string())
                .unwrap_or_else(|| "-".into()),
            v.stats.states
        );
    }
    println!("(m preempts the lock-holding l while h blocks — unless the holder is elevated.)");
}
