//! # bench — benchmark harness and workload generators
//!
//! Wall-clock benches (see [`timing`]), one per experiment of
//! `EXPERIMENTS.md`, plus shared workload builders. The `harness` binary
//! regenerates every quantitative table in one run
//! (`cargo run --release -p bench --bin harness`).

pub mod seedline;
pub mod timing;

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};

/// A single-processor RMS system of `n` periodic threads with harmonic
/// periods `base · 2^min(i,3)` quanta (1 quantum = 1 ms) and per-thread
/// utilization ≈ `u_each` (WCET rounded to whole quanta, at least 1).
/// Schedulable whenever the rounded utilizations sum below 1 (harmonic
/// periods); used by the scaling experiments (Q3).
pub fn harmonic_system(n: usize, base_q: i64, u_each: f64) -> InstanceModel {
    let mut b = PackageBuilder::new("Harmonic")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"));
    for i in 0..n {
        let period = base_q << i.min(3); // cap the hyperperiod growth
        let wcet = (((period as f64) * u_each).round() as i64).clamp(1, period);
        let name = format!("T{i}");
        b = b.thread(&name, move |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(period)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(wcet), TimeVal::ms(wcet)),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(period)),
                )
        });
    }
    b = b.system("Top", |s| s);
    let pkg = b
        .implementation("Top.impl", Category::System, |mut i| {
            i = i.sub("cpu", Category::Processor, "cpu_t");
            for t in 0..n {
                let sub = format!("t{t}");
                let ty = format!("T{t}");
                i = i
                    .sub(&sub, Category::Thread, &ty)
                    .bind_processor(&sub, "cpu");
            }
            i.prop(
                names::SCHEDULING_QUANTUM,
                PropertyValue::Time(TimeVal::ms(1)),
            )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

/// A wide-frontier system for the engine-worker experiment (Q3): `n`
/// processors, each with one thread whose execution time ranges over
/// `[1, spread]` quanta — every thread's duration choice is independent, so
/// the BFS frontier grows like `spread^n` and parallel expansion has real
/// work per level.
pub fn wide_system(n: usize, spread: i64) -> InstanceModel {
    let mut b = PackageBuilder::new("Wide")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"));
    for i in 0..n {
        let name = format!("W{i}");
        b = b.thread(&name, move |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(
                    names::PERIOD,
                    PropertyValue::Time(TimeVal::ms(2 * spread)),
                )
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(spread)),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(2 * spread)),
                )
        });
    }
    b = b.system("Top", |s| s);
    let pkg = b
        .implementation("Top.impl", Category::System, |mut i| {
            for t in 0..n {
                let cpu = format!("cpu{t}");
                i = i.sub(&cpu, Category::Processor, "cpu_t");
            }
            for t in 0..n {
                let sub = format!("w{t}");
                let ty = format!("W{t}");
                let cpu = format!("cpu{t}");
                i = i
                    .sub(&sub, Category::Thread, &ty)
                    .bind_processor(&sub, &cpu);
            }
            i.prop(
                names::SCHEDULING_QUANTUM,
                PropertyValue::Time(TimeVal::ms(1)),
            )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

/// The overrun producer/handler model of experiment Q5, parameterized by
/// queue size and overflow protocol.
pub fn overrun_system(queue_size: i64, overflow: &str) -> InstanceModel {
    let overflow = overflow.to_owned();
    let pkg = PackageBuilder::new("Overrun")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .thread("Producer", |t| {
            t.out_event_port("evt")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
        })
        .thread("Handler", move |t| {
            t.in_event_port("trigger")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(queue_size))
                .feature_prop(
                    names::OVERFLOW_HANDLING_PROTOCOL,
                    PropertyValue::Enum(overflow.clone()),
                )
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(9)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(3)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("producer", Category::Thread, "Producer")
                .sub("handler", Category::Thread, "Handler")
                .connect("evt_conn", "producer.evt", "handler.trigger")
                .bind_processor("producer", "cpu1")
                .bind_processor("handler", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};

    #[test]
    fn harmonic_systems_scale_and_stay_schedulable() {
        for n in 1..=4 {
            let m = harmonic_system(n, 4, 0.2);
            let v = analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap();
            assert!(v.schedulable(), "n = {n}");
        }
    }

    #[test]
    fn overrun_system_matches_q5() {
        let m = overrun_system(1, "Error");
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable());
        let m = overrun_system(1, "DropNewest");
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(v.schedulable());
    }
}
