//! Experiment Q1 bench — analysis cost as a function of the scheduling
//! quantum (§4.1's precision / state-space trade-off), on the cruise-control
//! model at 10, 5 and 1 ms quanta.

use aadl::examples::cruise_control_model;
use aadl::properties::TimeVal;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use bench::timing::Runner;

fn bench_quantum_sweep(r: &mut Runner) {
    let m = cruise_control_model();
    for q in [10i64, 5] {
        r.bench_with_param("quantum_sweep_cruise", q, || {
            analyze(
                &m,
                &TranslateOptions {
                    quantum: Some(TimeVal::ms(q)),
                    ..Default::default()
                },
                &AnalysisOptions::exhaustive(),
            )
            .unwrap()
        });
    }
}

fn bench_quantum_fine(r: &mut Runner) {
    // The 1 ms quantum blows the space up by ~an order of magnitude; stop at
    // the first deadlock (none exists, so this is a full sweep).
    let m = cruise_control_model();
    r.bench("quantum_fine_cruise/1ms", || {
        analyze(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(1)),
                ..Default::default()
            },
            &AnalysisOptions::default(),
        )
        .unwrap()
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_quantum_sweep(&mut r);
    bench_quantum_fine(&mut r);
}
