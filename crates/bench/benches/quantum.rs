//! Experiment Q1 bench — analysis cost as a function of the scheduling
//! quantum (§4.1's precision / state-space trade-off), on the cruise-control
//! model at 10, 5 and 1 ms quanta.

use aadl::examples::cruise_control_model;
use aadl::properties::TimeVal;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_quantum_sweep(c: &mut Criterion) {
    let m = cruise_control_model();
    let mut group = c.benchmark_group("quantum_sweep_cruise");
    group.sample_size(10);
    for q in [10i64, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                analyze(
                    &m,
                    &TranslateOptions {
                        quantum: Some(TimeVal::ms(q)),
                        ..Default::default()
                    },
                    &AnalysisOptions::exhaustive(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_quantum_fine(c: &mut Criterion) {
    // The 1 ms quantum blows the space up by ~an order of magnitude; keep the
    // sample count minimal and stop at the first deadlock (none exists, so
    // this is a full sweep).
    let m = cruise_control_model();
    let mut group = c.benchmark_group("quantum_fine_cruise");
    group.sample_size(10);
    group.bench_function("1ms", |b| {
        b.iter(|| {
            analyze(
                &m,
                &TranslateOptions {
                    quantum: Some(TimeVal::ms(1)),
                    ..Default::default()
                },
                &AnalysisOptions::default(),
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_quantum_sweep, bench_quantum_fine);
criterion_main!(benches);
