//! Experiment Q5 bench — queue overflow detection cost vs queue size and
//! overflow protocol (§4.4).

use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use bench::overrun_system;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_queue_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_overflow_detection");
    group.sample_size(10);
    for size in [1i64, 2, 4, 8] {
        let m = overrun_system(size, "Error");
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let v = analyze(
                    &m,
                    &TranslateOptions::default(),
                    &AnalysisOptions::default(),
                )
                .unwrap();
                assert!(!v.schedulable);
                v
            });
        });
    }
    group.finish();
}

fn bench_drop_protocol(c: &mut Criterion) {
    // DropNewest keeps the space finite without a deadlock: full sweep cost.
    let m = overrun_system(1, "DropNewest");
    let mut group = c.benchmark_group("queue_drop_protocol");
    group.sample_size(10);
    group.bench_function("drop_newest_full_sweep", |b| {
        b.iter(|| {
            let v = analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::exhaustive(),
            )
            .unwrap();
            assert!(v.schedulable);
            v
        });
    });
    group.finish();
}

criterion_group!(benches, bench_queue_sizes, bench_drop_protocol);
criterion_main!(benches);
