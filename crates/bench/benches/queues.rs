//! Experiment Q5 bench — queue overflow detection cost vs queue size and
//! overflow protocol (§4.4).

use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use bench::overrun_system;
use bench::timing::Runner;

fn bench_queue_sizes(r: &mut Runner) {
    for size in [1i64, 2, 4, 8] {
        let m = overrun_system(size, "Error");
        r.bench_with_param("queue_overflow_detection", size, || {
            let v = analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap();
            assert!(!v.schedulable());
            v
        });
    }
}

fn bench_drop_protocol(r: &mut Runner) {
    // DropNewest keeps the space finite without a deadlock: full sweep cost.
    let m = overrun_system(1, "DropNewest");
    r.bench("queue_drop_protocol/drop_newest_full_sweep", || {
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        assert!(v.schedulable());
        v
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_queue_sizes(&mut r);
    bench_drop_protocol(&mut r);
}
