//! Microbenchmarks of the ACSR semantic core (experiment F2's engine):
//! one-step derivation, prioritization, the Par3 product and substitution.

use acsr::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// `n` workers on one cpu, each offering compute/idle — the canonical
/// scheduling hot spot of the translation.
fn workers(env: &mut Env, n: usize) -> P {
    let cpu = Res::new("bench_cpu");
    let comps: Vec<P> = (0..n)
        .map(|i| {
            let d = env.declare(&format!("BW{n}_{i}"), 0);
            env.set_body(
                d,
                choice([
                    act([(cpu, (i + 1) as i64)], invoke(d, [])),
                    act([] as [(Res, i32); 0], invoke(d, [])),
                ]),
            );
            invoke(d, [])
        })
        .collect();
    par(comps)
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("acsr_prioritized_steps");
    for n in [2usize, 4, 8] {
        let mut env = Env::new();
        let p = workers(&mut env, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| prioritized_steps(&env, &p));
        });
    }
    group.finish();
}

fn bench_unprioritized(c: &mut Criterion) {
    let mut env = Env::new();
    let p = workers(&mut env, 6);
    c.bench_function("acsr_unprioritized_steps_6", |b| {
        b.iter(|| steps(&env, &p));
    });
}

fn bench_subst(c: &mut Criterion) {
    // A Fig. 5-shaped compute body with guards and parameter arithmetic.
    let cpu = Res::new("bench_cpu2");
    let mut env = Env::new();
    let d = env.declare("BenchCompute", 2);
    let body = choice([
        guard(
            BExpr::lt(Expr::p(0).add(Expr::c(1)), Expr::c(10)),
            act(
                [(cpu, Expr::c(50).sub(Expr::c(20).sub(Expr::p(1))))],
                invoke(d, [Expr::p(0).add(Expr::c(1)), Expr::p(1).add(Expr::c(1))]),
            ),
        ),
        guard(
            BExpr::ge(Expr::p(0).add(Expr::c(1)), Expr::c(3)),
            evt_send(Symbol::new("bench_done"), 1, nil()),
        ),
        act([] as [(Res, i32); 0], invoke(d, [Expr::p(0), Expr::p(1).add(Expr::c(1))])),
    ]);
    env.set_body(d, body);
    c.bench_function("acsr_instantiate_compute", |b| {
        b.iter(|| env.instantiate(d, &[4, 7]).unwrap());
    });
}

fn bench_merge(c: &mut Criterion) {
    let mk = |names: &[(&str, u32)]| {
        let t = ActionT {
            uses: names
                .iter()
                .map(|(r, p)| (Res::new(r), Expr::c(*p as i64)))
                .collect(),
        };
        GAction::from_template(&t, None).unwrap()
    };
    let a = mk(&[("m_r1", 1), ("m_r3", 2), ("m_r5", 3)]);
    let b = mk(&[("m_r2", 1), ("m_r4", 2), ("m_r6", 3)]);
    c.bench_function("gaction_merge_disjoint", |bch| {
        bch.iter(|| a.merge(&b).unwrap());
    });
}

use acsr::term::ActionT;
use acsr::GAction;

criterion_group!(benches, bench_steps, bench_unprioritized, bench_subst, bench_merge);
criterion_main!(benches);
