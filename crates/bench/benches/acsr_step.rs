//! Microbenchmarks of the ACSR semantic core (experiment F2's engine):
//! one-step derivation, prioritization, the Par3 product and substitution.

use acsr::prelude::*;
use acsr::term::ActionT;
use acsr::GAction;
use bench::timing::Runner;

/// `n` workers on one cpu, each offering compute/idle — the canonical
/// scheduling hot spot of the translation.
fn workers(env: &mut Env, n: usize) -> P {
    let cpu = Res::new("bench_cpu");
    let comps: Vec<P> = (0..n)
        .map(|i| {
            let d = env.declare(&format!("BW{n}_{i}"), 0);
            env.set_body(
                d,
                choice([
                    act([(cpu, (i + 1) as i64)], invoke(d, [])),
                    act([] as [(Res, i32); 0], invoke(d, [])),
                ]),
            );
            invoke(d, [])
        })
        .collect();
    par(comps)
}

fn bench_steps(r: &mut Runner) {
    for n in [2usize, 4, 8] {
        let mut env = Env::new();
        let p = workers(&mut env, n);
        r.bench_with_param("acsr_prioritized_steps", n, || {
            prioritized_steps(&env, &p)
        });
    }
}

fn bench_unprioritized(r: &mut Runner) {
    let mut env = Env::new();
    let p = workers(&mut env, 6);
    r.bench("acsr_unprioritized_steps_6", || steps(&env, &p));
}

fn bench_subst(r: &mut Runner) {
    // A Fig. 5-shaped compute body with guards and parameter arithmetic.
    let cpu = Res::new("bench_cpu2");
    let mut env = Env::new();
    let d = env.declare("BenchCompute", 2);
    let body = choice([
        guard(
            BExpr::lt(Expr::p(0).add(Expr::c(1)), Expr::c(10)),
            act(
                [(cpu, Expr::c(50).sub(Expr::c(20).sub(Expr::p(1))))],
                invoke(d, [Expr::p(0).add(Expr::c(1)), Expr::p(1).add(Expr::c(1))]),
            ),
        ),
        guard(
            BExpr::ge(Expr::p(0).add(Expr::c(1)), Expr::c(3)),
            evt_send(Symbol::new("bench_done"), 1, nil()),
        ),
        act([] as [(Res, i32); 0], invoke(d, [Expr::p(0), Expr::p(1).add(Expr::c(1))])),
    ]);
    env.set_body(d, body);
    r.bench("acsr_instantiate_compute", || {
        env.instantiate(d, &[4, 7]).unwrap()
    });
}

fn bench_merge(r: &mut Runner) {
    let mk = |names: &[(&str, u32)]| {
        let t = ActionT {
            uses: names
                .iter()
                .map(|(r, p)| (Res::new(r), Expr::c(*p as i64)))
                .collect(),
        };
        GAction::from_template(&t, None).unwrap()
    };
    let a = mk(&[("m_r1", 1), ("m_r3", 2), ("m_r5", 3)]);
    let b = mk(&[("m_r2", 1), ("m_r4", 2), ("m_r6", 3)]);
    r.bench("gaction_merge_disjoint", || a.merge(&b).unwrap());
}

fn main() {
    let mut r = Runner::from_args();
    bench_steps(&mut r);
    bench_unprioritized(&mut r);
    bench_subst(&mut r);
    bench_merge(&mut r);
}
