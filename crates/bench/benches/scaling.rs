//! Experiment Q3 bench — exploration scaling with model size (threads in the
//! AADL model) and with engine worker count (the §7 efficiency direction).

use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};
use bench::harmonic_system;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use versa::{explore, Options};

fn bench_model_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_threads_in_model");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let m = harmonic_system(n, 4, 0.15);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                analyze(
                    &m,
                    &TranslateOptions::default(),
                    &AnalysisOptions::default(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_engine_workers(c: &mut Criterion) {
    let m = harmonic_system(5, 4, 0.15);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let mut group = c.benchmark_group("scaling_engine_workers");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    explore(
                        &tm.env,
                        &tm.initial,
                        &Options::default().with_threads(threads),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_size, bench_engine_workers);
criterion_main!(benches);
