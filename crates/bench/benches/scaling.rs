//! Experiment Q3 bench — exploration scaling with model size (threads in the
//! AADL model) and with engine worker count (the §7 efficiency direction).

use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};
use bench::harmonic_system;
use bench::timing::Runner;
use versa::{explore, Options};

fn bench_model_size(r: &mut Runner) {
    for n in [2usize, 3, 4, 5] {
        let m = harmonic_system(n, 4, 0.15);
        r.bench_with_param("scaling_threads_in_model", n, || {
            analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap()
        });
    }
}

fn bench_engine_workers(r: &mut Runner) {
    let m = harmonic_system(5, 4, 0.15);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    for threads in [1usize, 2, 4] {
        r.bench_with_param("scaling_engine_workers", threads, || {
            explore(
                &tm.env,
                &tm.initial,
                &Options::default().with_threads(threads),
            )
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_model_size(&mut r);
    bench_engine_workers(&mut r);
}
