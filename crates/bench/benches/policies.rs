//! Experiment Q2 bench — cost of a schedulability verdict per scheduling
//! policy encoding (§5): static priorities (RMS/DMS) vs parametric dynamic
//! priorities (EDF/LLF) on the same task set, compared with the classical
//! analyses' cost.

use aadl::instance::instantiate;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use bench::timing::Runner;
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::rm_schedulable;
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};
use sched_baselines::types::TaskSet;

fn set() -> TaskSet {
    uunifast(&TaskSetSpec {
        n: 3,
        target_utilization: 0.75,
        periods: vec![4, 5, 8, 10],
        seed: 7,
    })
}

fn bench_acsr_per_policy(r: &mut Runner) {
    let ts = set();
    for protocol in ["RMS", "DMS", "EDF", "LLF"] {
        let pkg = taskset_to_package(&ts, protocol);
        let m = instantiate(&pkg, "Top.impl").unwrap();
        r.bench_with_param("acsr_verdict_by_policy", protocol, || {
            analyze(
                &m,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap()
        });
    }
}

fn bench_baselines(r: &mut Runner) {
    let ts = set();
    r.bench("baseline_rta", || rm_schedulable(&ts));
    r.bench("baseline_edf_demand", || edf_schedulable(&ts));
    r.bench("baseline_simulation_hyperperiod", || {
        sched_baselines::simulator::simulate(
            &ts,
            sched_baselines::simulator::Policy::Rm,
            sched_baselines::simulator::ExecModel::Wcet,
            ts.hyperperiod(),
        )
    });
}

fn bench_generation(r: &mut Runner) {
    let mut seed = 0u64;
    r.bench("uunifast_generate", move || {
        seed += 1;
        uunifast(&TaskSetSpec {
            n: 5,
            target_utilization: 0.8,
            periods: vec![4, 5, 8, 10, 16, 20],
            seed,
        })
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_acsr_per_policy(&mut r);
    bench_baselines(&mut r);
    bench_generation(&mut r);
}
