//! Experiment Q2 bench — cost of a schedulability verdict per scheduling
//! policy encoding (§5): static priorities (RMS/DMS) vs parametric dynamic
//! priorities (EDF/LLF) on the same task set, compared with the classical
//! analyses' cost.

use aadl::instance::instantiate;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::rm_schedulable;
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};
use sched_baselines::types::TaskSet;

fn set() -> TaskSet {
    uunifast(&TaskSetSpec {
        n: 3,
        target_utilization: 0.75,
        periods: vec![4, 5, 8, 10],
        seed: 7,
    })
}

fn bench_acsr_per_policy(c: &mut Criterion) {
    let ts = set();
    let mut group = c.benchmark_group("acsr_verdict_by_policy");
    group.sample_size(10);
    for protocol in ["RMS", "DMS", "EDF", "LLF"] {
        let pkg = taskset_to_package(&ts, protocol);
        let m = instantiate(&pkg, "Top.impl").unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, _| {
                b.iter(|| {
                    analyze(
                        &m,
                        &TranslateOptions::default(),
                        &AnalysisOptions::default(),
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let ts = set();
    c.bench_function("baseline_rta", |b| {
        b.iter(|| rm_schedulable(&ts));
    });
    c.bench_function("baseline_edf_demand", |b| {
        b.iter(|| edf_schedulable(&ts));
    });
    c.bench_function("baseline_simulation_hyperperiod", |b| {
        b.iter(|| {
            sched_baselines::simulator::simulate(
                &ts,
                sched_baselines::simulator::Policy::Rm,
                sched_baselines::simulator::ExecModel::Wcet,
                ts.hyperperiod(),
            )
        });
    });
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("uunifast_generate", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            uunifast(&TaskSetSpec {
                n: 5,
                target_utilization: 0.8,
                periods: vec![4, 5, 8, 10, 16, 20],
                seed,
            })
        });
    });
}

criterion_group!(benches, bench_acsr_per_policy, bench_baselines, bench_generation);
criterion_main!(benches);
