//! State-space exploration throughput (the VERSA-equivalent engine): states
//! per second on product spaces, and trace reconstruction cost.

use acsr::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use versa::{explore, Options};

/// Independent modulo-counters: a pure product space of `lens.product()`
/// states with no communication — a clean throughput measure.
fn counters(env: &mut Env, lens: &[i64]) -> P {
    let comps: Vec<P> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let d = env.declare(&format!("Ctr{i}_{len}"), 1);
            env.set_body(
                d,
                choice([
                    guard(
                        BExpr::lt(Expr::p(0), Expr::c(len - 1)),
                        act(
                            [(Res::new(&format!("ctr_r{i}")), 1)],
                            invoke(d, [Expr::p(0).add(Expr::c(1))]),
                        ),
                    ),
                    guard(
                        BExpr::eq(Expr::p(0), Expr::c(len - 1)),
                        act([(Res::new(&format!("ctr_r{i}")), 1)], invoke(d, [Expr::c(0)])),
                    ),
                ]),
            );
            invoke(d, [Expr::c(0)])
        })
        .collect();
    par(comps)
}

fn bench_product_spaces(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_product_space");
    group.sample_size(20);
    for (label, lens) in [("7x5", vec![7i64, 5]), ("7x5x3", vec![7, 5, 3]), ("11x7x5", vec![11, 7, 5])] {
        let mut env = Env::new();
        let p = counters(&mut env, &lens);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| explore(&env, &p, &Options::default()));
        });
    }
    group.finish();
}

fn bench_parallel_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_workers");
    group.sample_size(10);
    let mut env = Env::new();
    let p = counters(&mut env, &[13, 11, 7]);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| explore(&env, &p, &Options::default().with_threads(threads)));
            },
        );
    }
    group.finish();
}

fn bench_deadlock_trace(c: &mut Criterion) {
    // A long corridor to a deadlock: measures parent-pointer reconstruction.
    let mut env = Env::new();
    let d = env.declare("Corridor", 1);
    env.set_body(
        d,
        choice([
            guard(
                BExpr::lt(Expr::p(0), Expr::c(500)),
                act(
                    [(Res::new("corridor_r"), 1)],
                    invoke(d, [Expr::p(0).add(Expr::c(1))]),
                ),
            ),
            // p0 == 500: no steps ⇒ deadlock.
        ]),
    );
    let p = invoke(d, [Expr::c(0)]);
    let ex = explore(&env, &p, &Options::default());
    assert_eq!(ex.deadlocks.len(), 1);
    c.bench_function("deadlock_trace_500", |b| {
        b.iter(|| ex.first_deadlock_trace().unwrap());
    });
}

criterion_group!(
    benches,
    bench_product_spaces,
    bench_parallel_workers,
    bench_deadlock_trace
);
criterion_main!(benches);
