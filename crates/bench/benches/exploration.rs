//! State-space exploration throughput (the VERSA-equivalent engine): states
//! per second on product spaces, and trace reconstruction cost.

use acsr::prelude::*;
use bench::timing::Runner;
use versa::{explore, Options};

/// Independent modulo-counters: a pure product space of `lens.product()`
/// states with no communication — a clean throughput measure.
fn counters(env: &mut Env, lens: &[i64]) -> P {
    let comps: Vec<P> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let d = env.declare(&format!("Ctr{i}_{len}"), 1);
            env.set_body(
                d,
                choice([
                    guard(
                        BExpr::lt(Expr::p(0), Expr::c(len - 1)),
                        act(
                            [(Res::new(&format!("ctr_r{i}")), 1)],
                            invoke(d, [Expr::p(0).add(Expr::c(1))]),
                        ),
                    ),
                    guard(
                        BExpr::eq(Expr::p(0), Expr::c(len - 1)),
                        act([(Res::new(&format!("ctr_r{i}")), 1)], invoke(d, [Expr::c(0)])),
                    ),
                ]),
            );
            invoke(d, [Expr::c(0)])
        })
        .collect();
    par(comps)
}

fn bench_product_spaces(r: &mut Runner) {
    for (label, lens) in [
        ("7x5", vec![7i64, 5]),
        ("7x5x3", vec![7, 5, 3]),
        ("11x7x5", vec![11, 7, 5]),
    ] {
        let mut env = Env::new();
        let p = counters(&mut env, &lens);
        r.bench_with_param("explore_product_space", label, || {
            explore(&env, &p, &Options::default())
        });
    }
}

fn bench_parallel_workers(r: &mut Runner) {
    let mut env = Env::new();
    let p = counters(&mut env, &[13, 11, 7]);
    for threads in [1usize, 2, 4] {
        r.bench_with_param("explore_workers", threads, || {
            explore(&env, &p, &Options::default().with_threads(threads))
        });
    }
}

fn bench_deadlock_trace(r: &mut Runner) {
    // A long corridor to a deadlock: measures parent-pointer reconstruction.
    let mut env = Env::new();
    let d = env.declare("Corridor", 1);
    env.set_body(
        d,
        choice([
            guard(
                BExpr::lt(Expr::p(0), Expr::c(500)),
                act(
                    [(Res::new("corridor_r"), 1)],
                    invoke(d, [Expr::p(0).add(Expr::c(1))]),
                ),
            ),
            // p0 == 500: no steps ⇒ deadlock.
        ]),
    );
    let p = invoke(d, [Expr::c(0)]);
    let ex = explore(&env, &p, &Options::default());
    assert_eq!(ex.deadlocks.len(), 1);
    r.bench("deadlock_trace_500", || ex.first_deadlock_trace().unwrap());
}

fn main() {
    let mut r = Runner::from_args();
    bench_product_spaces(&mut r);
    bench_parallel_workers(&mut r);
    bench_deadlock_trace(&mut r);
}
