//! Baseline analysis microbenchmarks: RTA fixpoints, demand-bound
//! checkpoints and simulator throughput as task sets grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::response_times;
use sched_baselines::simulator::{simulate, ExecModel, Policy};
use sched_baselines::taskset::{uunifast, TaskSetSpec};
use sched_baselines::types::TaskSet;

fn set(n: usize) -> TaskSet {
    uunifast(&TaskSetSpec {
        n,
        target_utilization: 0.8,
        periods: vec![10, 20, 40, 50, 100, 200],
        seed: 42,
    })
}

fn bench_rta(c: &mut Criterion) {
    let mut group = c.benchmark_group("rta_response_times");
    for n in [4usize, 8, 16, 32] {
        let ts = set(n);
        let order = ts.rm_order();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| response_times(&ts, &order));
        });
    }
    group.finish();
}

fn bench_demand(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_demand_criterion");
    for n in [4usize, 8, 16] {
        let ts = set(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| edf_schedulable(&ts));
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_hyperperiod");
    for policy in [Policy::Rm, Policy::Edf, Policy::Llf] {
        let ts = set(8);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| simulate(&ts, policy, ExecModel::Wcet, ts.hyperperiod()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rta, bench_demand, bench_simulator);
criterion_main!(benches);
