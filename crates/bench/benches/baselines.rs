//! Baseline analysis microbenchmarks: RTA fixpoints, demand-bound
//! checkpoints and simulator throughput as task sets grow.

use bench::timing::Runner;
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::response_times;
use sched_baselines::simulator::{simulate, ExecModel, Policy};
use sched_baselines::taskset::{uunifast, TaskSetSpec};
use sched_baselines::types::TaskSet;

fn set(n: usize) -> TaskSet {
    uunifast(&TaskSetSpec {
        n,
        target_utilization: 0.8,
        periods: vec![10, 20, 40, 50, 100, 200],
        seed: 42,
    })
}

fn bench_rta(r: &mut Runner) {
    for n in [4usize, 8, 16, 32] {
        let ts = set(n);
        let order = ts.rm_order();
        r.bench_with_param("rta_response_times", n, || response_times(&ts, &order));
    }
}

fn bench_demand(r: &mut Runner) {
    for n in [4usize, 8, 16] {
        let ts = set(n);
        r.bench_with_param("edf_demand_criterion", n, || edf_schedulable(&ts));
    }
}

fn bench_simulator(r: &mut Runner) {
    for policy in [Policy::Rm, Policy::Edf, Policy::Llf] {
        let ts = set(8);
        r.bench_with_param("simulator_hyperperiod", format!("{policy:?}"), move || {
            simulate(&ts, policy, ExecModel::Wcet, ts.hyperperiod())
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_rta(&mut r);
    bench_demand(&mut r);
    bench_simulator(&mut r);
}
