//! Experiment F1 bench — the cruise-control system of Fig. 1: front-end
//! (parse + instantiate), translation (Algorithm 1) and full analysis cost,
//! nominal and overloaded.

use aadl::examples::{cruise_control, cruise_control_model, cruise_control_overloaded};
use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::pretty::render_package;
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};
use bench::timing::Runner;

fn bench_front_end(r: &mut Runner) {
    let text = render_package(&cruise_control());
    r.bench("cruise_parse", || parse_package(&text).unwrap());
    let pkg = cruise_control();
    r.bench("cruise_instantiate", || {
        instantiate(&pkg, "CruiseControl.impl").unwrap()
    });
}

fn bench_translate(r: &mut Runner) {
    let m = cruise_control_model();
    r.bench("cruise_translate", || {
        translate(&m, &TranslateOptions::default()).unwrap()
    });
}

fn bench_analysis(r: &mut Runner) {
    let nominal = cruise_control_model();
    r.bench("cruise_analysis/nominal_exhaustive", || {
        let v = analyze(
            &nominal,
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        assert!(v.schedulable());
        v
    });
    let overloaded = instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap();
    r.bench("cruise_analysis/overloaded_first_deadlock", || {
        let v = analyze(
            &overloaded,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable());
        v
    });
    // Ablation: compact translation mode (§7's "more compact state spaces").
    r.bench("cruise_analysis/nominal_compact_mode", || {
        analyze(
            &nominal,
            &TranslateOptions {
                compact: true,
                ..Default::default()
            },
            &AnalysisOptions::exhaustive(),
        )
        .unwrap()
    });
}

fn bench_diagnosis(r: &mut Runner) {
    // Raising the failing scenario (trace → AADL timeline).
    let overloaded = instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap();
    let tm = translate(&overloaded, &TranslateOptions::default()).unwrap();
    let ex = versa::explore(&tm.env, &tm.initial, &versa::Options::verdict());
    let trace = ex.first_deadlock_trace().unwrap();
    r.bench("cruise_raise_scenario", || {
        aadl2acsr::diagnose::raise(&overloaded, &tm, &trace)
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_front_end(&mut r);
    bench_translate(&mut r);
    bench_analysis(&mut r);
    bench_diagnosis(&mut r);
}
