//! Experiment F1 bench — the cruise-control system of Fig. 1: front-end
//! (parse + instantiate), translation (Algorithm 1) and full analysis cost,
//! nominal and overloaded.

use aadl::examples::{cruise_control, cruise_control_model, cruise_control_overloaded};
use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::pretty::render_package;
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_front_end(c: &mut Criterion) {
    let text = render_package(&cruise_control());
    c.bench_function("cruise_parse", |b| {
        b.iter(|| parse_package(&text).unwrap());
    });
    let pkg = cruise_control();
    c.bench_function("cruise_instantiate", |b| {
        b.iter(|| instantiate(&pkg, "CruiseControl.impl").unwrap());
    });
}

fn bench_translate(c: &mut Criterion) {
    let m = cruise_control_model();
    c.bench_function("cruise_translate", |b| {
        b.iter(|| translate(&m, &TranslateOptions::default()).unwrap());
    });
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("cruise_analysis");
    group.sample_size(10);
    let nominal = cruise_control_model();
    group.bench_function("nominal_exhaustive", |b| {
        b.iter(|| {
            let v = analyze(
                &nominal,
                &TranslateOptions::default(),
                &AnalysisOptions::exhaustive(),
            )
            .unwrap();
            assert!(v.schedulable);
            v
        });
    });
    let overloaded = instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap();
    group.bench_function("overloaded_first_deadlock", |b| {
        b.iter(|| {
            let v = analyze(
                &overloaded,
                &TranslateOptions::default(),
                &AnalysisOptions::default(),
            )
            .unwrap();
            assert!(!v.schedulable);
            v
        });
    });
    // Ablation: compact translation mode (§7's "more compact state spaces").
    group.bench_function("nominal_compact_mode", |b| {
        b.iter(|| {
            analyze(
                &nominal,
                &TranslateOptions {
                    compact: true,
                    ..Default::default()
                },
                &AnalysisOptions::exhaustive(),
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_diagnosis(c: &mut Criterion) {
    // Raising the failing scenario (trace → AADL timeline).
    let overloaded = instantiate(&cruise_control_overloaded(), "CruiseControl.impl").unwrap();
    let tm = translate(&overloaded, &TranslateOptions::default()).unwrap();
    let ex = versa::explore(&tm.env, &tm.initial, &versa::Options::verdict());
    let trace = ex.first_deadlock_trace().unwrap();
    c.bench_function("cruise_raise_scenario", |b| {
        b.iter(|| aadl2acsr::diagnose::raise(&overloaded, &tm, &trace));
    });
}

criterion_group!(
    benches,
    bench_front_end,
    bench_translate,
    bench_analysis,
    bench_diagnosis
);
criterion_main!(benches);
