//! Cross-checks between the baseline analyses: the simulator against the
//! closed-form tests, on both implicit- and constrained-deadline task sets.
//! These mutual checks keep the §6 comparison baselines honest before they
//! are ever compared against the exhaustive ACSR analysis.
//!
//! Randomized task sets come from the workspace's vendored [`det`] harness
//! (`det_prop!` runs 64 seeded cases per property by default; failures print
//! a `DET_PROP_SEED` that reproduces the exact case).

use det::det_prop;
use det::prop::{uints, vec_of};
use det::DetRng;
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::{dm_schedulable, response_times, rm_schedulable};
use sched_baselines::simulator::{simulate, ExecModel, Policy};
use sched_baselines::types::{Task, TaskSet};
use sched_baselines::utilization::{hyperbolic_test, rm_utilization_test};

fn arb_taskset(rng: &mut DetRng) -> TaskSet {
    let n = rng.range_usize(1..4);
    let tasks = (0..n)
        .map(|_| {
            let period = *rng.pick(&[5u64, 6, 8, 10, 12]);
            let c = rng.range_u64(1..6);
            Task::new(0, period, c.min(period))
        })
        .collect();
    TaskSet::new(tasks)
}

det_prop! {
    fn rm_simulation_agrees_with_rta(ts in arb_taskset) {
        let sim = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
        assert_eq!(sim.ok(), rm_schedulable(&ts), "{:?}", ts);
    }

    fn dm_simulation_agrees_with_rta_on_constrained_deadlines(
        ts in arb_taskset, shrink in vec_of(uints(0..4), 3..4)
    ) {
        let mut ts = ts;
        for (t, s) in ts.tasks.iter_mut().zip(shrink) {
            t.deadline = (t.period - s.min(t.period - 1)).max(t.wcet);
        }
        let sim = simulate(&ts, Policy::Dm, ExecModel::Wcet, ts.hyperperiod());
        assert_eq!(sim.ok(), dm_schedulable(&ts), "{:?}", ts);
    }

    fn edf_simulation_agrees_with_demand_criterion(ts in arb_taskset) {
        let sim = simulate(&ts, Policy::Edf, ExecModel::Wcet, ts.hyperperiod());
        assert_eq!(sim.ok(), edf_schedulable(&ts), "{:?}", ts);
    }

    fn utilization_bounds_are_sufficient(ts in arb_taskset) {
        // Liu–Layland and hyperbolic are sufficient conditions: passing
        // either implies exact RM schedulability.
        if rm_utilization_test(&ts) || hyperbolic_test(&ts) {
            assert!(rm_schedulable(&ts), "{:?}", ts);
        }
    }

    fn response_times_bound_simulated_completions(ts in arb_taskset) {
        // The worst observed response in a synchronous WCET simulation equals
        // the RTA fixpoint for the *first* job of each task (critical
        // instant), so RTA must never under-estimate.
        let order = ts.rm_order();
        let rts = response_times(&ts, &order);
        let sim = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
        if sim.ok() {
            for (i, r) in rts.iter().enumerate() {
                let r = r.expect("schedulable ⇒ fixpoint exists");
                // Find the first job's completion time in the schedule.
                let mut executed = 0;
                let mut completion = None;
                for (t, slot) in sim.schedule.iter().enumerate() {
                    if *slot == Some(i) {
                        executed += 1;
                        if executed == ts.tasks[i].wcet {
                            completion = Some(t as u64 + 1);
                            break;
                        }
                    }
                }
                if let Some(done) = completion {
                    assert!(done <= r, "task {i}: simulated {done} > RTA {r} in {ts:?}");
                }
            }
        }
    }

    fn bcet_runs_never_do_worse_than_wcet_on_one_processor(ts in arb_taskset) {
        // Fully preemptive fixed-priority uniprocessor scheduling has no
        // execution-time anomalies: if WCET misses nothing, BCET misses
        // nothing.
        let wcet = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
        if wcet.ok() {
            let mut ts2 = ts.clone();
            for t in &mut ts2.tasks {
                t.bcet = (t.wcet / 2).max(1);
            }
            let bcet = simulate(&ts2, Policy::Rm, ExecModel::Bcet, ts2.hyperperiod());
            assert!(bcet.ok(), "{:?}", ts2);
        }
    }
}
