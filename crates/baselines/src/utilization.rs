//! Utilization-based schedulability bounds for rate-monotonic scheduling.
//!
//! These are the classical *sufficient* tests (MetaH's analysis family, §6 of
//! the paper): passing guarantees schedulability; failing is inconclusive —
//! exactly the gap the paper's exact, exhaustive analysis closes.

use crate::types::TaskSet;

/// Total worst-case utilization `Σ Cᵢ/Tᵢ`.
pub fn utilization(ts: &TaskSet) -> f64 {
    ts.utilization()
}

/// The Liu–Layland bound `n(2^{1/n} − 1)` for `n` tasks.
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Sufficient RM test: `U ≤ n(2^{1/n} − 1)` (implicit deadlines).
pub fn rm_utilization_test(ts: &TaskSet) -> bool {
    ts.utilization() <= liu_layland_bound(ts.len()) + 1e-12
}

/// The hyperbolic bound (Bini–Buttazzo): `Π (Uᵢ + 1) ≤ 2` — strictly less
/// pessimistic than Liu–Layland.
pub fn hyperbolic_test(ts: &TaskSet) -> bool {
    ts.tasks
        .iter()
        .map(|t| t.utilization() + 1.0)
        .product::<f64>()
        <= 2.0 + 1e-12
}

/// Necessary-and-sufficient EDF test for implicit deadlines: `U ≤ 1`.
pub fn edf_utilization_test(ts: &TaskSet) -> bool {
    ts.utilization() <= 1.0 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Task;

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284271247).abs() < 1e-9);
        // n → ∞: ln 2.
        assert!((liu_layland_bound(100_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn rm_test_accepts_low_utilization() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 2), Task::new(0, 20, 4)]);
        assert!(rm_utilization_test(&ts)); // U = 0.4
        assert!(hyperbolic_test(&ts));
    }

    #[test]
    fn rm_test_is_inconclusive_above_the_bound() {
        // U = 0.5 + 0.45 = 0.95 > 0.828: the bound fails even though this
        // particular set happens to be RM-schedulable (harmonic-ish periods).
        let ts = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 20, 9)]);
        assert!(!rm_utilization_test(&ts));
    }

    #[test]
    fn hyperbolic_dominates_liu_layland() {
        // A set accepted by hyperbolic but not by Liu–Layland:
        // U1 = U2 = 0.414 ⇒ U = 0.828 ≤ bound? L&L bound for 2 = 0.8284.
        // Use 3 tasks: U_i = 0.28 each: U = 0.84 > 0.7798 (LL for 3) but
        // Π(1.28)³ = 2.097 > 2 … pick U_i = 0.26: Π(1.26)³ = 2.0004 > 2.
        // Known example: U = (0.5, 0.25, 0.1): LL bound 0.7798 < 0.85;
        // hyperbolic: 1.5 · 1.25 · 1.1 = 2.0625 > 2. Try harmonic-friendly
        // skewed set (0.6, 0.1, 0.1): product = 1.6·1.1·1.1 = 1.936 ≤ 2,
        // sum = 0.8 > 0.7798.
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 6),
            Task::new(0, 20, 2),
            Task::new(0, 40, 4),
        ]);
        assert!(!rm_utilization_test(&ts));
        assert!(hyperbolic_test(&ts));
    }

    #[test]
    fn edf_accepts_full_utilization() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 14, 7)]);
        assert!((ts.utilization() - 1.0).abs() < 1e-9);
        assert!(edf_utilization_test(&ts));
        assert!(!rm_utilization_test(&ts));
    }

    #[test]
    fn empty_set_is_schedulable() {
        let ts = TaskSet::default();
        assert!(rm_utilization_test(&ts));
        assert!(edf_utilization_test(&ts));
        assert!(hyperbolic_test(&ts));
    }
}
