//! Periodic task-set types shared by the baseline analyses.
//!
//! Time is in integer quanta — the same discrete-time abstraction as the
//! ACSR translation (§4.1 of the paper), so verdicts are directly comparable.

/// A critical section on a shared resource, mirroring the AADL
/// `Critical_Section_Execution_Time` extension: the *first* `len` quanta of
/// every job execute while holding the lock on `resource`, matching the ACSR
/// translation (a thread manages at most one critical section per dispatch).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cs {
    /// Index of the shared resource (lock) this task's section uses.
    pub resource: usize,
    /// Section length in quanta; must satisfy `1 ≤ len ≤ bcet` so the
    /// section fits inside every job of the task.
    pub len: u64,
}

/// Concurrency-control protocol for shared resources, matching the AADL
/// `Concurrency_Control_Protocol` property values.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LockProtocol {
    /// Plain mutual exclusion, no priority elevation (`None_Specified`):
    /// priority inversion is possible and blocking is unbounded.
    #[default]
    None,
    /// Priority inheritance (`Priority_Inheritance`): a lock holder runs at
    /// the maximum priority of the jobs it currently blocks.
    Inheritance,
    /// Immediate priority ceiling (`Priority_Ceiling`): a lock holder runs
    /// at the static ceiling of its resource — the highest priority among
    /// all tasks that ever use it.
    Ceiling,
}

/// A periodic task (synchronous release at t = 0).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Task {
    /// Stable identifier (index in the owning set).
    pub id: usize,
    /// Period.
    pub period: u64,
    /// Best-case execution time (≥ 1).
    pub bcet: u64,
    /// Worst-case execution time (≥ bcet).
    pub wcet: u64,
    /// Relative deadline (≤ period for the analyses implemented here).
    pub deadline: u64,
    /// Explicit priority for HPF (higher = more important).
    pub priority: Option<u32>,
    /// Optional critical section at the start of every job.
    pub cs: Option<Cs>,
}

impl Task {
    /// A task with implicit deadline (= period) and fixed execution time.
    pub fn new(id: usize, period: u64, wcet: u64) -> Task {
        Task {
            id,
            period,
            bcet: wcet,
            wcet,
            deadline: period,
            priority: None,
            cs: None,
        }
    }

    /// Set an explicit (constrained) deadline.
    pub fn with_deadline(mut self, deadline: u64) -> Task {
        self.deadline = deadline;
        self
    }

    /// Set an execution-time range.
    pub fn with_exec_range(mut self, bcet: u64, wcet: u64) -> Task {
        self.bcet = bcet;
        self.wcet = wcet;
        self
    }

    /// Give the task a critical section of `len` quanta on `resource`
    /// (clamped to `[1, bcet]` so it fits inside every job).
    pub fn with_cs(mut self, resource: usize, len: u64) -> Task {
        self.cs = Some(Cs {
            resource,
            len: len.clamp(1, self.bcet),
        });
        self
    }

    /// Worst-case utilization of this task.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }
}

/// A set of periodic tasks on one processor.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TaskSet {
    /// The tasks.
    pub tasks: Vec<Task>,
}

impl TaskSet {
    /// Build from tasks (re-assigns ids to indices).
    pub fn new(mut tasks: Vec<Task>) -> TaskSet {
        for (i, t) in tasks.iter_mut().enumerate() {
            t.id = i;
        }
        TaskSet { tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total worst-case utilization.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Least common multiple of the periods.
    pub fn hyperperiod(&self) -> u64 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.tasks
            .iter()
            .map(|t| t.period)
            .fold(1u64, |acc, p| acc / gcd(acc, p) * p)
    }

    /// Task indices sorted rate-monotonically (ascending period; stable).
    pub fn rm_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.tasks.len()).collect();
        idx.sort_by_key(|&i| self.tasks[i].period);
        idx
    }

    /// Task indices sorted deadline-monotonically (ascending deadline).
    pub fn dm_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.tasks.len()).collect();
        idx.sort_by_key(|&i| self.tasks[i].deadline);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_sums() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 2), Task::new(0, 20, 5)]);
        assert!((ts.utilization() - 0.45).abs() < 1e-9);
        assert_eq!(ts.tasks[1].id, 1, "ids reassigned");
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 1),
            Task::new(0, 15, 1),
            Task::new(0, 6, 1),
        ]);
        assert_eq!(ts.hyperperiod(), 30);
    }

    #[test]
    fn orders() {
        let ts = TaskSet::new(vec![
            Task::new(0, 20, 1).with_deadline(5),
            Task::new(0, 10, 1).with_deadline(10),
        ]);
        assert_eq!(ts.rm_order(), vec![1, 0]);
        assert_eq!(ts.dm_order(), vec![0, 1]);
    }

    #[test]
    fn builders() {
        let t = Task::new(0, 50, 10).with_deadline(40).with_exec_range(5, 10);
        assert_eq!(t.deadline, 40);
        assert_eq!(t.bcet, 5);
        assert!((t.utilization() - 0.2).abs() < 1e-9);
    }
}
