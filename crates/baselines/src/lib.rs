//! # sched-baselines — classical schedulability analyses and a
//! Cheddar-style simulator
//!
//! The paper positions its exhaustive, process-algebraic analysis against two
//! families of prior tooling (§6):
//!
//! * **Closed-form / fixpoint schedulability tests** — MetaH offered
//!   rate-monotonic analysis; this crate implements the Liu–Layland and
//!   hyperbolic utilization bounds, exact response-time analysis for
//!   fixed-priority scheduling, and the processor-demand criterion for EDF.
//! * **Simulation-based tools such as Cheddar** — "We believe that exploring
//!   the state space of a formal executable model offers exhaustive analysis
//!   of all possible behaviors, which is very important if there is much
//!   uncertainty in the model behavior." The [`simulator`] module is that
//!   foil: a discrete-time scheduling simulator that executes *one* behaviour
//!   per run (fixed or sampled execution times), so experiments can show
//!   what a simulation misses and the exhaustive exploration catches.
//!
//! [`taskset`] generates randomized periodic task sets (UUniFast) and
//! converts them into AADL packages, closing the loop for the
//! verdict-agreement experiments (Q2 in `EXPERIMENTS.md`).

pub mod edf_demand;
pub mod rta;
pub mod simulator;
pub mod taskset;
pub mod types;
pub mod utilization;

pub use edf_demand::edf_schedulable;
pub use rta::{
    blocking_terms, response_times, response_times_blocking, rta_schedulable,
    rta_schedulable_blocking,
};
pub use simulator::{simulate, simulate_locking, ExecModel, Policy, SimOutcome};
pub use taskset::{taskset_to_package, taskset_to_package_locking, uunifast, TaskSetSpec};
pub use types::{Cs, LockProtocol, Task, TaskSet};
pub use utilization::{hyperbolic_test, liu_layland_bound, rm_utilization_test, utilization};
