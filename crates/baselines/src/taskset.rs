//! Randomized task-set generation (UUniFast) and conversion to AADL.
//!
//! The generator drives the verdict-agreement experiment (Q2): random task
//! sets are analyzed three ways — classical tests (RTA / processor demand),
//! one-run simulation, and the paper's exhaustive ACSR exploration — and the
//! verdicts are compared. [`taskset_to_package`] turns a task set into a
//! single-processor AADL package (periods in milliseconds, one quantum =
//! 1 ms) so the exact model the baselines judge is the one the translation
//! consumes.

use det::DetRng;

use aadl::builder::PackageBuilder;
use aadl::model::{Category, Package};
use aadl::properties::{names, ConcurrencyControlProtocol, PropertyValue, TimeVal};

use crate::types::{Task, TaskSet};

/// Parameters for random task-set generation.
#[derive(Clone, Debug)]
pub struct TaskSetSpec {
    /// Number of tasks.
    pub n: usize,
    /// Target total utilization (0, 1].
    pub target_utilization: f64,
    /// Period pool to draw from (keeps hyperperiods small enough for
    /// exhaustive exploration).
    pub periods: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaskSetSpec {
    fn default() -> TaskSetSpec {
        TaskSetSpec {
            n: 3,
            target_utilization: 0.7,
            periods: vec![4, 5, 8, 10, 16, 20],
            seed: 0,
        }
    }
}

/// The UUniFast algorithm (Bini & Buttazzo): draw `n` utilizations summing to
/// the target, then scale onto periods from the pool. Integer WCETs are
/// clamped to `[1, period]`, so the realized utilization may deviate slightly
/// from the target — compute it from the returned set when it matters.
pub fn uunifast(spec: &TaskSetSpec) -> TaskSet {
    let mut rng = DetRng::new(spec.seed);
    let n = spec.n.max(1);
    let mut utils = Vec::with_capacity(n);
    let mut sum_u = spec.target_utilization.clamp(0.01, 1.0);
    for i in 1..n {
        let next = sum_u * rng.next_f64().powf(1.0 / (n - i) as f64);
        utils.push(sum_u - next);
        sum_u = next;
    }
    utils.push(sum_u);

    let tasks = utils
        .into_iter()
        .map(|u| {
            let period = *rng.pick(&spec.periods);
            let wcet = ((u * period as f64).round() as u64).clamp(1, period);
            Task::new(0, period, wcet)
        })
        .collect();
    TaskSet::new(tasks)
}

/// Convert a task set into a one-processor AADL package named `RandomSet`
/// with threads `t0 … t(n-1)` (1 quantum = 1 ms), scheduled by `protocol`.
pub fn taskset_to_package(ts: &TaskSet, protocol: &str) -> Package {
    taskset_to_package_locking(ts, protocol, ConcurrencyControlProtocol::NoneSpecified)
}

/// [`taskset_to_package`], mapping the tasks' critical sections (see
/// [`Cs`](crate::types::Cs)) onto shared AADL data components guarded by
/// `ccp`: each distinct resource index `r` becomes a data subcomponent `r<r>`
/// with `Concurrency_Control_Protocol => ccp`, and each task with a section
/// gets a data access connection carrying its
/// `Critical_Section_Execution_Time` (1 quantum = 1 ms). This closes the loop
/// for the locking verdict-agreement property: the exact task set the
/// blocking-aware baselines judge is the one the ACSR translation consumes.
pub fn taskset_to_package_locking(
    ts: &TaskSet,
    protocol: &str,
    ccp: ConcurrencyControlProtocol,
) -> Package {
    let mut b = PackageBuilder::new("RandomSet").processor("cpu_t", |p| {
        p.prop_enum(names::SCHEDULING_PROTOCOL, protocol)
    });
    // One data type per distinct resource index, protocol on the type.
    let mut resources: Vec<usize> = ts.tasks.iter().filter_map(|t| t.cs).map(|c| c.resource).collect();
    resources.sort_unstable();
    resources.dedup();
    for &r in &resources {
        let ccp = ccp.to_string();
        b = b.component(&format!("R{r}"), Category::Data, move |d| {
            d.prop_enum(names::CONCURRENCY_CONTROL_PROTOCOL, &ccp)
        });
    }
    for t in &ts.tasks {
        let name = format!("T{}", t.id);
        let (bcet, wcet, deadline, period, prio) =
            (t.bcet, t.wcet, t.deadline, t.period, t.priority);
        b = b.thread(&name, move |tb| {
            let tb = tb
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(period as i64)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(
                        TimeVal::ms(bcet as i64),
                        TimeVal::ms(wcet as i64),
                    ),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(deadline as i64)),
                );
            match prio {
                Some(p) => tb.prop_int(names::PRIORITY, p as i64),
                None => tb,
            }
        });
    }
    b = b.system("Top", |s| s);
    b.implementation("Top.impl", Category::System, |mut i| {
        i = i.sub("cpu", Category::Processor, "cpu_t");
        for &r in &resources {
            i = i.sub(&format!("r{r}"), Category::Data, &format!("R{r}"));
        }
        for t in &ts.tasks {
            let sub = format!("t{}", t.id);
            let ty = format!("T{}", t.id);
            i = i.sub(&sub, Category::Thread, &ty).bind_processor(&sub, "cpu");
        }
        for t in &ts.tasks {
            if let Some(cs) = t.cs {
                i = i
                    .connect_data_access(
                        &format!("a{}", t.id),
                        &format!("r{}", cs.resource),
                        &format!("t{}", t.id),
                    )
                    .conn_prop(
                        names::CRITICAL_SECTION_EXECUTION_TIME,
                        PropertyValue::Time(TimeVal::ms(cs.len as i64)),
                    );
            }
        }
        // 1 quantum = 1 ms regardless of the GCD of the drawn values.
        i.prop(
            names::SCHEDULING_QUANTUM,
            PropertyValue::Time(TimeVal::ms(1)),
        )
    })
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::check::validate;
    use aadl::instance::instantiate;

    #[test]
    fn uunifast_hits_the_target_roughly() {
        for seed in 0..20 {
            let spec = TaskSetSpec {
                n: 4,
                target_utilization: 0.6,
                seed,
                ..Default::default()
            };
            let ts = uunifast(&spec);
            assert_eq!(ts.len(), 4);
            let u = ts.utilization();
            // Integer rounding on small periods is coarse (wcet is clamped to
            // [1, period], so each task can round up by as much as 1/period);
            // stay in a sane band rather than demanding the exact target.
            assert!(u > 0.2 && u < 1.35, "seed {seed}: U = {u}");
            assert!(ts.tasks.iter().all(|t| t.wcet >= 1 && t.wcet <= t.period));
        }
    }

    #[test]
    fn uunifast_is_reproducible() {
        let spec = TaskSetSpec::default();
        assert_eq!(uunifast(&spec), uunifast(&spec));
        let other = TaskSetSpec {
            seed: 99,
            ..Default::default()
        };
        assert_ne!(uunifast(&spec), uunifast(&other));
    }

    #[test]
    fn generated_package_instantiates_and_validates() {
        let ts = uunifast(&TaskSetSpec::default());
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
        assert_eq!(m.threads().count(), ts.len());
        let cpu = m.find("cpu").unwrap();
        assert_eq!(m.threads_on(cpu).len(), ts.len());
    }

    #[test]
    fn package_preserves_timing() {
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 3).with_deadline(8).with_exec_range(2, 3),
        ]);
        let pkg = taskset_to_package(&ts, "EDF");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let t = m.component(m.find("t0").unwrap());
        assert_eq!(t.properties.period(), Some(TimeVal::ms(10)));
        assert_eq!(t.properties.compute_deadline(), Some(TimeVal::ms(8)));
        assert_eq!(
            t.properties.compute_execution_time(),
            Some((TimeVal::ms(2), TimeVal::ms(3)))
        );
    }

    #[test]
    fn locking_package_carries_sections_and_protocol() {
        use aadl::properties::TimeVal;
        let mut h = Task::new(0, 8, 2).with_cs(0, 1);
        h.priority = Some(9);
        let mut l = Task::new(0, 16, 5).with_cs(0, 4);
        l.priority = Some(3);
        let ts = TaskSet::new(vec![h, l]);
        let pkg = taskset_to_package_locking(
            &ts,
            "HPF",
            ConcurrencyControlProtocol::PriorityCeiling,
        );
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).is_empty(), "{:?}", validate(&m));
        let store = m.component(m.find("r0").unwrap());
        assert_eq!(
            store.properties.concurrency_control(),
            ConcurrencyControlProtocol::PriorityCeiling
        );
        let accesses = &m.accesses;
        assert_eq!(accesses.len(), 2);
        assert_eq!(
            accesses[0].properties.critical_section_time(),
            Some(TimeVal::ms(1))
        );
        assert_eq!(
            accesses[1].properties.critical_section_time(),
            Some(TimeVal::ms(4))
        );
    }

    #[test]
    fn hpf_priorities_survive_conversion() {
        let mut t = Task::new(0, 10, 2);
        t.priority = Some(5);
        let pkg = taskset_to_package(&TaskSet::new(vec![t]), "HPF");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        assert!(validate(&m).is_empty());
        let t0 = m.component(m.find("t0").unwrap());
        assert_eq!(t0.properties.priority(), Some(5));
    }
}
