//! The processor-demand criterion for EDF (Baruah, Rosier, Howell).
//!
//! A synchronous periodic task set with constrained deadlines (`D ≤ T`) is
//! EDF-schedulable on one preemptive processor iff for every interval length
//! `L > 0`:
//!
//! ```text
//! dbf(L) = Σ_i max(0, ⌊(L − D_i)/T_i⌋ + 1) · C_i ≤ L
//! ```
//!
//! It suffices to check `L` at the absolute deadlines up to
//! `min(hyperperiod, L*)` where `L*` is the classic busy-period/utilization
//! bound. This is the exact EDF baseline the exhaustive ACSR analysis with
//! the parametric priority `π = dmax − (d − t)` (§5) is compared against in
//! experiment Q2.

use crate::types::TaskSet;

/// The demand bound function at interval length `l`.
pub fn dbf(ts: &TaskSet, l: u64) -> u64 {
    ts.tasks
        .iter()
        .map(|t| {
            if l < t.deadline {
                0
            } else {
                ((l - t.deadline) / t.period + 1) * t.wcet
            }
        })
        .sum()
}

/// The set of interval lengths that must be checked: absolute deadlines up
/// to the analysis bound.
fn checkpoints(ts: &TaskSet, horizon: u64) -> Vec<u64> {
    let mut pts = Vec::new();
    for t in &ts.tasks {
        let mut d = t.deadline;
        while d <= horizon {
            pts.push(d);
            d += t.period;
        }
    }
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Exact EDF schedulability via the processor-demand criterion.
pub fn edf_schedulable(ts: &TaskSet) -> bool {
    if ts.is_empty() {
        return true;
    }
    let u = ts.utilization();
    if u > 1.0 + 1e-12 {
        return false;
    }
    // Horizon: the hyperperiod always suffices for synchronous release; when
    // U < 1 the La/busy-period bound can be much smaller, so take the min.
    let hyper = ts.hyperperiod();
    let horizon = if u < 1.0 - 1e-9 {
        // L_a = max_i (T_i - D_i) · U / (1 - U), guarded to at least the
        // largest deadline.
        let la = ts
            .tasks
            .iter()
            .map(|t| (t.period.saturating_sub(t.deadline)) as f64)
            .fold(0.0f64, f64::max)
            * u
            / (1.0 - u);
        let dmax = ts.tasks.iter().map(|t| t.deadline).max().unwrap_or(1);
        hyper.min((la.ceil() as u64).max(dmax))
    } else {
        hyper
    };
    checkpoints(ts, horizon).into_iter().all(|l| dbf(ts, l) <= l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Task;
    use crate::utilization::edf_utilization_test;

    #[test]
    fn implicit_deadlines_reduce_to_utilization() {
        let full = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 14, 7)]);
        assert!(edf_schedulable(&full)); // U = 1.0
        let over = TaskSet::new(vec![Task::new(0, 10, 6), Task::new(0, 14, 7)]);
        assert!(!edf_schedulable(&over)); // U > 1
    }

    #[test]
    fn constrained_deadlines_can_fail_below_full_utilization() {
        // Two tasks, U = 0.9, but both must finish within tight deadlines:
        // T1 (P=10, C=4, D=4), T2 (P=10, C=5, D=9): at L = 4 demand 4 ≤ 4;
        // at L = 9: 4 + 5 = 9 ≤ 9 — schedulable. Tighten: D2 = 8 ⇒ dbf(8) = 9 > 8.
        let ok = TaskSet::new(vec![
            Task::new(0, 10, 4).with_deadline(4),
            Task::new(0, 10, 5).with_deadline(9),
        ]);
        assert!(edf_schedulable(&ok));
        let bad = TaskSet::new(vec![
            Task::new(0, 10, 4).with_deadline(4),
            Task::new(0, 10, 5).with_deadline(8),
        ]);
        assert!(!bad.tasks.is_empty());
        assert!(edf_utilization_test(&bad)); // naive U-test passes…
        assert!(!edf_schedulable(&bad)); // …but exact demand analysis fails.
    }

    #[test]
    fn dbf_is_monotone_and_steps_at_deadlines() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 3).with_deadline(6)]);
        assert_eq!(dbf(&ts, 5), 0);
        assert_eq!(dbf(&ts, 6), 3);
        assert_eq!(dbf(&ts, 15), 3);
        assert_eq!(dbf(&ts, 16), 6);
        for l in 1..60 {
            assert!(dbf(&ts, l) <= dbf(&ts, l + 1));
        }
    }

    #[test]
    fn empty_set_is_schedulable() {
        assert!(edf_schedulable(&TaskSet::default()));
    }

    #[test]
    fn edf_dominates_fixed_priority() {
        // Anything RM-schedulable is EDF-schedulable.
        use crate::rta::rm_schedulable;
        let sets = [
            vec![Task::new(0, 7, 3), Task::new(0, 12, 3), Task::new(0, 20, 5)],
            vec![Task::new(0, 10, 5), Task::new(0, 20, 10)],
        ];
        for tasks in sets {
            let ts = TaskSet::new(tasks);
            assert!(rm_schedulable(&ts));
            assert!(edf_schedulable(&ts));
        }
    }
}
