//! Exact response-time analysis (Joseph & Pandya) for preemptive
//! fixed-priority scheduling on one processor.
//!
//! The worst-case response time of task `i` with higher-priority set `hp(i)`
//! is the least fixpoint of
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j
//! ```
//!
//! exact (necessary and sufficient) for synchronous periodic tasks with
//! constrained deadlines (`D ≤ T`) — the same model fragment as the paper's
//! evaluation. Agreement between this analysis and the exhaustive ACSR
//! exploration on randomized task sets is experiment Q2.

use crate::types::{LockProtocol, TaskSet};

/// Compute worst-case response times under the given priority order
/// (`order[0]` is the *highest* priority task's index). Returns `None` for a
/// task whose fixpoint iteration diverges past its deadline + hyperperiod
/// (definitely unschedulable).
pub fn response_times(ts: &TaskSet, order: &[usize]) -> Vec<Option<u64>> {
    let mut out = vec![None; ts.tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        let ci = ts.tasks[i].wcet;
        let bound = ts.tasks[i].deadline.max(ts.tasks[i].period) * 2 + 1;
        let mut r = ci;
        loop {
            let interference: u64 = order[..rank]
                .iter()
                .map(|&j| {
                    let t = &ts.tasks[j];
                    r.div_ceil(t.period) * t.wcet
                })
                .sum();
            let next = ci + interference;
            if next == r {
                out[i] = Some(r);
                break;
            }
            if next > bound {
                break; // diverged: definitely misses
            }
            r = next;
        }
    }
    out
}

/// Exact fixed-priority schedulability: every response time exists and meets
/// its deadline.
pub fn rta_schedulable(ts: &TaskSet, order: &[usize]) -> bool {
    response_times(ts, order)
        .iter()
        .zip(&ts.tasks)
        .all(|(r, t)| r.is_some_and(|r| r <= t.deadline))
}

/// Classical worst-case blocking terms `B_i` for tasks with critical
/// sections (see [`Cs`](crate::types::Cs)) under a locking protocol.
///
/// A lower-priority task `j` with a section on resource `ρ` can block task
/// `i` iff the *ceiling* of `ρ` — the highest priority among its users — is
/// at least `i`'s priority, i.e. some task at `i`'s rank or above uses `ρ`
/// (this covers both direct and push-through blocking). Then:
///
/// * **Priority ceiling**: at most *one* lower-priority section blocks `i`
///   per job — `B_i` is the *maximum* such section length.
/// * **Priority inheritance**: each lower-priority task can block `i` once
///   (tasks here have at most one section) — `B_i` is the *sum*.
///
/// Returns `None` under [`LockProtocol::None`] when any blocking is possible
/// at all: plain mutexes bound nothing — a medium-priority task can preempt
/// the holder indefinitely, which is exactly the priority-inversion hazard.
pub fn blocking_terms(
    ts: &TaskSet,
    order: &[usize],
    protocol: LockProtocol,
) -> Option<Vec<u64>> {
    let mut out = vec![0u64; ts.tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        // Can a section on `res` block rank `rank`? Iff the ceiling of `res`
        // reaches this rank: someone at this rank or above uses it.
        let ceiling_reaches = |res: usize| {
            order[..=rank]
                .iter()
                .any(|&k| ts.tasks[k].cs.is_some_and(|c| c.resource == res))
        };
        let blockers = order[rank + 1..]
            .iter()
            .filter_map(|&j| ts.tasks[j].cs)
            .filter(|c| ceiling_reaches(c.resource));
        out[i] = match protocol {
            LockProtocol::Ceiling => blockers.map(|c| c.len).max().unwrap_or(0),
            LockProtocol::Inheritance => blockers.map(|c| c.len).sum(),
            LockProtocol::None => {
                if blockers.count() > 0 {
                    return None;
                }
                0
            }
        };
    }
    Some(out)
}

/// Blocking-aware response times: the least fixpoint of
///
/// ```text
/// R_i = C_i + B_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j
/// ```
///
/// Returns `None` when the blocking terms are unbounded (see
/// [`blocking_terms`]); per-task `None` when the fixpoint diverges past the
/// deadline bound. A *sufficient* test in the presence of blocking: the
/// critical-instant argument is pessimistic once sections interleave, so a
/// set this rejects may still be schedulable — the implication only runs one
/// way, which is exactly what the verdict-agreement property asserts.
pub fn response_times_blocking(
    ts: &TaskSet,
    order: &[usize],
    protocol: LockProtocol,
) -> Option<Vec<Option<u64>>> {
    let blocking = blocking_terms(ts, order, protocol)?;
    let mut out = vec![None; ts.tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        let ci = ts.tasks[i].wcet + blocking[i];
        let bound = ts.tasks[i].deadline.max(ts.tasks[i].period) * 2 + 1;
        let mut r = ci;
        loop {
            let interference: u64 = order[..rank]
                .iter()
                .map(|&j| {
                    let t = &ts.tasks[j];
                    r.div_ceil(t.period) * t.wcet
                })
                .sum();
            let next = ci + interference;
            if next == r {
                out[i] = Some(r);
                break;
            }
            if next > bound {
                break; // diverged: definitely misses
            }
            r = next;
        }
    }
    Some(out)
}

/// Blocking-aware fixed-priority schedulability (sufficient, not necessary —
/// see [`response_times_blocking`]): every blocking term is bounded and every
/// response time exists and meets its deadline.
pub fn rta_schedulable_blocking(ts: &TaskSet, order: &[usize], protocol: LockProtocol) -> bool {
    response_times_blocking(ts, order, protocol).is_some_and(|rs| {
        rs.iter()
            .zip(&ts.tasks)
            .all(|(r, t)| r.is_some_and(|r| r <= t.deadline))
    })
}

/// RM schedulability via RTA.
pub fn rm_schedulable(ts: &TaskSet) -> bool {
    rta_schedulable(ts, &ts.rm_order())
}

/// DM schedulability via RTA.
pub fn dm_schedulable(ts: &TaskSet) -> bool {
    rta_schedulable(ts, &ts.dm_order())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Task;

    #[test]
    fn classic_example_response_times() {
        // Burns & Wellings classic: T1 (T=7, C=3), T2 (T=12, C=3),
        // T3 (T=20, C=5). R1 = 3, R2 = 6, R3 = 20? Let's compute: R3 = 5 +
        // ceil(R/7)*3 + ceil(R/12)*3: start 5 → 5+3+3=11 → 5+6+3=14 →
        // 5+6+6=17 → 5+9+6=20 → 5+9+6=20 ✓.
        let ts = TaskSet::new(vec![
            Task::new(0, 7, 3),
            Task::new(0, 12, 3),
            Task::new(0, 20, 5),
        ]);
        let r = response_times(&ts, &ts.rm_order());
        assert_eq!(r, vec![Some(3), Some(6), Some(20)]);
        assert!(rm_schedulable(&ts));
    }

    #[test]
    fn overload_misses() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 6), Task::new(0, 15, 8)]);
        assert!(!rm_schedulable(&ts));
        let r = response_times(&ts, &ts.rm_order());
        assert_eq!(r[0], Some(6));
        assert!(r[1].is_none() || r[1].unwrap() > 15);
    }

    #[test]
    fn exactly_full_window_is_schedulable() {
        // R = D exactly: T1 (10, 5), T2 (14, 7): R2 = 7 + 2·5 = 17 > 14 —
        // RM misses. With harmonic periods T1 (10, 5), T2 (20, 10):
        // R2 = 10 + 2·5 = 20 = D2 — schedulable.
        let ts = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 20, 10)]);
        assert!(rm_schedulable(&ts));
        let ts2 = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 14, 7)]);
        assert!(!rm_schedulable(&ts2));
    }

    #[test]
    fn dm_beats_rm_on_constrained_deadlines() {
        // T1: P=10, C=4, D=10. T2: P=12, C=4, D=5. RM runs T1 first:
        // R2 = 4 + 4 = 8 > 5. DM runs T2 first: R2 = 4 ≤ 5, R1 = 4 + 4 = 8 ≤ 10.
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 4),
            Task::new(0, 12, 4).with_deadline(5),
        ]);
        assert!(!rm_schedulable(&ts));
        assert!(dm_schedulable(&ts));
    }

    #[test]
    fn utilization_bound_implies_rta() {
        // Anything passing Liu–Layland must pass exact RTA.
        use crate::utilization::rm_utilization_test;
        let sets = [
            vec![Task::new(0, 10, 2), Task::new(0, 20, 4)],
            vec![
                Task::new(0, 8, 1),
                Task::new(0, 16, 3),
                Task::new(0, 32, 6),
            ],
        ];
        for tasks in sets {
            let ts = TaskSet::new(tasks);
            assert!(rm_utilization_test(&ts));
            assert!(rm_schedulable(&ts));
        }
    }

    #[test]
    fn single_task_response_is_its_wcet() {
        let ts = TaskSet::new(vec![Task::new(0, 100, 37)]);
        assert_eq!(response_times(&ts, &[0]), vec![Some(37)]);
    }

    /// The bundled inversion example: h (2 quanta, 1 in cs), m (3 quanta, no
    /// cs), l (5 quanta, 4 in cs), priority order h > m > l, one resource.
    fn inversion_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(0, 8, 2).with_deadline(3).with_cs(0, 1),
            Task::new(0, 8, 3),
            Task::new(0, 16, 5).with_cs(0, 4),
        ])
    }

    #[test]
    fn ceiling_blocking_is_the_longest_lower_section() {
        let ts = inversion_set();
        let b = blocking_terms(&ts, &[0, 1, 2], LockProtocol::Ceiling).unwrap();
        // l's 4-quantum section blocks h directly and m by push-through
        // (the ceiling of the store is h's priority, above m's).
        assert_eq!(b, vec![4, 4, 0]);
        // PIP: each lower task blocks once; only l has a section.
        let b = blocking_terms(&ts, &[0, 1, 2], LockProtocol::Inheritance).unwrap();
        assert_eq!(b, vec![4, 4, 0]);
    }

    #[test]
    fn plain_mutexes_have_no_finite_bound() {
        let ts = inversion_set();
        assert_eq!(blocking_terms(&ts, &[0, 1, 2], LockProtocol::None), None);
        assert!(!rta_schedulable_blocking(&ts, &[0, 1, 2], LockProtocol::None));
        // ... unless nothing can block: no critical sections at all.
        let free = TaskSet::new(vec![Task::new(0, 8, 2), Task::new(0, 16, 3)]);
        assert_eq!(
            blocking_terms(&free, &[0, 1], LockProtocol::None),
            Some(vec![0, 0])
        );
        assert!(rta_schedulable_blocking(&free, &[0, 1], LockProtocol::None));
    }

    #[test]
    fn low_only_resources_do_not_block_high_tasks() {
        // The resource is shared by the two *lowest* tasks; its ceiling
        // stays below the top task, which therefore suffers no blocking.
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 2),
            Task::new(0, 20, 3).with_cs(0, 2),
            Task::new(0, 40, 5).with_cs(0, 3),
        ]);
        let b = blocking_terms(&ts, &[0, 1, 2], LockProtocol::Ceiling).unwrap();
        assert_eq!(b, vec![0, 3, 0]);
    }

    #[test]
    fn blocking_rta_is_pessimistic_but_sound_on_the_inversion_set() {
        let ts = inversion_set();
        // R_h = 2 + B_h = 6 > 3: the critical-instant bound assumes l is
        // already one quantum into its section when h releases — a pattern
        // the synchronous release never produces, so the exhaustive ACSR
        // analysis accepts this set under PCP while the sufficient test
        // rejects it. (The agreement property asserts the implication only.)
        assert!(!rta_schedulable_blocking(&ts, &[0, 1, 2], LockProtocol::Ceiling));
        let r = response_times_blocking(&ts, &[0, 1, 2], LockProtocol::Ceiling).unwrap();
        assert_eq!(r[0], Some(6));
    }

    #[test]
    fn zero_blocking_reduces_to_plain_rta() {
        let ts = TaskSet::new(vec![
            Task::new(0, 7, 3),
            Task::new(0, 12, 3),
            Task::new(0, 20, 5),
        ]);
        let order = ts.rm_order();
        assert_eq!(
            response_times_blocking(&ts, &order, LockProtocol::Ceiling).unwrap(),
            response_times(&ts, &order)
        );
    }
}
