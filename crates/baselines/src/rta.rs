//! Exact response-time analysis (Joseph & Pandya) for preemptive
//! fixed-priority scheduling on one processor.
//!
//! The worst-case response time of task `i` with higher-priority set `hp(i)`
//! is the least fixpoint of
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j
//! ```
//!
//! exact (necessary and sufficient) for synchronous periodic tasks with
//! constrained deadlines (`D ≤ T`) — the same model fragment as the paper's
//! evaluation. Agreement between this analysis and the exhaustive ACSR
//! exploration on randomized task sets is experiment Q2.

use crate::types::TaskSet;

/// Compute worst-case response times under the given priority order
/// (`order[0]` is the *highest* priority task's index). Returns `None` for a
/// task whose fixpoint iteration diverges past its deadline + hyperperiod
/// (definitely unschedulable).
pub fn response_times(ts: &TaskSet, order: &[usize]) -> Vec<Option<u64>> {
    let mut out = vec![None; ts.tasks.len()];
    for (rank, &i) in order.iter().enumerate() {
        let ci = ts.tasks[i].wcet;
        let bound = ts.tasks[i].deadline.max(ts.tasks[i].period) * 2 + 1;
        let mut r = ci;
        loop {
            let interference: u64 = order[..rank]
                .iter()
                .map(|&j| {
                    let t = &ts.tasks[j];
                    r.div_ceil(t.period) * t.wcet
                })
                .sum();
            let next = ci + interference;
            if next == r {
                out[i] = Some(r);
                break;
            }
            if next > bound {
                break; // diverged: definitely misses
            }
            r = next;
        }
    }
    out
}

/// Exact fixed-priority schedulability: every response time exists and meets
/// its deadline.
pub fn rta_schedulable(ts: &TaskSet, order: &[usize]) -> bool {
    response_times(ts, order)
        .iter()
        .zip(&ts.tasks)
        .all(|(r, t)| r.is_some_and(|r| r <= t.deadline))
}

/// RM schedulability via RTA.
pub fn rm_schedulable(ts: &TaskSet) -> bool {
    rta_schedulable(ts, &ts.rm_order())
}

/// DM schedulability via RTA.
pub fn dm_schedulable(ts: &TaskSet) -> bool {
    rta_schedulable(ts, &ts.dm_order())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Task;

    #[test]
    fn classic_example_response_times() {
        // Burns & Wellings classic: T1 (T=7, C=3), T2 (T=12, C=3),
        // T3 (T=20, C=5). R1 = 3, R2 = 6, R3 = 20? Let's compute: R3 = 5 +
        // ceil(R/7)*3 + ceil(R/12)*3: start 5 → 5+3+3=11 → 5+6+3=14 →
        // 5+6+6=17 → 5+9+6=20 → 5+9+6=20 ✓.
        let ts = TaskSet::new(vec![
            Task::new(0, 7, 3),
            Task::new(0, 12, 3),
            Task::new(0, 20, 5),
        ]);
        let r = response_times(&ts, &ts.rm_order());
        assert_eq!(r, vec![Some(3), Some(6), Some(20)]);
        assert!(rm_schedulable(&ts));
    }

    #[test]
    fn overload_misses() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 6), Task::new(0, 15, 8)]);
        assert!(!rm_schedulable(&ts));
        let r = response_times(&ts, &ts.rm_order());
        assert_eq!(r[0], Some(6));
        assert!(r[1].is_none() || r[1].unwrap() > 15);
    }

    #[test]
    fn exactly_full_window_is_schedulable() {
        // R = D exactly: T1 (10, 5), T2 (14, 7): R2 = 7 + 2·5 = 17 > 14 —
        // RM misses. With harmonic periods T1 (10, 5), T2 (20, 10):
        // R2 = 10 + 2·5 = 20 = D2 — schedulable.
        let ts = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 20, 10)]);
        assert!(rm_schedulable(&ts));
        let ts2 = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 14, 7)]);
        assert!(!rm_schedulable(&ts2));
    }

    #[test]
    fn dm_beats_rm_on_constrained_deadlines() {
        // T1: P=10, C=4, D=10. T2: P=12, C=4, D=5. RM runs T1 first:
        // R2 = 4 + 4 = 8 > 5. DM runs T2 first: R2 = 4 ≤ 5, R1 = 4 + 4 = 8 ≤ 10.
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 4),
            Task::new(0, 12, 4).with_deadline(5),
        ]);
        assert!(!rm_schedulable(&ts));
        assert!(dm_schedulable(&ts));
    }

    #[test]
    fn utilization_bound_implies_rta() {
        // Anything passing Liu–Layland must pass exact RTA.
        use crate::utilization::rm_utilization_test;
        let sets = [
            vec![Task::new(0, 10, 2), Task::new(0, 20, 4)],
            vec![
                Task::new(0, 8, 1),
                Task::new(0, 16, 3),
                Task::new(0, 32, 6),
            ],
        ];
        for tasks in sets {
            let ts = TaskSet::new(tasks);
            assert!(rm_utilization_test(&ts));
            assert!(rm_schedulable(&ts));
        }
    }

    #[test]
    fn single_task_response_is_its_wcet() {
        let ts = TaskSet::new(vec![Task::new(0, 100, 37)]);
        assert_eq!(response_times(&ts, &[0]), vec![Some(37)]);
    }
}
