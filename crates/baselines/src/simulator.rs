//! A Cheddar-style discrete-time scheduling simulator (§6 of the paper).
//!
//! Executes *one* behaviour of a periodic task set per run: jobs are released
//! synchronously at multiples of their periods, the scheduler picks the
//! highest-priority ready job each quantum (RM/DM/HPF static priorities, or
//! EDF/LLF dynamic ones), and deadline misses are recorded. Execution times
//! are either fixed at the WCET or sampled per job from `[bcet, wcet]`.
//!
//! The point of this module is methodological: a simulator observes a single
//! interleaving per run, so with execution-time uncertainty it can report "no
//! miss" for a task set whose state space *does* contain a missing behaviour
//! — which the exhaustive ACSR exploration finds (experiment Q4). It also
//! serves as a fast cross-check for the verdict-agreement experiment (Q2):
//! with `ExecModel::Wcet` and fixed priorities, a miss in the simulation must
//! also be found by RTA and by the exhaustive analysis.

use det::DetRng;

use crate::types::{LockProtocol, TaskSet};

/// Scheduling policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Rate monotonic (static).
    Rm,
    /// Deadline monotonic (static).
    Dm,
    /// Explicit priorities from [`Task::priority`](crate::types::Task).
    Hpf,
    /// Earliest deadline first (dynamic).
    Edf,
    /// Least laxity first (dynamic).
    Llf,
}

/// How job execution times are chosen.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ExecModel {
    /// Every job takes its task's WCET.
    Wcet,
    /// Every job takes its task's BCET.
    Bcet,
    /// Each job's demand is sampled uniformly from `[bcet, wcet]` with the
    /// given seed (reproducible).
    Sampled {
        /// RNG seed.
        seed: u64,
    },
}

/// A recorded deadline miss.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Miss {
    /// The task.
    pub task: usize,
    /// Release time of the missing job.
    pub release: u64,
    /// Its absolute deadline.
    pub deadline: u64,
}

/// The outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Deadline misses in release order (empty ⇒ no miss observed *in this
    /// run* — not a proof of schedulability under execution-time ranges).
    pub misses: Vec<Miss>,
    /// `schedule[t]` = the task that held the processor during quantum `t`
    /// (`None` = idle).
    pub schedule: Vec<Option<usize>>,
    /// Number of jobs completed.
    pub completed: u64,
}

impl SimOutcome {
    /// No miss observed.
    pub fn ok(&self) -> bool {
        self.misses.is_empty()
    }
}

struct Job {
    task: usize,
    release: u64,
    abs_deadline: u64,
    remaining: u64,
    executed: u64,
    missed: bool,
}

/// Simulate `ts` under `policy` for `horizon` quanta (one hyperperiod covers
/// all behaviours of a synchronous set with fixed execution times). Any
/// critical sections on the tasks behave as plain mutexes
/// ([`LockProtocol::None`]); use [`simulate_locking`] to pick a protocol.
pub fn simulate(ts: &TaskSet, policy: Policy, exec: ExecModel, horizon: u64) -> SimOutcome {
    simulate_locking(ts, policy, exec, horizon, LockProtocol::None)
}

/// [`simulate`], with critical sections arbitrated by `protocol`.
///
/// A job's critical section is its *first* `len` quanta (the same convention
/// as the ACSR translation): the lock is acquired by executing the first
/// quantum — acquisition races are therefore settled by scheduling priority —
/// and released when the `len`-th quantum completes. A job at its section
/// entry whose lock is held by another job is *blocked*: it is not eligible
/// to run, but its deadline clock keeps counting. Priority elevation applies
/// from the second held quantum onward (the acquiring quantum itself runs at
/// base priority, again matching the translation):
///
/// * [`LockProtocol::None`] — no elevation; a medium-priority job can
///   preempt the holder while a high-priority job waits (priority
///   inversion).
/// * [`LockProtocol::Inheritance`] — the holder runs at the maximum
///   priority of the jobs currently blocked on its resource.
/// * [`LockProtocol::Ceiling`] — the holder runs at its resource's ceiling:
///   the maximum *static* priority among tasks that use the resource.
///
/// Elevation is computed from the static priorities of `policy`, so locking
/// protocols are only meaningful with the static policies (RM/DM/HPF).
pub fn simulate_locking(
    ts: &TaskSet,
    policy: Policy,
    exec: ExecModel,
    horizon: u64,
    protocol: LockProtocol,
) -> SimOutcome {
    let mut rng = match exec {
        ExecModel::Sampled { seed } => Some(DetRng::new(seed)),
        _ => None,
    };
    let static_prio: Vec<u64> = match policy {
        // Higher value = higher priority.
        Policy::Rm => ts.tasks.iter().map(|t| u64::MAX - t.period).collect(),
        Policy::Dm => ts.tasks.iter().map(|t| u64::MAX - t.deadline).collect(),
        Policy::Hpf => ts
            .tasks
            .iter()
            .map(|t| t.priority.unwrap_or(0) as u64)
            .collect(),
        _ => vec![0; ts.tasks.len()],
    };

    // Static ceiling of each resource: the maximum static priority among the
    // tasks that use it.
    let ceiling_of = |res: usize| {
        ts.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.cs.is_some_and(|c| c.resource == res))
            .map(|(i, _)| static_prio[i])
            .max()
            .unwrap_or(0)
    };

    let mut jobs: Vec<Job> = Vec::new();
    let mut misses = Vec::new();
    let mut schedule = Vec::with_capacity(horizon as usize);
    let mut completed = 0u64;

    for t in 0..horizon {
        // Releases.
        for (i, task) in ts.tasks.iter().enumerate() {
            if t % task.period == 0 {
                let demand = match exec {
                    ExecModel::Wcet => task.wcet,
                    ExecModel::Bcet => task.bcet,
                    ExecModel::Sampled { .. } => rng
                        .as_mut()
                        .expect("sampled exec has rng")
                        .range_u64(task.bcet..=task.wcet),
                };
                jobs.push(Job {
                    task: i,
                    release: t,
                    abs_deadline: t + task.deadline,
                    remaining: demand,
                    executed: 0,
                    missed: false,
                });
            }
        }

        // A job *holds* its lock after executing its first quantum and until
        // its section's last quantum completes.
        let holds = |j: &Job| {
            ts.tasks[j.task]
                .cs
                .is_some_and(|c| j.executed > 0 && j.executed < c.len)
        };
        // A job at its section entry is blocked while another holds the lock.
        let blocked = |j: &Job| {
            ts.tasks[j.task].cs.is_some_and(|c| {
                j.executed == 0
                    && jobs.iter().any(|o| {
                        holds(o) && ts.tasks[o.task].cs.is_some_and(|oc| oc.resource == c.resource)
                    })
            })
        };

        // Pick the highest-priority ready (non-blocked) job.
        let pick = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.remaining > 0 && !blocked(j))
            .max_by_key(|(idx, j)| {
                let mut p = match policy {
                    Policy::Rm | Policy::Dm | Policy::Hpf => static_prio[j.task],
                    Policy::Edf => u64::MAX - j.abs_deadline,
                    Policy::Llf => {
                        let slack = j.abs_deadline.saturating_sub(t).saturating_sub(j.remaining);
                        u64::MAX - slack
                    }
                };
                // Protocol elevation for lock holders.
                if holds(j) {
                    let res = ts.tasks[j.task].cs.expect("holder has a cs").resource;
                    match protocol {
                        LockProtocol::None => {}
                        LockProtocol::Ceiling => p = p.max(ceiling_of(res)),
                        LockProtocol::Inheritance => {
                            let inherited = jobs
                                .iter()
                                .filter(|o| {
                                    o.remaining > 0
                                        && o.executed == 0
                                        && ts.tasks[o.task]
                                            .cs
                                            .is_some_and(|oc| oc.resource == res)
                                })
                                .map(|o| static_prio[o.task])
                                .max()
                                .unwrap_or(0);
                            p = p.max(inherited);
                        }
                    }
                }
                // Deterministic tie-break: earliest release, then lowest index.
                (p, u64::MAX - j.release, usize::MAX - *idx)
            })
            .map(|(idx, _)| idx);

        schedule.push(pick.map(|idx| jobs[idx].task));
        if let Some(idx) = pick {
            jobs[idx].remaining -= 1;
            jobs[idx].executed += 1;
            if jobs[idx].remaining == 0 {
                completed += 1;
            }
        }

        // Miss detection at the *end* of each quantum: a job whose absolute
        // deadline is t+1 must have finished by then (completion exactly at
        // the deadline is allowed, matching the ACSR semantics).
        for j in jobs.iter_mut() {
            if !j.missed && j.remaining > 0 && j.abs_deadline <= t + 1 {
                j.missed = true;
                misses.push(Miss {
                    task: j.task,
                    release: j.release,
                    deadline: j.abs_deadline,
                });
            }
        }
        jobs.retain(|j| j.remaining > 0 && !j.missed);
    }

    SimOutcome {
        misses,
        schedule,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Task, TaskSet};

    fn two_task_set() -> TaskSet {
        TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 20, 10)])
    }

    #[test]
    fn rm_schedules_the_harmonic_full_set() {
        let ts = two_task_set(); // U = 1.0, harmonic ⇒ RM OK
        let out = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
        assert!(out.ok(), "misses: {:?}", out.misses);
        // Fully utilized: never idle.
        assert!(out.schedule.iter().all(Option::is_some));
        assert_eq!(out.completed, 3); // 2 jobs of T1 + 1 job of T2
    }

    #[test]
    fn rm_misses_on_the_nonharmonic_full_set() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 14, 7)]);
        let out = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
        assert!(!out.ok());
        assert_eq!(out.misses[0].task, 1);
        // EDF schedules the same set (U = 1).
        let out = simulate(&ts, Policy::Edf, ExecModel::Wcet, ts.hyperperiod());
        assert!(out.ok(), "misses: {:?}", out.misses);
    }

    #[test]
    fn llf_also_schedules_full_utilization() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 5), Task::new(0, 14, 7)]);
        let out = simulate(&ts, Policy::Llf, ExecModel::Wcet, ts.hyperperiod());
        assert!(out.ok(), "misses: {:?}", out.misses);
    }

    #[test]
    fn hpf_respects_explicit_priorities() {
        let mut t1 = Task::new(0, 10, 6);
        t1.priority = Some(1);
        let mut t2 = Task::new(0, 10, 4).with_deadline(4);
        t2.priority = Some(9);
        let ts = TaskSet::new(vec![t1, t2]);
        let out = simulate(&ts, Policy::Hpf, ExecModel::Wcet, 10);
        assert!(out.ok());
        // t2 (priority 9) runs first.
        assert_eq!(out.schedule[0], Some(1));
    }

    #[test]
    fn simulation_agrees_with_rta_on_wcet() {
        use crate::rta::rm_schedulable;
        let sets = [
            TaskSet::new(vec![Task::new(0, 7, 3), Task::new(0, 12, 3), Task::new(0, 20, 5)]),
            TaskSet::new(vec![Task::new(0, 10, 6), Task::new(0, 15, 8)]),
            two_task_set(),
        ];
        for ts in sets {
            let sim = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
            assert_eq!(
                sim.ok(),
                rm_schedulable(&ts),
                "simulation and RTA disagree on {ts:?}"
            );
        }
    }

    #[test]
    fn sampled_runs_are_reproducible() {
        let ts = TaskSet::new(vec![
            Task::new(0, 10, 5).with_exec_range(2, 5),
            Task::new(0, 20, 10).with_exec_range(4, 10),
        ]);
        let a = simulate(&ts, Policy::Rm, ExecModel::Sampled { seed: 1 }, 40);
        let b = simulate(&ts, Policy::Rm, ExecModel::Sampled { seed: 1 }, 40);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn completion_exactly_at_the_deadline_is_not_a_miss() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 10)]);
        let out = simulate(&ts, Policy::Rm, ExecModel::Wcet, 20);
        assert!(out.ok());
    }

    #[test]
    fn one_quantum_too_much_is_a_miss() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 10).with_deadline(9)]);
        let out = simulate(&ts, Policy::Rm, ExecModel::Wcet, 10);
        assert_eq!(out.misses.len(), 1);
        assert_eq!(out.misses[0].deadline, 9);
    }

    #[test]
    fn idle_time_appears_in_the_schedule() {
        let ts = TaskSet::new(vec![Task::new(0, 10, 3)]);
        let out = simulate(&ts, Policy::Rm, ExecModel::Wcet, 10);
        assert_eq!(out.schedule.iter().filter(|s| s.is_none()).count(), 7);
    }

    /// The bundled inversion example as an HPF task set: h (prio 9, 2 quanta,
    /// 1 in cs), m (prio 5, 3 quanta), l (prio 3, 5 quanta, 4 in cs).
    fn inversion_set() -> TaskSet {
        let mut h = Task::new(0, 8, 2).with_deadline(3).with_cs(0, 1);
        h.priority = Some(9);
        let mut m = Task::new(0, 8, 3);
        m.priority = Some(5);
        let mut l = Task::new(0, 16, 5).with_cs(0, 4);
        l.priority = Some(3);
        TaskSet::new(vec![h, m, l])
    }

    #[test]
    fn plain_mutexes_suffer_the_inversion() {
        let ts = inversion_set();
        let out = simulate_locking(&ts, Policy::Hpf, ExecModel::Wcet, 16, LockProtocol::None);
        // h's second job blocks on the store at t=8 while m preempts the
        // holder l; h misses its absolute deadline 11.
        assert_eq!(out.misses.len(), 1);
        assert_eq!(out.misses[0], Miss { task: 0, release: 8, deadline: 11 });
        // m runs t=8..11 in place of the blocked h — the inversion itself.
        assert_eq!(&out.schedule[8..11], &[Some(1), Some(1), Some(1)]);
    }

    #[test]
    fn ceiling_elevation_rescues_the_high_task() {
        let ts = inversion_set();
        let out = simulate_locking(&ts, Policy::Hpf, ExecModel::Wcet, 16, LockProtocol::Ceiling);
        assert!(out.ok(), "misses: {:?}", out.misses);
        // At t=8 the holder l runs at the store's ceiling (9), finishing its
        // section instead of being preempted by m; h runs right after.
        assert_eq!(&out.schedule[8..11], &[Some(2), Some(0), Some(0)]);
    }

    #[test]
    fn inheritance_elevation_rescues_the_high_task() {
        let ts = inversion_set();
        let out =
            simulate_locking(&ts, Policy::Hpf, ExecModel::Wcet, 16, LockProtocol::Inheritance);
        assert!(out.ok(), "misses: {:?}", out.misses);
        // Same schedule as the ceiling here: l inherits 9 from the blocked h.
        assert_eq!(&out.schedule[8..11], &[Some(2), Some(0), Some(0)]);
    }

    #[test]
    fn blocking_at_entry_counts_against_the_deadline() {
        // A fast high-priority task a and a slow low-priority task b share a
        // lock; b's job is one long critical section. a's second job arrives
        // while b holds and is *blocked* — the lower-priority holder keeps
        // the cpu despite a's higher priority (direct blocking, which no
        // protocol removes) and a's deadline clock keeps running.
        let mut a = Task::new(0, 2, 1).with_cs(0, 1);
        a.priority = Some(9);
        let mut b = Task::new(0, 8, 3).with_cs(0, 3);
        b.priority = Some(1);
        let ts = TaskSet::new(vec![a, b]);
        let out = simulate_locking(&ts, Policy::Hpf, ExecModel::Wcet, 8, LockProtocol::None);
        // b runs t=2,3 while the blocked a (priority 9!) waits and misses.
        assert_eq!(&out.schedule[2..4], &[Some(1), Some(1)]);
        assert_eq!(out.misses, vec![Miss { task: 0, release: 2, deadline: 4 }]);
    }

    #[test]
    fn locking_simulation_without_sections_matches_the_plain_one() {
        let ts = two_task_set();
        let plain = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod());
        let locked =
            simulate_locking(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod(), LockProtocol::Ceiling);
        assert_eq!(plain.schedule, locked.schedule);
        assert_eq!(plain.misses, locked.misses);
    }
}
