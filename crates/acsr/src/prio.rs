//! The preemption relation and the prioritized transition relation.
//!
//! Quoting §3 of the paper:
//!
//! > For two actions `A1` and `A2`, `A2` preempts `A1`, denoted `A1 ≺ A2`, if
//! > every resource used in `A1` is also used in `A2` with greater or equal
//! > priority, and at least one resource has a strictly greater priority. As a
//! > result of this definition, any resource-using step will preempt an idling
//! > step (with an empty set of resources). In addition, an internal step with
//! > a non-zero priority will preempt any timed action to ensure progress in
//! > the behavior of an ACSR model. The prioritized transition relation for an
//! > ACSR process removes preempted transitions from the transition relation.
//!
//! For events, the classical ACSR preemption applies: an event preempts
//! another event with the *same label and direction* and strictly lower
//! priority; internal steps (`τ`) likewise preempt lower-priority internal
//! steps. Visible events never preempt timed actions (the environment decides
//! whether to communicate), and timed actions never preempt events.
//!
//! This module is where scheduling emerges: when two threads bound to the same
//! processor both offer a computation step, the joint actions in which the
//! lower-priority thread holds the CPU are preempted by the ones in which the
//! higher-priority thread holds it, so exactly the highest-priority ready
//! thread runs — the priority of the CPU access *is* the scheduling priority
//! (§5).

use crate::env::Env;
use crate::label::{GAction, Label};
use crate::step::steps;
use crate::term::P;

/// Does `b` preempt `a` (`a ≺ b`)?
pub fn preempts(a: &Label, b: &Label) -> bool {
    match (a, b) {
        (Label::A(a1), Label::A(a2)) => action_preempts(a1, a2),
        // An internal step with non-zero priority preempts any timed action.
        (Label::A(_), Label::Tau { prio, .. }) => *prio > 0,
        // Same label & direction, strictly higher priority.
        (
            Label::E {
                label: l1,
                dir: d1,
                prio: p1,
            },
            Label::E {
                label: l2,
                dir: d2,
                prio: p2,
            },
        ) => l1 == l2 && d1 == d2 && p2 > p1,
        // Internal steps compete with each other by priority.
        (Label::Tau { prio: p1, .. }, Label::Tau { prio: p2, .. }) => p2 > p1,
        _ => false,
    }
}

/// The action preemption relation `A1 ≺ A2` of §3 (see module docs).
/// Absent resources count as priority 0 accesses *on both sides*: a resource
/// that `A1` claims at priority 0 never shields it from preemption. A
/// zero-priority claim thus *reserves* the resource — the Par rule still
/// forbids sharing it within a quantum — without asserting any scheduling
/// priority. The concurrency-control translation depends on this: a
/// lock-acquisition step claims the lock at 0 so that the race is arbitrated
/// purely by processor priority, as a real scheduler would, while still
/// excluding acquisition during any quantum the current holder retains the
/// lock. For actions whose claims are all positive (everything else the
/// translation emits) the relation is the paper's verbatim.
fn action_preempts(a1: &GAction, a2: &GAction) -> bool {
    // Every resource used in A1 must also be used in A2 with ≥ priority
    // (priority 0 when absent from A2).
    for (r, p1) in a1.uses.iter() {
        if a2.prio_of(*r) < *p1 {
            return false;
        }
    }
    // At least one resource of A2 strictly exceeds its priority in A1
    // (0 when absent from A1).
    a2.uses.iter().any(|(r, p2)| *p2 > a1.prio_of(*r))
}

/// Remove preempted transitions: keep a step iff no other available step's
/// label preempts its label.
///
/// Generic in the successor representation `T` — the decision depends only on
/// the labels, so the same preemption filter serves the plain [`P`]-successor
/// path and the interned
/// [`StepSession`](crate::step::StepSession) path (whose successors are
/// [`Interned`](crate::store::Interned)), guaranteeing the two engines
/// prioritize identically.
pub fn prioritize<T>(steps: Vec<(Label, T)>) -> Vec<(Label, T)> {
    let keep: Vec<bool> = steps
        .iter()
        .map(|(l, _)| !steps.iter().any(|(l2, _)| preempts(l, l2)))
        .collect();
    steps
        .into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect()
}

/// The prioritized transition relation: the unprioritized steps of `p` with
/// preempted transitions removed.
pub fn prioritized_steps(env: &Env, p: &P) -> Vec<(Label, P)> {
    prioritize(steps(env, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Dir;
    use crate::symbol::{Res, Symbol};
    use crate::term::{act, choice, evt_send, nil, par, restrict, tau};
    use std::sync::Arc;

    fn ga(uses: &[(&str, u32)]) -> Label {
        let mut v: Vec<(Res, u32)> = uses.iter().map(|(r, p)| (Res::new(r), *p)).collect();
        v.sort_unstable_by_key(|(r, _)| *r);
        Label::A(Arc::new(GAction {
            uses: v.into_boxed_slice(),
            tags: Box::new([]),
        }))
    }

    #[test]
    fn higher_priority_on_same_resource_preempts() {
        assert!(preempts(&ga(&[("cpu", 1)]), &ga(&[("cpu", 2)])));
        assert!(!preempts(&ga(&[("cpu", 2)]), &ga(&[("cpu", 1)])));
    }

    #[test]
    fn equal_actions_do_not_preempt() {
        assert!(!preempts(&ga(&[("cpu", 1)]), &ga(&[("cpu", 1)])));
        assert!(!preempts(&ga(&[]), &ga(&[])));
    }

    #[test]
    fn any_resource_using_action_preempts_idling() {
        assert!(preempts(&ga(&[]), &ga(&[("cpu", 1)])));
        // ... but not an action that only uses resources at priority 0.
        assert!(!preempts(&ga(&[]), &ga(&[("cpu", 0)])));
    }

    #[test]
    fn preemption_requires_superset_of_resources() {
        // A1 uses a resource A2 does not ⇒ no preemption, regardless of
        // priorities (the processes do not actually conflict).
        assert!(!preempts(&ga(&[("cpu", 1)]), &ga(&[("bus", 9)])));
        assert!(!preempts(
            &ga(&[("cpu", 1), ("bus", 1)]),
            &ga(&[("cpu", 5)])
        ));
    }

    #[test]
    fn superset_with_strict_extra_resource_preempts() {
        // Same cpu priority, but A2 additionally claims the bus at prio 1 > 0.
        assert!(preempts(
            &ga(&[("cpu", 1)]),
            &ga(&[("cpu", 1), ("bus", 1)])
        ));
        // Extra resource at priority 0 is not strict.
        assert!(!preempts(
            &ga(&[("cpu", 1)]),
            &ga(&[("cpu", 1), ("bus", 0)])
        ));
    }

    #[test]
    fn nonzero_tau_preempts_timed_actions() {
        let t = Label::Tau {
            prio: 1,
            via: None,
        };
        assert!(preempts(&ga(&[("cpu", 5)]), &t));
        let t0 = Label::Tau {
            prio: 0,
            via: None,
        };
        assert!(!preempts(&ga(&[("cpu", 5)]), &t0));
    }

    #[test]
    fn events_preempt_same_label_same_dir_only() {
        let e = Symbol::new("evt");
        let f = Symbol::new("other");
        let send1 = Label::E {
            label: e,
            dir: Dir::Send,
            prio: 1,
        };
        let send2 = Label::E {
            label: e,
            dir: Dir::Send,
            prio: 2,
        };
        let recv2 = Label::E {
            label: e,
            dir: Dir::Recv,
            prio: 2,
        };
        let other = Label::E {
            label: f,
            dir: Dir::Send,
            prio: 9,
        };
        assert!(preempts(&send1, &send2));
        assert!(!preempts(&send2, &send1));
        assert!(!preempts(&send1, &recv2));
        assert!(!preempts(&send1, &other));
    }

    #[test]
    fn visible_events_do_not_preempt_actions() {
        let e = Label::E {
            label: Symbol::new("evt"),
            dir: Dir::Send,
            prio: 9,
        };
        assert!(!preempts(&ga(&[("cpu", 1)]), &e));
        assert!(!preempts(&e, &ga(&[("cpu", 1)])));
    }

    #[test]
    fn prioritized_steps_drop_preempted_compute() {
        let env = Env::new();
        let cpu = Res::new("cpu");
        // Two workers on one cpu: higher priority must win; the joint steps
        // (low computes, high idles) and (both idle) are preempted.
        let worker = |prio: i64| {
            choice([
                act([(cpu, prio)], nil()),
                act([] as [(Res, i32); 0], nil()),
            ])
        };
        let p = par([worker(1), worker(2)]);
        let s = prioritized_steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0.action().unwrap().prio_of(cpu), 2);
    }

    #[test]
    fn equal_priorities_stay_nondeterministic() {
        let env = Env::new();
        let cpu = Res::new("cpu");
        // Distinguishable continuations so the two interleavings are distinct
        // states (identical ones would rightly be deduplicated).
        let worker = |prio: i64, after: &str| {
            choice([
                act([(cpu, prio)], evt_send(Symbol::new(after), 1, nil())),
                act([] as [(Res, i32); 0], nil()),
            ])
        };
        let p = par([worker(3, "t1_ran"), worker(3, "t2_ran")]);
        let s = prioritized_steps(&env, &p);
        // Both "T1 runs" and "T2 runs" survive; "both idle" is preempted.
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|(l, _)| l.action().unwrap().prio_of(cpu) == 3));
    }

    #[test]
    fn urgent_sync_preempts_idling() {
        let env = Env::new();
        let e = Symbol::new("dispatch");
        // sender ∥ (receiver + idle): the τ@dispatch at priority 2 preempts
        // the idling step, so the dispatch happens immediately.
        let sender = evt_send(e, 1, nil());
        let receiver = choice([
            crate::term::evt_recv(e, 1, nil()),
            act([] as [(Res, i32); 0], nil()),
        ]);
        let p = restrict(par([sender, receiver]), [e]);
        let s = prioritized_steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert!(s[0].0.is_tau());
    }

    #[test]
    fn tau_priority_zero_does_not_force_progress() {
        let env = Env::new();
        let p = choice([
            tau(0, None, nil()),
            act([] as [(Res, i32); 0], nil()),
        ]);
        let s = prioritized_steps(&env, &p);
        assert_eq!(s.len(), 2);
    }
}
