//! The unprioritized operational semantics of ACSR.
//!
//! [`steps`] computes the outgoing transitions of a ground process term,
//! following the structural operational semantics of §3 of the paper:
//!
//! * **Prefixes** offer exactly their action/event.
//! * **Choice** offers the union of its alternatives' steps (resolved by any
//!   step, timed or instantaneous).
//! * **Parallel** interleaves instantaneous events, synchronises matching
//!   send/receive pairs into `τ@e` (with summed priority), and — because time
//!   progress is global — takes timed actions only *jointly*: one action from
//!   every component, with pairwise disjoint resource sets, merged by rule
//!   *Par3*. A component with no timed step (e.g. `NIL`) blocks time for the
//!   whole composition; this is the deadlock mechanism the AADL translation
//!   relies on.
//! * **Temporal scope** `P Δᵗ_a (Q, R, S)`: while `t > 0`, `P`'s steps are
//!   offered (timed steps decrement `t`), `P` emitting the exception event `a`
//!   exits to `Q`, and the interrupt handler `S` may take over through any of
//!   its initial steps. When `t` reaches 0 the scope has timed out: `P` may
//!   still perform *instantaneous* steps at the boundary instant (so a thread
//!   may signal completion at exactly its deadline), but no further timed
//!   steps; the timeout continuation `R`'s steps are offered alongside.
//! * **Restriction** blocks visible events with restricted labels (forcing
//!   internal synchronisation); **closure** extends every timed action with
//!   the owned-but-unused resources at priority 0.
//! * **Invocation** unfolds the definition with its arguments substituted.
//!
//! # Panics
//!
//! `steps` expects a *ground* term over a *complete* environment. It panics on
//! construction bugs: expressions referencing parameters outside any
//! definition, actions naming a resource twice, undefined bodies, arity
//! mismatches, and unguarded recursion (a definition that unfolds into itself
//! without an intervening prefix). The AADL translation upholds all of these
//! invariants; the panics exist to fail fast on hand-built models.

use std::collections::HashSet;
use std::sync::Arc;

use crate::env::Env;
use crate::label::{Dir, GAction, Label};
use crate::term::{EvKind, Proc, TimeBound, P};

/// Maximum number of definition unfoldings along a single derivation before we
/// declare the recursion unguarded.
const MAX_UNFOLD_DEPTH: u32 = 128;

/// Compute the unprioritized outgoing transitions of `p`, deduplicated.
pub fn steps(env: &Env, p: &P) -> Vec<(Label, P)> {
    let mut out = raw_steps(env, p, 0);
    if out.len() > 1 {
        let mut seen: HashSet<(Label, P)> = HashSet::with_capacity(out.len());
        out.retain(|s| seen.insert(s.clone()));
    }
    out
}

fn ground_prio(e: &crate::expr::Expr) -> u32 {
    let v = e
        .eval_ground()
        .expect("non-ground priority expression in reachable state");
    u32::try_from(v.max(0)).unwrap_or(u32::MAX)
}

fn raw_steps(env: &Env, p: &P, depth: u32) -> Vec<(Label, P)> {
    match &**p {
        Proc::Nil => Vec::new(),

        Proc::Act { action, tag, next } => {
            let ga = GAction::from_template(action, *tag)
                .expect("ill-formed action in reachable state");
            vec![(Label::A(Arc::new(ga)), next.clone())]
        }

        Proc::Evt { event, next } => {
            let prio = ground_prio(&event.prio);
            let label = match &event.kind {
                EvKind::Send(l) => Label::E {
                    label: *l,
                    dir: Dir::Send,
                    prio,
                },
                EvKind::Recv(l) => Label::E {
                    label: *l,
                    dir: Dir::Recv,
                    prio,
                },
                EvKind::Tau(via) => Label::Tau { prio, via: *via },
            };
            vec![(label, next.clone())]
        }

        Proc::Choice(alts) => alts
            .iter()
            .flat_map(|a| raw_steps(env, a, depth))
            .collect(),

        Proc::Guard { cond, then } => {
            if cond
                .eval(&[])
                .expect("non-ground guard in reachable state")
            {
                raw_steps(env, then, depth)
            } else {
                Vec::new()
            }
        }

        Proc::Par(comps) => par_steps(env, comps, depth),

        Proc::Scope {
            body,
            limit,
            exception,
            timeout,
            interrupt,
        } => scope_steps(env, body, limit, exception, timeout, interrupt, depth),

        Proc::Restrict { body, labels } => raw_steps(env, body, depth)
            .into_iter()
            .filter(|(l, _)| match l {
                Label::E { label, .. } => !labels.contains(label),
                _ => true,
            })
            .map(|(l, b)| {
                (
                    l,
                    Arc::new(Proc::Restrict {
                        body: b,
                        labels: labels.clone(),
                    }),
                )
            })
            .collect(),

        Proc::Close { body, resources } => raw_steps(env, body, depth)
            .into_iter()
            .map(|(l, b)| {
                let l = match l {
                    Label::A(a) => {
                        let mut uses: Vec<(crate::symbol::Res, u32)> = a.uses.to_vec();
                        for r in resources.iter() {
                            if !a.uses_resource(*r) {
                                uses.push((*r, 0));
                            }
                        }
                        uses.sort_unstable_by_key(|(r, _)| *r);
                        Label::A(Arc::new(GAction {
                            uses: uses.into_boxed_slice(),
                            tags: a.tags.clone(),
                        }))
                    }
                    other => other,
                };
                (
                    l,
                    Arc::new(Proc::Close {
                        body: b,
                        resources: resources.clone(),
                    }),
                )
            })
            .collect(),

        Proc::Invoke { def, args } => {
            assert!(
                depth < MAX_UNFOLD_DEPTH,
                "unguarded recursion while unfolding {} (depth {})",
                env.def(*def).name,
                depth
            );
            let vals: Vec<i64> = args
                .iter()
                .map(|e| {
                    e.eval_ground()
                        .expect("non-ground invocation argument in reachable state")
                })
                .collect();
            let body = env
                .instantiate(*def, &vals)
                .unwrap_or_else(|e| panic!("cannot unfold {}: {e}", env.def(*def).name));
            raw_steps(env, &body, depth + 1)
        }
    }
}

/// Replace component `i` of `comps` with `p`, re-wrapping in `Par`.
fn replace1(comps: &[P], i: usize, p: P) -> P {
    let mut new: Vec<P> = comps.to_vec();
    new[i] = p;
    Arc::new(Proc::Par(new))
}

fn replace2(comps: &[P], i: usize, pi: P, j: usize, pj: P) -> P {
    let mut new: Vec<P> = comps.to_vec();
    new[i] = pi;
    new[j] = pj;
    Arc::new(Proc::Par(new))
}

fn par_steps(env: &Env, comps: &[P], depth: u32) -> Vec<(Label, P)> {
    let per: Vec<Vec<(Label, P)>> = comps.iter().map(|c| raw_steps(env, c, depth)).collect();
    let mut out: Vec<(Label, P)> = Vec::new();

    // 1. A single component performs an instantaneous step on its own.
    for (i, steps_i) in per.iter().enumerate() {
        for (l, pi) in steps_i {
            if !l.is_timed() {
                out.push((l.clone(), replace1(comps, i, pi.clone())));
            }
        }
    }

    // 2. Two components synchronise a matching send/receive pair into τ@e.
    for i in 0..per.len() {
        for j in (i + 1)..per.len() {
            for (li, pi) in &per[i] {
                let (l1, d1, p1) = match li {
                    Label::E { label, dir, prio } => (*label, *dir, *prio),
                    _ => continue,
                };
                for (lj, pj) in &per[j] {
                    let (l2, d2, p2) = match lj {
                        Label::E { label, dir, prio } => (*label, *dir, *prio),
                        _ => continue,
                    };
                    if l1 == l2 && d1 != d2 {
                        out.push((
                            Label::Tau {
                                prio: p1.saturating_add(p2),
                                via: Some(l1),
                            },
                            replace2(comps, i, pi.clone(), j, pj.clone()),
                        ));
                    }
                }
            }
        }
    }

    // 3. Joint timed steps: one action per component, resources pairwise
    //    disjoint (Par3), merged left to right with early conflict pruning.
    let timed: Vec<Vec<(&GAction, &P)>> = per
        .iter()
        .map(|steps_i| {
            steps_i
                .iter()
                .filter_map(|(l, p)| match l {
                    Label::A(a) => Some((&**a, p)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    if timed.iter().all(|t| !t.is_empty()) {
        let mut picked: Vec<&P> = Vec::with_capacity(comps.len());
        combine_timed(&timed, 0, &GAction::idle(), &mut picked, &mut |action, picked| {
            let new: Vec<P> = picked.iter().map(|p| (*p).clone()).collect();
            out.push((Label::A(Arc::new(action.clone())), Arc::new(Proc::Par(new))));
        });
    }

    out
}

fn combine_timed<'a>(
    timed: &[Vec<(&'a GAction, &'a P)>],
    idx: usize,
    acc: &GAction,
    picked: &mut Vec<&'a P>,
    emit: &mut dyn FnMut(&GAction, &[&'a P]),
) {
    if idx == timed.len() {
        emit(acc, picked);
        return;
    }
    for (a, p) in &timed[idx] {
        if let Some(merged) = acc.merge(a) {
            picked.push(p);
            combine_timed(timed, idx + 1, &merged, picked, emit);
            picked.pop();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scope_steps(
    env: &Env,
    body: &P,
    limit: &TimeBound,
    exception: &Option<(crate::symbol::Symbol, P)>,
    timeout: &Option<P>,
    interrupt: &Option<P>,
    depth: u32,
) -> Vec<(Label, P)> {
    let remaining: Option<i64> = match limit {
        TimeBound::Finite(e) => Some(
            e.eval_ground()
                .expect("non-ground scope bound in reachable state"),
        ),
        TimeBound::Infinite => None,
    };
    let mut out: Vec<(Label, P)> = Vec::new();
    let expired = remaining.is_some_and(|n| n <= 0);

    let rewrap = |b: P, new_limit: TimeBound| -> P {
        Arc::new(Proc::Scope {
            body: b,
            limit: new_limit,
            exception: exception.clone(),
            timeout: timeout.clone(),
            interrupt: interrupt.clone(),
        })
    };

    for (l, b) in raw_steps(env, body, depth) {
        // Exception exit: the body performs the scope's exception event, in
        // either direction — the thread skeleton of Fig. 4 exits its scope by
        // *sending* `done`, while the dispatchers of Fig. 6 exit theirs by
        // *receiving* it.
        if let (Label::E { label, .. }, Some((exc, handler))) = (&l, exception) {
            if label == exc {
                out.push((l.clone(), handler.clone()));
                continue;
            }
        }
        match &l {
            Label::A(_) if expired => {
                // No timed steps past the boundary instant.
            }
            Label::A(_) => {
                let new_limit = match remaining {
                    Some(n) => TimeBound::Finite(crate::expr::Expr::Const(n - 1)),
                    None => TimeBound::Infinite,
                };
                out.push((l, rewrap(b, new_limit)));
            }
            _ => {
                // Instantaneous steps never consume scope time; they remain
                // available at the boundary instant as well (a thread may
                // signal completion at exactly its deadline).
                out.push((l, rewrap(b, limit.clone())));
            }
        }
    }

    if expired {
        // Timeout: the continuation's steps are offered at the boundary.
        if let Some(r) = timeout {
            out.extend(raw_steps(env, r, depth));
        }
    } else if let Some(s) = interrupt {
        // The interrupt handler may take over at any moment while active.
        out.extend(raw_steps(env, s, depth));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BExpr, Expr};
    use crate::symbol::{Res, Symbol};
    use crate::term::{
        act, choice, close, evt_recv, evt_send, guard, invoke, nil, par, restrict, scope, tau,
    };

    fn cpu() -> Res {
        Res::new("cpu")
    }
    fn bus() -> Res {
        Res::new("bus")
    }

    fn count_timed(steps: &[(Label, P)]) -> usize {
        steps.iter().filter(|(l, _)| l.is_timed()).count()
    }

    #[test]
    fn nil_has_no_steps() {
        let env = Env::new();
        assert!(steps(&env, &nil()).is_empty());
    }

    #[test]
    fn action_prefix_offers_one_step() {
        let env = Env::new();
        let p = act([(cpu(), 1)], nil());
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        match &s[0].0 {
            Label::A(a) => {
                assert_eq!(a.prio_of(cpu()), 1);
                assert_eq!(a.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn event_prefixes_offer_their_event() {
        let env = Env::new();
        let e = Symbol::new("go");
        let s = steps(&env, &evt_send(e, 3, nil()));
        assert_eq!(
            s[0].0,
            Label::E {
                label: e,
                dir: Dir::Send,
                prio: 3
            }
        );
        let s = steps(&env, &evt_recv(e, 2, nil()));
        assert_eq!(
            s[0].0,
            Label::E {
                label: e,
                dir: Dir::Recv,
                prio: 2
            }
        );
        let s = steps(&env, &tau(1, Some(e), nil()));
        assert_eq!(
            s[0].0,
            Label::Tau {
                prio: 1,
                via: Some(e)
            }
        );
    }

    #[test]
    fn choice_unions_steps() {
        let env = Env::new();
        let p = choice([
            act([(cpu(), 1)], nil()),
            evt_send(Symbol::new("go"), 1, nil()),
        ]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 2);
        assert_eq!(count_timed(&s), 1);
    }

    #[test]
    fn guards_gate_steps() {
        let env = Env::new();
        let p = guard(BExpr::lt(Expr::c(1), Expr::c(2)), act([(cpu(), 1)], nil()));
        assert_eq!(steps(&env, &p).len(), 1);
        let p = guard(BExpr::lt(Expr::c(2), Expr::c(1)), act([(cpu(), 1)], nil()));
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn par_advances_time_jointly_with_disjoint_resources() {
        let env = Env::new();
        // {(cpu,1)}:NIL ∥ {(bus,1)}:NIL — one joint step using both resources.
        let p = par([act([(cpu(), 1)], nil()), act([(bus(), 1)], nil())]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        let a = s[0].0.action().unwrap();
        assert!(a.uses_resource(cpu()) && a.uses_resource(bus()));
    }

    #[test]
    fn par_blocks_conflicting_actions() {
        let env = Env::new();
        // Both need cpu ⇒ no joint timed step; no events either ⇒ deadlock.
        let p = par([act([(cpu(), 1)], nil()), act([(cpu(), 2)], nil())]);
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn par_with_nil_component_blocks_time() {
        let env = Env::new();
        let p = par([act([(cpu(), 1)], nil()), nil()]);
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn par_synchronises_events_into_tau() {
        let env = Env::new();
        let e = Symbol::new("sync");
        let p = par([evt_send(e, 2, nil()), evt_recv(e, 3, nil())]);
        let s = steps(&env, &p);
        // Individual send, individual recv, and the τ@sync.
        assert_eq!(s.len(), 3);
        let taus: Vec<_> = s.iter().filter(|(l, _)| l.is_tau()).collect();
        assert_eq!(taus.len(), 1);
        assert_eq!(
            taus[0].0,
            Label::Tau {
                prio: 5,
                via: Some(e)
            }
        );
    }

    #[test]
    fn restriction_forces_synchronisation() {
        let env = Env::new();
        let e = Symbol::new("locked");
        let p = restrict(
            par([evt_send(e, 1, nil()), evt_recv(e, 1, nil())]),
            [e],
        );
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert!(s[0].0.is_tau());
    }

    #[test]
    fn restriction_can_deadlock_unmatched_events() {
        let env = Env::new();
        let e = Symbol::new("nobody_listens");
        let p = restrict(evt_send(e, 1, nil()), [e]);
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn closure_pads_actions_with_owned_resources() {
        let env = Env::new();
        let p = close(act([(cpu(), 1)], nil()), [cpu(), bus()]);
        let s = steps(&env, &p);
        let a = s[0].0.action().unwrap();
        assert_eq!(a.prio_of(cpu()), 1);
        assert_eq!(a.prio_of(bus()), 0);
        assert!(a.uses_resource(bus()));
    }

    #[test]
    fn recursion_unfolds_through_invoke() {
        let mut env = Env::new();
        let d = env.declare("Loop", 1);
        env.set_body(
            d,
            act(
                [(cpu(), Expr::p(0))],
                invoke(d, [Expr::p(0).add(Expr::c(1))]),
            ),
        );
        let p = invoke(d, [Expr::c(5)]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0.action().unwrap().prio_of(cpu()), 5);
        // The residual is the invocation with incremented argument.
        let s2 = steps(&env, &s[0].1);
        assert_eq!(s2[0].0.action().unwrap().prio_of(cpu()), 6);
    }

    #[test]
    #[should_panic(expected = "unguarded recursion")]
    fn unguarded_recursion_panics() {
        let mut env = Env::new();
        let d = env.declare("Omega", 0);
        env.set_body(d, invoke(d, []));
        steps(&env, &invoke(d, []));
    }

    #[test]
    fn scope_times_out_to_continuation() {
        let env = Env::new();
        // scope(idle-loop, 2) with timeout → (done!,1).NIL
        let mut env2 = Env::new();
        let idler = env2.declare("Idler", 0);
        env2.set_body(idler, act([] as [(Res, i32); 0], invoke(idler, [])));
        let done = Symbol::new("done");
        let p = scope(
            invoke(idler, []),
            crate::term::TimeBound::Finite(Expr::c(2)),
            None,
            Some(evt_send(done, 1, nil())),
            None,
        );
        let _ = env;
        // Step 1: idle (limit 2 → 1).
        let s = steps(&env2, &p);
        assert_eq!(s.len(), 1);
        assert!(s[0].0.is_timed());
        // Step 2: idle (limit 1 → 0).
        let s = steps(&env2, &s[0].1);
        assert_eq!(s.len(), 1);
        // At the boundary: no more timed steps; the timeout continuation's
        // event is offered.
        let s = steps(&env2, &s[0].1);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].0, Label::E { dir: Dir::Send, .. }));
    }

    #[test]
    fn scope_exception_exits_to_handler() {
        let env = Env::new();
        let exc = Symbol::new("complete");
        let after = Symbol::new("after");
        let body = act([(cpu(), 1)], evt_send(exc, 1, nil()));
        let p = scope(
            body,
            crate::term::TimeBound::Infinite,
            Some((exc, evt_send(after, 1, nil()))),
            None,
            None,
        );
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1); // the timed step
        let s = steps(&env, &s[0].1);
        assert_eq!(s.len(), 1);
        // The exception event itself is visible...
        assert!(matches!(&s[0].0, Label::E { label, dir: Dir::Send, .. } if *label == exc));
        // ...and control transferred to the handler, not the body residual.
        let s = steps(&env, &s[0].1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == after));
    }

    #[test]
    fn scope_interrupt_handler_can_take_over() {
        let env = Env::new();
        let irq = Symbol::new("interrupt");
        let body = act([(cpu(), 1)], nil());
        let handler = evt_recv(irq, 1, act([(bus(), 1)], nil()));
        let p = scope(
            body,
            crate::term::TimeBound::Infinite,
            None,
            None,
            Some(handler),
        );
        let s = steps(&env, &p);
        // Body's timed step + handler's receive.
        assert_eq!(s.len(), 2);
        let recv = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { dir: Dir::Recv, .. }))
            .expect("interrupt receive offered");
        // After the interrupt fires, the scope is dissolved.
        let s2 = steps(&env, &recv.1);
        assert_eq!(s2.len(), 1);
        assert!(s2[0].0.action().unwrap().uses_resource(bus()));
    }

    #[test]
    fn scope_exception_triggers_on_receive_too() {
        // Fig. 6 dispatchers: the scope around the wait-for-done loop is
        // exited by *receiving* the done event.
        let env = Env::new();
        let done = Symbol::new("done");
        let idle_wait = choice([
            act([] as [(Res, i32); 0], nil()),
            evt_recv(done, 1, nil()),
        ]);
        let p = scope(
            idle_wait,
            crate::term::TimeBound::Finite(Expr::c(5)),
            Some((done, act([(cpu(), 9)], nil()))),
            Some(nil()),
            None,
        );
        let s = steps(&env, &p);
        let recv = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { dir: Dir::Recv, .. }))
            .expect("done? offered");
        // Receiving done exits to the handler, not the body continuation.
        let s2 = steps(&env, &recv.1);
        assert_eq!(s2.len(), 1);
        assert_eq!(s2[0].0.action().unwrap().prio_of(cpu()), 9);
    }

    #[test]
    fn boundary_events_allowed_at_deadline() {
        // A scope that expires immediately still lets the body perform
        // instantaneous steps — completion at exactly the deadline.
        let env = Env::new();
        let done = Symbol::new("done");
        let p = scope(
            evt_send(done, 1, nil()),
            crate::term::TimeBound::Finite(Expr::c(0)),
            None,
            Some(nil()),
            None,
        );
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == done));
    }

    #[test]
    fn expired_scope_with_nil_timeout_blocks() {
        let env = Env::new();
        let p = scope(
            act([(cpu(), 1)], nil()),
            crate::term::TimeBound::Finite(Expr::c(0)),
            None,
            Some(nil()),
            None,
        );
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn duplicate_steps_are_deduplicated() {
        let env = Env::new();
        let a = act([(cpu(), 1)], nil());
        let p = choice([a.clone(), a]);
        assert_eq!(steps(&env, &p).len(), 1);
    }

    #[test]
    fn three_way_par_merges_all_actions() {
        let env = Env::new();
        let r1 = Res::new("r1");
        let r2 = Res::new("r2");
        let r3 = Res::new("r3");
        let p = par([
            act([(r1, 1)], nil()),
            act([(r2, 2)], nil()),
            act([(r3, 3)], nil()),
        ]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        let a = s[0].0.action().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.prio_of(r2), 2);
    }

    #[test]
    fn par_explores_all_disjoint_combinations() {
        let env = Env::new();
        // Each component can compute (cpu) or idle: valid joint steps are
        // (compute, idle), (idle, compute), (idle, idle) — not (compute, compute).
        let worker = |prio: i64| {
            choice([
                act([(cpu(), prio)], nil()),
                act([] as [(Res, i32); 0], nil()),
            ])
        };
        let p = par([worker(1), worker(2)]);
        let s = steps(&env, &p);
        assert_eq!(count_timed(&s), 3);
    }
}
