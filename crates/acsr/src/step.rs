//! The unprioritized operational semantics of ACSR.
//!
//! [`steps`] computes the outgoing transitions of a ground process term,
//! following the structural operational semantics of §3 of the paper:
//!
//! * **Prefixes** offer exactly their action/event.
//! * **Choice** offers the union of its alternatives' steps (resolved by any
//!   step, timed or instantaneous).
//! * **Parallel** interleaves instantaneous events, synchronises matching
//!   send/receive pairs into `τ@e` (with summed priority), and — because time
//!   progress is global — takes timed actions only *jointly*: one action from
//!   every component, with pairwise disjoint resource sets, merged by rule
//!   *Par3*. A component with no timed step (e.g. `NIL`) blocks time for the
//!   whole composition; this is the deadlock mechanism the AADL translation
//!   relies on.
//! * **Temporal scope** `P Δᵗ_a (Q, R, S)`: while `t > 0`, `P`'s steps are
//!   offered (timed steps decrement `t`), `P` emitting the exception event `a`
//!   exits to `Q`, and the interrupt handler `S` may take over through any of
//!   its initial steps. When `t` reaches 0 the scope has timed out: `P` may
//!   still perform *instantaneous* steps at the boundary instant (so a thread
//!   may signal completion at exactly its deadline), but no further timed
//!   steps; the timeout continuation `R`'s steps are offered alongside.
//! * **Restriction** blocks visible events with restricted labels (forcing
//!   internal synchronisation); **closure** extends every timed action with
//!   the owned-but-unused resources at priority 0.
//! * **Invocation** unfolds the definition with its arguments substituted.
//!
//! Two engines compute this relation. The plain functions ([`steps`] and
//! `raw_steps` internally) work on bare [`P`] terms and re-derive
//! successors on every call. A [`StepSession`] computes the *same* relation
//! over hash-consed terms from a [`TermStore`] and
//! memoizes each subterm's successor list in a bounded cache keyed on
//! `(TermId, env epoch)` — revisits of the same subprocess (every
//! hyperperiod of a periodic task model) are cache hits instead of fresh
//! derivations. The session mirrors the plain engine case for case, so the
//! two are interchangeable; the exploration engine uses the session, the
//! plain functions remain the executable specification.
//!
//! # Panics
//!
//! `steps` expects a *ground* term over a *complete* environment. It panics on
//! construction bugs: expressions referencing parameters outside any
//! definition, actions naming a resource twice, undefined bodies, arity
//! mismatches, and unguarded recursion (a definition that unfolds into itself
//! without an intervening prefix). The AADL translation upholds all of these
//! invariants; the panics exist to fail fast on hand-built models.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::env::Env;
use crate::label::{Dir, GAction, Label};
use crate::store::{Interned, TermId, TermStore};
use crate::term::{EvKind, Proc, TimeBound, P};

/// Maximum number of definition unfoldings along a single derivation before we
/// declare the recursion unguarded.
const MAX_UNFOLD_DEPTH: u32 = 128;

/// Compute the unprioritized outgoing transitions of `p`, deduplicated.
pub fn steps(env: &Env, p: &P) -> Vec<(Label, P)> {
    let mut out = raw_steps(env, p, 0);
    if out.len() > 1 {
        let mut seen: HashSet<(Label, P)> = HashSet::with_capacity(out.len());
        out.retain(|s| seen.insert(s.clone()));
    }
    out
}

fn ground_prio(e: &crate::expr::Expr) -> u32 {
    let v = e
        .eval_ground()
        .expect("non-ground priority expression in reachable state");
    u32::try_from(v.max(0)).unwrap_or(u32::MAX)
}

fn raw_steps(env: &Env, p: &P, depth: u32) -> Vec<(Label, P)> {
    match &**p {
        Proc::Nil => Vec::new(),

        Proc::Act { action, tag, next } => {
            let ga = GAction::from_template(action, *tag)
                .expect("ill-formed action in reachable state");
            vec![(Label::A(Arc::new(ga)), next.clone())]
        }

        Proc::Evt { event, next } => {
            let prio = ground_prio(&event.prio);
            let label = match &event.kind {
                EvKind::Send(l) => Label::E {
                    label: *l,
                    dir: Dir::Send,
                    prio,
                },
                EvKind::Recv(l) => Label::E {
                    label: *l,
                    dir: Dir::Recv,
                    prio,
                },
                EvKind::Tau(via) => Label::Tau { prio, via: *via },
            };
            vec![(label, next.clone())]
        }

        Proc::Choice(alts) => alts
            .iter()
            .flat_map(|a| raw_steps(env, a, depth))
            .collect(),

        Proc::Guard { cond, then } => {
            if cond
                .eval(&[])
                .expect("non-ground guard in reachable state")
            {
                raw_steps(env, then, depth)
            } else {
                Vec::new()
            }
        }

        Proc::Par(comps) => par_steps(env, comps, depth),

        Proc::Scope {
            body,
            limit,
            exception,
            timeout,
            interrupt,
        } => scope_steps(env, body, limit, exception, timeout, interrupt, depth),

        Proc::Restrict { body, labels } => raw_steps(env, body, depth)
            .into_iter()
            .filter(|(l, _)| match l {
                Label::E { label, .. } => !labels.contains(label),
                _ => true,
            })
            .map(|(l, b)| {
                (
                    l,
                    Arc::new(Proc::Restrict {
                        body: b,
                        labels: labels.clone(),
                    }),
                )
            })
            .collect(),

        Proc::Close { body, resources } => raw_steps(env, body, depth)
            .into_iter()
            .map(|(l, b)| {
                let l = match l {
                    Label::A(a) => {
                        let mut uses: Vec<(crate::symbol::Res, u32)> = a.uses.to_vec();
                        for r in resources.iter() {
                            if !a.uses_resource(*r) {
                                uses.push((*r, 0));
                            }
                        }
                        uses.sort_unstable_by_key(|(r, _)| *r);
                        Label::A(Arc::new(GAction {
                            uses: uses.into_boxed_slice(),
                            tags: a.tags.clone(),
                        }))
                    }
                    other => other,
                };
                (
                    l,
                    Arc::new(Proc::Close {
                        body: b,
                        resources: resources.clone(),
                    }),
                )
            })
            .collect(),

        Proc::Invoke { def, args } => {
            assert!(
                depth < MAX_UNFOLD_DEPTH,
                "unguarded recursion while unfolding {} (depth {})",
                env.def(*def).name,
                depth
            );
            let vals: Vec<i64> = args
                .iter()
                .map(|e| {
                    e.eval_ground()
                        .expect("non-ground invocation argument in reachable state")
                })
                .collect();
            let body = env
                .instantiate(*def, &vals)
                .unwrap_or_else(|e| panic!("cannot unfold {}: {e}", env.def(*def).name));
            raw_steps(env, &body, depth + 1)
        }
    }
}

/// Replace component `i` of `comps` with `p`, re-wrapping in `Par`.
fn replace1(comps: &[P], i: usize, p: P) -> P {
    let mut new: Vec<P> = comps.to_vec();
    new[i] = p;
    Arc::new(Proc::Par(new))
}

fn replace2(comps: &[P], i: usize, pi: P, j: usize, pj: P) -> P {
    let mut new: Vec<P> = comps.to_vec();
    new[i] = pi;
    new[j] = pj;
    Arc::new(Proc::Par(new))
}

fn par_steps(env: &Env, comps: &[P], depth: u32) -> Vec<(Label, P)> {
    let per: Vec<Vec<(Label, P)>> = comps.iter().map(|c| raw_steps(env, c, depth)).collect();
    let mut out: Vec<(Label, P)> = Vec::new();

    // 1. A single component performs an instantaneous step on its own.
    for (i, steps_i) in per.iter().enumerate() {
        for (l, pi) in steps_i {
            if !l.is_timed() {
                out.push((l.clone(), replace1(comps, i, pi.clone())));
            }
        }
    }

    // 2. Two components synchronise a matching send/receive pair into τ@e.
    for i in 0..per.len() {
        for j in (i + 1)..per.len() {
            for (li, pi) in &per[i] {
                let (l1, d1, p1) = match li {
                    Label::E { label, dir, prio } => (*label, *dir, *prio),
                    _ => continue,
                };
                for (lj, pj) in &per[j] {
                    let (l2, d2, p2) = match lj {
                        Label::E { label, dir, prio } => (*label, *dir, *prio),
                        _ => continue,
                    };
                    if l1 == l2 && d1 != d2 {
                        out.push((
                            Label::Tau {
                                prio: p1.saturating_add(p2),
                                via: Some(l1),
                            },
                            replace2(comps, i, pi.clone(), j, pj.clone()),
                        ));
                    }
                }
            }
        }
    }

    // 3. Joint timed steps: one action per component, resources pairwise
    //    disjoint (Par3), merged left to right with early conflict pruning.
    let timed: Vec<Vec<(&GAction, &P)>> = per
        .iter()
        .map(|steps_i| {
            steps_i
                .iter()
                .filter_map(|(l, p)| match l {
                    Label::A(a) => Some((&**a, p)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    if timed.iter().all(|t| !t.is_empty()) {
        let mut picked: Vec<&P> = Vec::with_capacity(comps.len());
        combine_timed(&timed, 0, &GAction::idle(), &mut picked, &mut |action, picked| {
            let new: Vec<P> = picked.iter().map(|p| (*p).clone()).collect();
            out.push((Label::A(Arc::new(action.clone())), Arc::new(Proc::Par(new))));
        });
    }

    out
}

fn combine_timed<'a, T>(
    timed: &[Vec<(&'a GAction, &'a T)>],
    idx: usize,
    acc: &GAction,
    picked: &mut Vec<&'a T>,
    emit: &mut dyn FnMut(&GAction, &[&'a T]),
) {
    if idx == timed.len() {
        emit(acc, picked);
        return;
    }
    for (a, p) in &timed[idx] {
        if let Some(merged) = acc.merge(a) {
            picked.push(p);
            combine_timed(timed, idx + 1, &merged, picked, emit);
            picked.pop();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scope_steps(
    env: &Env,
    body: &P,
    limit: &TimeBound,
    exception: &Option<(crate::symbol::Symbol, P)>,
    timeout: &Option<P>,
    interrupt: &Option<P>,
    depth: u32,
) -> Vec<(Label, P)> {
    let remaining: Option<i64> = match limit {
        TimeBound::Finite(e) => Some(
            e.eval_ground()
                .expect("non-ground scope bound in reachable state"),
        ),
        TimeBound::Infinite => None,
    };
    let mut out: Vec<(Label, P)> = Vec::new();
    let expired = remaining.is_some_and(|n| n <= 0);

    let rewrap = |b: P, new_limit: TimeBound| -> P {
        Arc::new(Proc::Scope {
            body: b,
            limit: new_limit,
            exception: exception.clone(),
            timeout: timeout.clone(),
            interrupt: interrupt.clone(),
        })
    };

    for (l, b) in raw_steps(env, body, depth) {
        // Exception exit: the body performs the scope's exception event, in
        // either direction — the thread skeleton of Fig. 4 exits its scope by
        // *sending* `done`, while the dispatchers of Fig. 6 exit theirs by
        // *receiving* it.
        if let (Label::E { label, .. }, Some((exc, handler))) = (&l, exception) {
            if label == exc {
                out.push((l.clone(), handler.clone()));
                continue;
            }
        }
        match &l {
            Label::A(_) if expired => {
                // No timed steps past the boundary instant.
            }
            Label::A(_) => {
                let new_limit = match remaining {
                    Some(n) => TimeBound::Finite(crate::expr::Expr::Const(n - 1)),
                    None => TimeBound::Infinite,
                };
                out.push((l, rewrap(b, new_limit)));
            }
            _ => {
                // Instantaneous steps never consume scope time; they remain
                // available at the boundary instant as well (a thread may
                // signal completion at exactly its deadline).
                out.push((l, rewrap(b, limit.clone())));
            }
        }
    }

    if expired {
        // Timeout: the continuation's steps are offered at the boundary.
        if let Some(r) = timeout {
            out.extend(raw_steps(env, r, depth));
        }
    } else if let Some(s) = interrupt {
        // The interrupt handler may take over at any moment while active.
        out.extend(raw_steps(env, s, depth));
    }

    out
}

// ---------------------------------------------------------------------------
// Interned, memoized successor generation
// ---------------------------------------------------------------------------

/// Number of memo shards (power of two); mirrors the term store's sharding.
const MEMO_SHARDS: usize = 16;

/// Configuration of the successor memo of a [`StepSession`].
///
/// # Examples
///
/// ```
/// use acsr::step::MemoConfig;
///
/// let on = MemoConfig::default();
/// assert!(on.enabled);
/// let off = MemoConfig::disabled();
/// assert!(!off.enabled);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct MemoConfig {
    /// Memoize successor lists at all. Disabling reduces a session to
    /// interning only — the `--no-memo` escape hatch.
    pub enabled: bool,
    /// Maximum number of cached successor lists across all shards. Bounded so
    /// arbitrarily long runs cannot grow memory without limit; the cache
    /// evicts in FIFO order past the cap.
    pub capacity: usize,
}

impl Default for MemoConfig {
    fn default() -> MemoConfig {
        MemoConfig {
            enabled: true,
            capacity: 1 << 18,
        }
    }
}

impl MemoConfig {
    /// Memoization switched off (interning only).
    pub fn disabled() -> MemoConfig {
        MemoConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Memoization on with an explicit entry cap.
    pub fn with_capacity(capacity: usize) -> MemoConfig {
        MemoConfig {
            enabled: true,
            capacity,
        }
    }
}

/// One shard of the successor memo: the cache map plus FIFO insertion order
/// for bounded eviction.
#[derive(Default)]
struct MemoShard {
    map: HashMap<(TermId, u64), Arc<Vec<(Label, Interned)>>>,
    order: VecDeque<(TermId, u64)>,
}

/// The bounded successor cache: `(TermId, env epoch) → successor list`.
/// Values carry the successors' canonical `Arc`s alongside their ids so a
/// hit requires no store lookup.
struct Memo {
    shards: Vec<Mutex<MemoShard>>,
    /// Per-shard entry cap (total capacity divided over the shards, at
    /// least 1).
    per_shard_cap: usize,
    evictions: AtomicU64,
}

impl Memo {
    fn new(capacity: usize) -> Memo {
        Memo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(MemoShard::default())).collect(),
            per_shard_cap: (capacity / MEMO_SHARDS).max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: TermId) -> &Mutex<MemoShard> {
        // The low id bits are the store's digest-derived shard index —
        // uniform enough to spread the memo as well.
        &self.shards[(id.raw() as usize) & (MEMO_SHARDS - 1)]
    }

    fn get(&self, key: (TermId, u64)) -> Option<Arc<Vec<(Label, Interned)>>> {
        self.shard(key.0)
            .lock()
            .expect("memo shard poisoned")
            .map
            .get(&key)
            .cloned()
    }

    fn insert(&self, key: (TermId, u64), value: Arc<Vec<(Label, Interned)>>) {
        let mut shard = self.shard(key.0).lock().expect("memo shard poisoned");
        if shard.map.contains_key(&key) {
            // A concurrent worker computed the same entry first; keep the
            // existing value (both are equal) and do not double-count it in
            // the FIFO order.
            return;
        }
        while shard.map.len() >= self.per_shard_cap {
            let Some(old) = shard.order.pop_front() else { break };
            if shard.map.remove(&old).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, value);
        shard.order.push_back(key);
    }
}

/// Statistics of one [`StepSession`]'s memo, taken with
/// [`StepSession::memo_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Successor lists served from the cache.
    pub hits: u64,
    /// Successor lists computed (and, capacity permitting, cached).
    pub misses: u64,
    /// Entries dropped by the FIFO bound.
    pub evictions: u64,
}

/// An interned, memoized stepping context: the operational semantics of
/// [`steps`]/[`prioritized_steps`](crate::prio::prioritized_steps) computed
/// over hash-consed terms, with per-subterm successor caching.
///
/// A session borrows its [`Env`] (so the environment cannot change under the
/// cache — the borrow checker enforces what the `(TermId, epoch)` cache key
/// documents) and shares a [`TermStore`]. It produces, for every term, the
/// **same labels in the same order with structurally identical successors**
/// as the plain [`steps`] path; the property suite pins this equivalence.
/// The memo is a pure cache: hits, misses and evictions never change the
/// transition relation, only how often it is re-derived.
///
/// Sessions are `Sync` — exploration workers share one session through a
/// reference.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::step::{MemoConfig, StepSession};
/// use acsr::store::TermStore;
/// use std::sync::Arc;
///
/// let mut env = Env::new();
/// let cpu = Res::new("cpu");
/// let d = env.declare("Tick", 0);
/// env.set_body(d, act([(cpu, 1)], invoke(d, [])));
///
/// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
/// let p = session.intern(&invoke(d, []));
/// let s1 = session.prioritized_steps(&p);
/// assert_eq!(s1.len(), 1);
/// // The successor re-enters the same state: O(1) id equality…
/// assert_eq!(s1[0].1.id(), p.id());
/// // …and stepping it again is a memo hit.
/// let _ = session.prioritized_steps(&s1[0].1);
/// assert!(session.memo_stats().hits > 0);
/// ```
pub struct StepSession<'e> {
    env: &'e Env,
    store: Arc<TermStore>,
    epoch: u64,
    memo: Option<Memo>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'e> StepSession<'e> {
    /// A session over `env` interning into `store`, with the given memo
    /// configuration.
    pub fn new(env: &'e Env, store: Arc<TermStore>, config: MemoConfig) -> StepSession<'e> {
        StepSession {
            env,
            store,
            epoch: env.epoch(),
            memo: config.enabled.then(|| Memo::new(config.capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The shared term store.
    pub fn store(&self) -> &Arc<TermStore> {
        &self.store
    }

    /// Intern a term into the session's store.
    pub fn intern(&self, p: &P) -> Interned {
        self.store.intern(p)
    }

    /// Hit / miss / eviction counts so far.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self
                .memo
                .as_ref()
                .map_or(0, |m| m.evictions.load(Ordering::Relaxed)),
        }
    }

    /// The unprioritized outgoing transitions of `t`, deduplicated — the
    /// interned counterpart of [`steps`].
    pub fn steps(&self, t: &Interned) -> Vec<(Label, Interned)> {
        let raw = self.raw(t, 0);
        let mut out: Vec<(Label, Interned)> = raw.as_ref().clone();
        if out.len() > 1 {
            let mut seen: HashSet<(Label, TermId)> = HashSet::with_capacity(out.len());
            out.retain(|(l, s)| seen.insert((l.clone(), s.id())));
        }
        out
    }

    /// The prioritized outgoing transitions of `t` — the interned counterpart
    /// of [`prioritized_steps`](crate::prio::prioritized_steps).
    pub fn prioritized_steps(&self, t: &Interned) -> Vec<(Label, Interned)> {
        crate::prio::prioritize(self.steps(t))
    }

    /// The memoized raw-successor relation. Mirrors [`raw_steps`] case by
    /// case: same label construction, same iteration order, same panics — the
    /// only differences are that successors come back interned and that the
    /// whole list may be served from the cache.
    ///
    /// The memo insert happens strictly *after* the compute, so unguarded
    /// recursion still runs into the [`MAX_UNFOLD_DEPTH`] assertion instead
    /// of hitting a half-built cache entry.
    fn raw(&self, t: &Interned, depth: u32) -> Arc<Vec<(Label, Interned)>> {
        let key = (t.id(), self.epoch);
        if let Some(memo) = &self.memo {
            if let Some(hit) = memo.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let computed = Arc::new(self.compute(t, depth));
        if let Some(memo) = &self.memo {
            memo.insert(key, computed.clone());
        }
        computed
    }

    fn compute(&self, t: &Interned, depth: u32) -> Vec<(Label, Interned)> {
        match &**t.term() {
            Proc::Nil => Vec::new(),

            Proc::Act { action, tag, next } => {
                let ga = GAction::from_template(action, *tag)
                    .expect("ill-formed action in reachable state");
                vec![(Label::A(Arc::new(ga)), self.store.intern(next))]
            }

            Proc::Evt { event, next } => {
                let prio = ground_prio(&event.prio);
                let label = match &event.kind {
                    EvKind::Send(l) => Label::E {
                        label: *l,
                        dir: Dir::Send,
                        prio,
                    },
                    EvKind::Recv(l) => Label::E {
                        label: *l,
                        dir: Dir::Recv,
                        prio,
                    },
                    EvKind::Tau(via) => Label::Tau { prio, via: *via },
                };
                vec![(label, self.store.intern(next))]
            }

            Proc::Choice(alts) => alts
                .iter()
                .flat_map(|a| self.raw(&self.store.intern(a), depth).as_ref().clone())
                .collect(),

            Proc::Guard { cond, then } => {
                if cond
                    .eval(&[])
                    .expect("non-ground guard in reachable state")
                {
                    self.raw(&self.store.intern(then), depth).as_ref().clone()
                } else {
                    Vec::new()
                }
            }

            Proc::Par(comps) => self.par(comps, depth),

            Proc::Scope {
                body,
                limit,
                exception,
                timeout,
                interrupt,
            } => self.scope(body, limit, exception, timeout, interrupt, depth),

            Proc::Restrict { body, labels } => self
                .raw(&self.store.intern(body), depth)
                .iter()
                .filter(|(l, _)| match l {
                    Label::E { label, .. } => !labels.contains(label),
                    _ => true,
                })
                .map(|(l, b)| (l.clone(), self.store.mk_restrict(b, labels)))
                .collect(),

            Proc::Close { body, resources } => self
                .raw(&self.store.intern(body), depth)
                .iter()
                .map(|(l, b)| {
                    let l = match l {
                        Label::A(a) => {
                            let mut uses: Vec<(crate::symbol::Res, u32)> = a.uses.to_vec();
                            for r in resources.iter() {
                                if !a.uses_resource(*r) {
                                    uses.push((*r, 0));
                                }
                            }
                            uses.sort_unstable_by_key(|(r, _)| *r);
                            Label::A(Arc::new(GAction {
                                uses: uses.into_boxed_slice(),
                                tags: a.tags.clone(),
                            }))
                        }
                        other => other.clone(),
                    };
                    (l, self.store.mk_close(b, resources))
                })
                .collect(),

            Proc::Invoke { def, args } => {
                assert!(
                    depth < MAX_UNFOLD_DEPTH,
                    "unguarded recursion while unfolding {} (depth {})",
                    self.env.def(*def).name,
                    depth
                );
                let vals: Vec<i64> = args
                    .iter()
                    .map(|e| {
                        e.eval_ground()
                            .expect("non-ground invocation argument in reachable state")
                    })
                    .collect();
                let body = self
                    .env
                    .instantiate(*def, &vals)
                    .unwrap_or_else(|e| panic!("cannot unfold {}: {e}", self.env.def(*def).name));
                self.raw(&self.store.intern(&body), depth + 1).as_ref().clone()
            }
        }
    }

    /// Interned counterpart of [`par_steps`]: identical three-phase structure
    /// and iteration order.
    fn par(&self, comps: &[P], depth: u32) -> Vec<(Label, Interned)> {
        // One pointer-map hit per component here; every successor below is
        // then assembled from these `Interned` values without touching the
        // pointer map again (`mk_par` digests from the children's digests).
        let comps_i: Vec<Interned> = comps.iter().map(|c| self.store.intern(c)).collect();
        let per: Vec<Arc<Vec<(Label, Interned)>>> =
            comps_i.iter().map(|ci| self.raw(ci, depth)).collect();
        let mut out: Vec<(Label, Interned)> = Vec::new();

        let rebuild1 = |i: usize, pi: &Interned| -> Interned {
            let mut kids = comps_i.clone();
            kids[i] = pi.clone();
            self.store.mk_par(kids)
        };
        let rebuild2 = |i: usize, pi: &Interned, j: usize, pj: &Interned| -> Interned {
            let mut kids = comps_i.clone();
            kids[i] = pi.clone();
            kids[j] = pj.clone();
            self.store.mk_par(kids)
        };

        // 1. A single component performs an instantaneous step on its own.
        for (i, steps_i) in per.iter().enumerate() {
            for (l, pi) in steps_i.iter() {
                if !l.is_timed() {
                    out.push((l.clone(), rebuild1(i, pi)));
                }
            }
        }

        // 2. Two components synchronise a matching send/receive pair into τ@e.
        for i in 0..per.len() {
            for j in (i + 1)..per.len() {
                for (li, pi) in per[i].iter() {
                    let (l1, d1, p1) = match li {
                        Label::E { label, dir, prio } => (*label, *dir, *prio),
                        _ => continue,
                    };
                    for (lj, pj) in per[j].iter() {
                        let (l2, d2, p2) = match lj {
                            Label::E { label, dir, prio } => (*label, *dir, *prio),
                            _ => continue,
                        };
                        if l1 == l2 && d1 != d2 {
                            out.push((
                                Label::Tau {
                                    prio: p1.saturating_add(p2),
                                    via: Some(l1),
                                },
                                rebuild2(i, pi, j, pj),
                            ));
                        }
                    }
                }
            }
        }

        // 3. Joint timed steps (Par3), merged left to right exactly as
        //    `par_steps` does.
        let timed: Vec<Vec<(&GAction, &Interned)>> = per
            .iter()
            .map(|steps_i| {
                steps_i
                    .iter()
                    .filter_map(|(l, p)| match l {
                        Label::A(a) => Some((&**a, p)),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        if timed.iter().all(|t| !t.is_empty()) {
            let mut picked: Vec<&Interned> = Vec::with_capacity(comps.len());
            combine_timed(&timed, 0, &GAction::idle(), &mut picked, &mut |action, picked| {
                let kids: Vec<Interned> = picked.iter().map(|p| (*p).clone()).collect();
                out.push((
                    Label::A(Arc::new(action.clone())),
                    self.store.mk_par(kids),
                ));
            });
        }

        out
    }

    /// Interned counterpart of [`scope_steps`], case for case.
    #[allow(clippy::too_many_arguments)]
    fn scope(
        &self,
        body: &P,
        limit: &TimeBound,
        exception: &Option<(crate::symbol::Symbol, P)>,
        timeout: &Option<P>,
        interrupt: &Option<P>,
        depth: u32,
    ) -> Vec<(Label, Interned)> {
        let remaining: Option<i64> = match limit {
            TimeBound::Finite(e) => Some(
                e.eval_ground()
                    .expect("non-ground scope bound in reachable state"),
            ),
            TimeBound::Infinite => None,
        };
        let mut out: Vec<(Label, Interned)> = Vec::new();
        let expired = remaining.is_some_and(|n| n <= 0);

        // The scope node is canonical, so its fixed children resolve through
        // the pointer map once here; `mk_scope` then rebuilds each successor
        // from their digests without re-walking them.
        let exc_i = exception.as_ref().map(|(s, h)| (*s, self.store.intern(h)));
        let to_i = timeout.as_ref().map(|t| self.store.intern(t));
        let ir_i = interrupt.as_ref().map(|i| self.store.intern(i));

        let rewrap = |b: &Interned, new_limit: TimeBound| -> Interned {
            self.store.mk_scope(b, new_limit, &exc_i, &to_i, &ir_i)
        };

        for (l, b) in self.raw(&self.store.intern(body), depth).iter() {
            if let (Label::E { label, .. }, Some((exc, handler))) = (l, &exc_i) {
                if label == exc {
                    out.push((l.clone(), handler.clone()));
                    continue;
                }
            }
            match l {
                Label::A(_) if expired => {}
                Label::A(_) => {
                    let new_limit = match remaining {
                        Some(n) => TimeBound::Finite(crate::expr::Expr::Const(n - 1)),
                        None => TimeBound::Infinite,
                    };
                    out.push((l.clone(), rewrap(b, new_limit)));
                }
                _ => {
                    out.push((l.clone(), rewrap(b, limit.clone())));
                }
            }
        }

        if expired {
            if let Some(r) = &to_i {
                out.extend(self.raw(r, depth).iter().cloned());
            }
        } else if let Some(s) = &ir_i {
            out.extend(self.raw(s, depth).iter().cloned());
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BExpr, Expr};
    use crate::symbol::{Res, Symbol};
    use crate::term::{
        act, choice, close, evt_recv, evt_send, guard, invoke, nil, par, restrict, scope, tau,
    };

    fn cpu() -> Res {
        Res::new("cpu")
    }
    fn bus() -> Res {
        Res::new("bus")
    }

    fn count_timed(steps: &[(Label, P)]) -> usize {
        steps.iter().filter(|(l, _)| l.is_timed()).count()
    }

    #[test]
    fn nil_has_no_steps() {
        let env = Env::new();
        assert!(steps(&env, &nil()).is_empty());
    }

    #[test]
    fn action_prefix_offers_one_step() {
        let env = Env::new();
        let p = act([(cpu(), 1)], nil());
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        match &s[0].0 {
            Label::A(a) => {
                assert_eq!(a.prio_of(cpu()), 1);
                assert_eq!(a.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn event_prefixes_offer_their_event() {
        let env = Env::new();
        let e = Symbol::new("go");
        let s = steps(&env, &evt_send(e, 3, nil()));
        assert_eq!(
            s[0].0,
            Label::E {
                label: e,
                dir: Dir::Send,
                prio: 3
            }
        );
        let s = steps(&env, &evt_recv(e, 2, nil()));
        assert_eq!(
            s[0].0,
            Label::E {
                label: e,
                dir: Dir::Recv,
                prio: 2
            }
        );
        let s = steps(&env, &tau(1, Some(e), nil()));
        assert_eq!(
            s[0].0,
            Label::Tau {
                prio: 1,
                via: Some(e)
            }
        );
    }

    #[test]
    fn choice_unions_steps() {
        let env = Env::new();
        let p = choice([
            act([(cpu(), 1)], nil()),
            evt_send(Symbol::new("go"), 1, nil()),
        ]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 2);
        assert_eq!(count_timed(&s), 1);
    }

    #[test]
    fn guards_gate_steps() {
        let env = Env::new();
        let p = guard(BExpr::lt(Expr::c(1), Expr::c(2)), act([(cpu(), 1)], nil()));
        assert_eq!(steps(&env, &p).len(), 1);
        let p = guard(BExpr::lt(Expr::c(2), Expr::c(1)), act([(cpu(), 1)], nil()));
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn par_advances_time_jointly_with_disjoint_resources() {
        let env = Env::new();
        // {(cpu,1)}:NIL ∥ {(bus,1)}:NIL — one joint step using both resources.
        let p = par([act([(cpu(), 1)], nil()), act([(bus(), 1)], nil())]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        let a = s[0].0.action().unwrap();
        assert!(a.uses_resource(cpu()) && a.uses_resource(bus()));
    }

    #[test]
    fn par_blocks_conflicting_actions() {
        let env = Env::new();
        // Both need cpu ⇒ no joint timed step; no events either ⇒ deadlock.
        let p = par([act([(cpu(), 1)], nil()), act([(cpu(), 2)], nil())]);
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn par_with_nil_component_blocks_time() {
        let env = Env::new();
        let p = par([act([(cpu(), 1)], nil()), nil()]);
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn par_synchronises_events_into_tau() {
        let env = Env::new();
        let e = Symbol::new("sync");
        let p = par([evt_send(e, 2, nil()), evt_recv(e, 3, nil())]);
        let s = steps(&env, &p);
        // Individual send, individual recv, and the τ@sync.
        assert_eq!(s.len(), 3);
        let taus: Vec<_> = s.iter().filter(|(l, _)| l.is_tau()).collect();
        assert_eq!(taus.len(), 1);
        assert_eq!(
            taus[0].0,
            Label::Tau {
                prio: 5,
                via: Some(e)
            }
        );
    }

    #[test]
    fn restriction_forces_synchronisation() {
        let env = Env::new();
        let e = Symbol::new("locked");
        let p = restrict(
            par([evt_send(e, 1, nil()), evt_recv(e, 1, nil())]),
            [e],
        );
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert!(s[0].0.is_tau());
    }

    #[test]
    fn restriction_can_deadlock_unmatched_events() {
        let env = Env::new();
        let e = Symbol::new("nobody_listens");
        let p = restrict(evt_send(e, 1, nil()), [e]);
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn closure_pads_actions_with_owned_resources() {
        let env = Env::new();
        let p = close(act([(cpu(), 1)], nil()), [cpu(), bus()]);
        let s = steps(&env, &p);
        let a = s[0].0.action().unwrap();
        assert_eq!(a.prio_of(cpu()), 1);
        assert_eq!(a.prio_of(bus()), 0);
        assert!(a.uses_resource(bus()));
    }

    #[test]
    fn recursion_unfolds_through_invoke() {
        let mut env = Env::new();
        let d = env.declare("Loop", 1);
        env.set_body(
            d,
            act(
                [(cpu(), Expr::p(0))],
                invoke(d, [Expr::p(0).add(Expr::c(1))]),
            ),
        );
        let p = invoke(d, [Expr::c(5)]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0.action().unwrap().prio_of(cpu()), 5);
        // The residual is the invocation with incremented argument.
        let s2 = steps(&env, &s[0].1);
        assert_eq!(s2[0].0.action().unwrap().prio_of(cpu()), 6);
    }

    #[test]
    #[should_panic(expected = "unguarded recursion")]
    fn unguarded_recursion_panics() {
        let mut env = Env::new();
        let d = env.declare("Omega", 0);
        env.set_body(d, invoke(d, []));
        steps(&env, &invoke(d, []));
    }

    #[test]
    fn scope_times_out_to_continuation() {
        let env = Env::new();
        // scope(idle-loop, 2) with timeout → (done!,1).NIL
        let mut env2 = Env::new();
        let idler = env2.declare("Idler", 0);
        env2.set_body(idler, act([] as [(Res, i32); 0], invoke(idler, [])));
        let done = Symbol::new("done");
        let p = scope(
            invoke(idler, []),
            crate::term::TimeBound::Finite(Expr::c(2)),
            None,
            Some(evt_send(done, 1, nil())),
            None,
        );
        let _ = env;
        // Step 1: idle (limit 2 → 1).
        let s = steps(&env2, &p);
        assert_eq!(s.len(), 1);
        assert!(s[0].0.is_timed());
        // Step 2: idle (limit 1 → 0).
        let s = steps(&env2, &s[0].1);
        assert_eq!(s.len(), 1);
        // At the boundary: no more timed steps; the timeout continuation's
        // event is offered.
        let s = steps(&env2, &s[0].1);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].0, Label::E { dir: Dir::Send, .. }));
    }

    #[test]
    fn scope_exception_exits_to_handler() {
        let env = Env::new();
        let exc = Symbol::new("complete");
        let after = Symbol::new("after");
        let body = act([(cpu(), 1)], evt_send(exc, 1, nil()));
        let p = scope(
            body,
            crate::term::TimeBound::Infinite,
            Some((exc, evt_send(after, 1, nil()))),
            None,
            None,
        );
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1); // the timed step
        let s = steps(&env, &s[0].1);
        assert_eq!(s.len(), 1);
        // The exception event itself is visible...
        assert!(matches!(&s[0].0, Label::E { label, dir: Dir::Send, .. } if *label == exc));
        // ...and control transferred to the handler, not the body residual.
        let s = steps(&env, &s[0].1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == after));
    }

    #[test]
    fn scope_interrupt_handler_can_take_over() {
        let env = Env::new();
        let irq = Symbol::new("interrupt");
        let body = act([(cpu(), 1)], nil());
        let handler = evt_recv(irq, 1, act([(bus(), 1)], nil()));
        let p = scope(
            body,
            crate::term::TimeBound::Infinite,
            None,
            None,
            Some(handler),
        );
        let s = steps(&env, &p);
        // Body's timed step + handler's receive.
        assert_eq!(s.len(), 2);
        let recv = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { dir: Dir::Recv, .. }))
            .expect("interrupt receive offered");
        // After the interrupt fires, the scope is dissolved.
        let s2 = steps(&env, &recv.1);
        assert_eq!(s2.len(), 1);
        assert!(s2[0].0.action().unwrap().uses_resource(bus()));
    }

    #[test]
    fn scope_exception_triggers_on_receive_too() {
        // Fig. 6 dispatchers: the scope around the wait-for-done loop is
        // exited by *receiving* the done event.
        let env = Env::new();
        let done = Symbol::new("done");
        let idle_wait = choice([
            act([] as [(Res, i32); 0], nil()),
            evt_recv(done, 1, nil()),
        ]);
        let p = scope(
            idle_wait,
            crate::term::TimeBound::Finite(Expr::c(5)),
            Some((done, act([(cpu(), 9)], nil()))),
            Some(nil()),
            None,
        );
        let s = steps(&env, &p);
        let recv = s
            .iter()
            .find(|(l, _)| matches!(l, Label::E { dir: Dir::Recv, .. }))
            .expect("done? offered");
        // Receiving done exits to the handler, not the body continuation.
        let s2 = steps(&env, &recv.1);
        assert_eq!(s2.len(), 1);
        assert_eq!(s2[0].0.action().unwrap().prio_of(cpu()), 9);
    }

    #[test]
    fn boundary_events_allowed_at_deadline() {
        // A scope that expires immediately still lets the body perform
        // instantaneous steps — completion at exactly the deadline.
        let env = Env::new();
        let done = Symbol::new("done");
        let p = scope(
            evt_send(done, 1, nil()),
            crate::term::TimeBound::Finite(Expr::c(0)),
            None,
            Some(nil()),
            None,
        );
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0].0, Label::E { label, .. } if *label == done));
    }

    #[test]
    fn expired_scope_with_nil_timeout_blocks() {
        let env = Env::new();
        let p = scope(
            act([(cpu(), 1)], nil()),
            crate::term::TimeBound::Finite(Expr::c(0)),
            None,
            Some(nil()),
            None,
        );
        assert!(steps(&env, &p).is_empty());
    }

    #[test]
    fn duplicate_steps_are_deduplicated() {
        let env = Env::new();
        let a = act([(cpu(), 1)], nil());
        let p = choice([a.clone(), a]);
        assert_eq!(steps(&env, &p).len(), 1);
    }

    #[test]
    fn three_way_par_merges_all_actions() {
        let env = Env::new();
        let r1 = Res::new("r1");
        let r2 = Res::new("r2");
        let r3 = Res::new("r3");
        let p = par([
            act([(r1, 1)], nil()),
            act([(r2, 2)], nil()),
            act([(r3, 3)], nil()),
        ]);
        let s = steps(&env, &p);
        assert_eq!(s.len(), 1);
        let a = s[0].0.action().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.prio_of(r2), 2);
    }

    #[test]
    fn par_explores_all_disjoint_combinations() {
        let env = Env::new();
        // Each component can compute (cpu) or idle: valid joint steps are
        // (compute, idle), (idle, compute), (idle, idle) — not (compute, compute).
        let worker = |prio: i64| {
            choice([
                act([(cpu(), prio)], nil()),
                act([] as [(Res, i32); 0], nil()),
            ])
        };
        let p = par([worker(1), worker(2)]);
        let s = steps(&env, &p);
        assert_eq!(count_timed(&s), 3);
    }

    // -- StepSession: interned + memoized stepping ---------------------------

    fn session_over(env: &Env, config: MemoConfig) -> StepSession<'_> {
        StepSession::new(env, Arc::new(TermStore::new()), config)
    }

    /// Walk `p` breadth-first a few levels through both engines and insist on
    /// the same labels, in the same order, with structurally equal residues.
    fn assert_engines_agree(env: &Env, p: &P, config: MemoConfig) {
        let session = session_over(env, config);
        let mut legacy_frontier = vec![p.clone()];
        let mut interned_frontier = vec![session.intern(p)];
        for _ in 0..4 {
            let mut next_legacy = Vec::new();
            let mut next_interned = Vec::new();
            for (lp, ip) in legacy_frontier.iter().zip(&interned_frontier) {
                let ls = crate::prio::prioritized_steps(env, lp);
                let is = session.prioritized_steps(ip);
                assert_eq!(ls.len(), is.len(), "step counts diverged");
                for ((ll, lnext), (il, inext)) in ls.iter().zip(&is) {
                    assert_eq!(ll, il, "labels diverged");
                    assert_eq!(lnext, inext.term(), "residues diverged");
                    next_legacy.push(lnext.clone());
                    next_interned.push(inext.clone());
                }
            }
            legacy_frontier = next_legacy;
            interned_frontier = next_interned;
        }
    }

    #[test]
    fn session_matches_legacy_on_all_operators() {
        let mut env = Env::new();
        let e = Symbol::new("sync");
        let done = Symbol::new("done");
        let d = env.declare("Task", 1);
        env.set_body(
            d,
            act([(cpu(), Expr::p(0))], evt_send(done, 1, invoke(d, [Expr::p(0)]))),
        );
        let cases: Vec<P> = vec![
            par([invoke(d, [Expr::c(2)]), act([(bus(), 1)], nil())]),
            restrict(par([evt_send(e, 2, nil()), evt_recv(e, 3, nil())]), [e]),
            close(
                choice([act([(cpu(), 1)], nil()), act([] as [(Res, i32); 0], nil())]),
                [cpu(), bus()],
            ),
            scope(
                invoke(d, [Expr::c(1)]),
                TimeBound::Finite(Expr::c(2)),
                Some((done, act([(bus(), 4)], nil()))),
                Some(nil()),
                Some(evt_recv(e, 1, nil())),
            ),
            guard(BExpr::lt(Expr::c(1), Expr::c(2)), tau(1, None, nil())),
        ];
        for p in &cases {
            assert_engines_agree(&env, p, MemoConfig::default());
            assert_engines_agree(&env, p, MemoConfig::disabled());
        }
    }

    #[test]
    fn session_revisits_hit_the_memo() {
        let mut env = Env::new();
        let d = env.declare("Spin", 0);
        env.set_body(d, act([(cpu(), 1)], invoke(d, [])));
        let session = session_over(&env, MemoConfig::default());
        let p = session.intern(&invoke(d, []));
        let first = session.steps(&p);
        assert_eq!(first.len(), 1);
        // Spin loops back to itself: stepping the successor is a pure hit.
        let hits_before = session.memo_stats().hits;
        let again = session.steps(&first[0].1);
        assert_eq!(again.len(), 1);
        assert!(session.memo_stats().hits > hits_before);
        assert_eq!(session.memo_stats().evictions, 0);
    }

    #[test]
    fn disabled_memo_counts_nothing() {
        let env = Env::new();
        let session = session_over(&env, MemoConfig::disabled());
        let p = session.intern(&act([(cpu(), 1)], act([(cpu(), 2)], nil())));
        let _ = session.steps(&p);
        let _ = session.steps(&p);
        assert_eq!(session.memo_stats(), MemoStats::default());
    }

    #[test]
    fn tiny_memo_evicts_but_keeps_answers_identical() {
        let mut env = Env::new();
        let d = env.declare("Count", 1);
        env.set_body(
            d,
            act([(cpu(), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
        );
        // A chain of distinct states overflows a capacity-16 cache (one slot
        // per shard) many times over.
        let tiny = session_over(&env, MemoConfig::with_capacity(16));
        let full = session_over(&env, MemoConfig::default());
        let mut t = tiny.intern(&invoke(d, [Expr::c(0)]));
        let mut f = full.intern(&invoke(d, [Expr::c(0)]));
        for _ in 0..64 {
            let ts = tiny.prioritized_steps(&t);
            let fs = full.prioritized_steps(&f);
            assert_eq!(ts.len(), fs.len());
            for ((tl, tn), (fl, fn_)) in ts.iter().zip(&fs) {
                assert_eq!(tl, fl);
                assert_eq!(tn.term(), fn_.term());
            }
            t = ts[0].1.clone();
            f = fs[0].1.clone();
        }
        assert!(
            tiny.memo_stats().evictions > 0,
            "64 distinct states must overflow 16 slots"
        );
        assert_eq!(full.memo_stats().evictions, 0);
    }

    #[test]
    fn memo_entries_can_be_reinserted_after_eviction() {
        let mut env = Env::new();
        let d = env.declare("Mod", 1);
        // Mod(k): an 8-cycle — advance to Mod(k+1) while k < 7, wrap to
        // Mod(0) from k = 7. Each step claims the cpu at priority k+1.
        env.set_body(
            d,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(7)),
                    act(
                        [(cpu(), Expr::p(0).add(Expr::c(1)))],
                        invoke(d, [Expr::p(0).add(Expr::c(1))]),
                    ),
                ),
                guard(
                    BExpr::lt(Expr::c(6), Expr::p(0)),
                    act([(cpu(), Expr::p(0).add(Expr::c(1)))], invoke(d, [Expr::c(0)])),
                ),
            ]),
        );
        let session = session_over(&env, MemoConfig::with_capacity(16));
        let mut t = session.intern(&invoke(d, [Expr::c(0)]));
        // Three laps around the cycle: entries are evicted and recomputed,
        // and the walk keeps producing the same action priorities.
        for lap in 0..3 {
            for k in 0..8 {
                let s = session.prioritized_steps(&t);
                assert_eq!(s.len(), 1, "lap {lap} state {k}");
                assert_eq!(s[0].0.action().unwrap().prio_of(cpu()), k + 1);
                t = s[0].1.clone();
            }
        }
        let stats = session.memo_stats();
        assert!(stats.misses > 0 && stats.evictions > 0);
    }

    #[test]
    #[should_panic(expected = "unguarded recursion")]
    fn session_still_detects_unguarded_recursion() {
        let mut env = Env::new();
        let d = env.declare("Omega", 0);
        env.set_body(d, invoke(d, []));
        let session = session_over(&env, MemoConfig::default());
        let p = session.intern(&invoke(d, []));
        let _ = session.steps(&p);
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        let mut env = Env::new();
        let d = env.declare("Tick", 0);
        env.set_body(d, act([(cpu(), 1)], invoke(d, [])));
        let session = session_over(&env, MemoConfig::default());
        let p = session.intern(&invoke(d, []));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let session = &session;
                let p = p.clone();
                s.spawn(move || {
                    let mut cur = p;
                    for _ in 0..16 {
                        let steps = session.prioritized_steps(&cur);
                        assert_eq!(steps.len(), 1);
                        cur = steps[0].1.clone();
                    }
                });
            }
        });
        let stats = session.memo_stats();
        assert!(stats.hits + stats.misses >= 64);
    }
}
