//! Hash-consed process terms: the [`TermStore`] interner.
//!
//! Exploration revisits the same subprocess terms relentlessly — every
//! periodic task re-enters the same skeleton states once per hyperperiod, and
//! every composed state shares almost all of its subterms with its
//! predecessor. A [`TermStore`] exploits that: it assigns each
//! *structurally unique* [`Proc`] subterm a stable [`TermId`] and keeps one
//! canonical [`P`] per structure, so
//!
//! * equality and hashing of interned terms are O(1) id comparisons — the
//!   deep-compare fallback of [`HashedP`](crate::hashed::HashedP) disappears;
//! * re-interning a term whose `Arc` is already canonical is a pointer-map
//!   hit, no tree walk at all;
//! * interning a freshly built successor walks only its *new spine*: shared
//!   children are canonical `Arc`s and resolve through the pointer fast path.
//!
//! The store is sharded over [`Mutex`]es and safe to share across worker
//! threads (`&TermStore` is `Sync`). Structural digests are deterministic
//! (FNV-1a over node kind, local fields and child digests — no pointers, no
//! random keys), so digest-derived decisions downstream (e.g. which shard of
//! a sharded visited set a state lands in) are reproducible run to run.
//! [`TermId`] *values*, by contrast, depend on interning order and may differ
//! between runs when workers race; they are stable within one store and must
//! never leak into externally visible results.
//!
//! # The canonical-children invariant
//!
//! Every term held by the store is *canonical*: its own `Arc` is the one the
//! store returns for its structure, and — recursively — so are all of its
//! children. [`TermStore::intern`] establishes this bottom-up, which is what
//! makes the shallow structural comparison sound: two canonical nodes are
//! structurally equal iff their variants and local fields match and their
//! children are pointer-equal.

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::env::TagId;
use crate::expr::BExpr;
use crate::hashed::Fnv1a;
use crate::skeleton::{self, Factored};
use crate::symbol::{Res, Symbol};
use crate::term::{ActionT, EventT, Proc, TimeBound, P};

/// Number of entry shards (power of two). Sixteen keeps worker contention
/// low at the thread counts the engine supports without bloating tiny runs.
const SHARDS: usize = 16;
const SHARD_BITS: u32 = 4;
/// Highest slot index representable inside one shard (u32 id space minus the
/// shard bits).
const MAX_SLOT: u32 = (1 << (32 - SHARD_BITS)) - 1;

/// Identifier of a structurally-unique term within one [`TermStore`].
///
/// Two interned terms are structurally equal **iff** their ids are equal —
/// that is the whole point of hash-consing. Ids are only meaningful within
/// the store that produced them.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::store::TermStore;
///
/// let store = TermStore::new();
/// let a = store.intern(&act([(Res::new("cpu"), 1)], nil()));
/// let b = store.intern(&act([(Res::new("cpu"), 1)], nil())); // fresh Arc, same structure
/// assert_eq!(a.id(), b.id());
/// assert_ne!(a.id(), store.intern(&nil()).id());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The raw 32-bit value (shard index in the low bits, slot in the rest).
    pub fn raw(self) -> u32 {
        self.0
    }

    fn encode(shard: usize, slot: u32) -> TermId {
        assert!(slot <= MAX_SLOT, "term store shard overflow");
        TermId((slot << SHARD_BITS) | shard as u32)
    }

    fn shard(self) -> usize {
        (self.0 & (SHARDS as u32 - 1)) as usize
    }

    fn slot(self) -> usize {
        (self.0 >> SHARD_BITS) as usize
    }
}

/// An interned term: its [`TermId`], its structural digest, and the canonical
/// `Arc` for its structure.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::store::TermStore;
///
/// let store = TermStore::new();
/// let i = store.intern(&act([(Res::new("cpu"), 1)], nil()));
/// // Interning the *canonical* Arc again is a pointer-map hit with the same id.
/// let again = store.intern(&i.term().clone());
/// assert_eq!(i.id(), again.id());
/// assert_eq!(i.digest(), again.digest());
/// ```
#[derive(Clone, Debug)]
pub struct Interned {
    id: TermId,
    digest: u64,
    term: P,
}

impl Interned {
    /// The term's id: O(1) equality and hashing.
    pub fn id(&self) -> TermId {
        self.id
    }

    /// The deterministic structural digest (after the store's digest mask).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The canonical term.
    pub fn term(&self) -> &P {
        &self.term
    }

    /// Unwrap into the canonical term.
    pub fn into_term(self) -> P {
        self.term
    }
}

/// One digest-indexed shard of the store: slot-addressed canonical entries
/// plus the digest buckets that resolve collisions by shallow comparison.
#[derive(Default, Debug)]
struct EntryShard {
    /// `(canonical term, digest)`, indexed by slot.
    entries: Vec<(P, u64)>,
    /// digest → slots holding that digest (usually exactly one).
    buckets: HashMap<u64, Vec<u32>>,
}

/// A thread-safe hash-consing interner for [`Proc`] terms.
///
/// See the [module documentation](self) for the design; see
/// [`TermStore::with_digest_mask`] for the collision-injection hook used by
/// the property tests.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::store::TermStore;
///
/// let store = TermStore::new();
/// let cpu = Res::new("cpu");
/// // Two structurally equal trees built independently...
/// let a = store.intern(&act([(cpu, 1)], act([(cpu, 2)], nil())));
/// let b = store.intern(&act([(cpu, 1)], act([(cpu, 2)], nil())));
/// // ...collapse to one id and one canonical Arc.
/// assert_eq!(a.id(), b.id());
/// assert!(std::sync::Arc::ptr_eq(a.term(), b.term()));
/// // Subterms are interned too: the tree above has 3 unique nodes.
/// assert_eq!(store.len(), 3);
/// ```
#[derive(Debug)]
pub struct TermStore {
    entry_shards: Vec<Mutex<EntryShard>>,
    /// Canonical `Arc` address → `(id, digest)`. Only canonical pointers are
    /// ever inserted, and the entry shards keep every canonical `Arc` alive,
    /// so an address can never be recycled while it is a key.
    ptr_shards: Vec<Mutex<HashMap<usize, (TermId, u64)>>>,
    /// `TermId::raw` → factored shape, memoized on first demand. Shapes live
    /// with the store so their lifetime matches the ids that key them.
    shape_shards: Vec<Mutex<HashMap<u32, Arc<Factored>>>>,
    count: AtomicUsize,
    digest_mask: u64,
}

impl Default for TermStore {
    fn default() -> TermStore {
        TermStore::new()
    }
}

impl TermStore {
    /// An empty store.
    pub fn new() -> TermStore {
        TermStore::with_digest_mask(u64::MAX)
    }

    /// An empty store whose structural digests are AND-ed with `mask` —
    /// a *testing* hook that forces digest collisions (`mask = 0` collapses
    /// every digest to zero). Interning stays correct under any mask: the
    /// digest buckets fall back to shallow structural comparison, so
    /// structurally distinct terms always receive distinct ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use acsr::store::TermStore;
    ///
    /// let store = TermStore::with_digest_mask(0);
    /// let a = store.intern(&act([(Res::new("cpu"), 1)], nil()));
    /// let b = store.intern(&act([(Res::new("cpu"), 2)], nil()));
    /// assert_eq!(a.digest(), b.digest()); // digests forced to collide...
    /// assert_ne!(a.id(), b.id()); // ...but distinct structures stay distinct
    /// ```
    pub fn with_digest_mask(mask: u64) -> TermStore {
        TermStore {
            entry_shards: (0..SHARDS).map(|_| Mutex::new(EntryShard::default())).collect(),
            ptr_shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shape_shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            count: AtomicUsize::new(0),
            digest_mask: mask,
        }
    }

    /// The factored shape of `t` ([`skeleton::factor`]), memoized per
    /// [`TermId`]. The closed-form delay advance factors every state it
    /// touches; states revisited across zone edges hit the memo.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use acsr::store::TermStore;
    ///
    /// let store = TermStore::new();
    /// let t = store.intern(&act([(Res::new("cpu"), 1)], nil()));
    /// let f = store.shape_of(&t);
    /// assert_eq!(f.values, vec![1]); // one chain hole of length 1
    /// assert!(std::sync::Arc::ptr_eq(&f, &store.shape_of(&t))); // memoized
    /// ```
    pub fn shape_of(&self, t: &Interned) -> Arc<Factored> {
        let raw = t.id().raw();
        let shard = &self.shape_shards[(raw as usize) & (SHARDS - 1)];
        if let Some(f) = shard
            .lock()
            .expect("term store shape shard poisoned")
            .get(&raw)
        {
            return f.clone();
        }
        let f = Arc::new(skeleton::factor(t.term()));
        self.note_shape(t, f.clone());
        f
    }

    /// Record a shape already known for `t` (because `t` was produced by
    /// [`skeleton::rebuild`] from a factored template), sparing the factor
    /// walk on the next [`TermStore::shape_of`]. A racing insert wins
    /// harmlessly: both sides computed the same factorization.
    pub fn note_shape(&self, t: &Interned, f: Arc<Factored>) {
        let raw = t.id().raw();
        let shard = &self.shape_shards[(raw as usize) & (SHARDS - 1)];
        shard
            .lock()
            .expect("term store shape shard poisoned")
            .entry(raw)
            .or_insert(f);
    }

    /// Number of structurally-unique subterms interned so far.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern `p` (and, recursively, every subterm), returning its id,
    /// digest and canonical `Arc`.
    ///
    /// Cost: O(1) when `p` is already canonical (pointer-map hit); otherwise
    /// linear in the *non-canonical spine* of `p` — children that are already
    /// canonical stop the recursion at a pointer hit each.
    pub fn intern(&self, p: &P) -> Interned {
        if let Some(hit) = self.ptr_lookup(p) {
            return hit;
        }
        self.intern_slow(p)
    }

    /// Look up the entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` did not come from this store.
    pub fn resolve(&self, id: TermId) -> Interned {
        let guard = self.entry_shards[id.shard()]
            .lock()
            .expect("term store shard poisoned");
        let (term, digest) = &guard.entries[id.slot()];
        Interned {
            id,
            digest: *digest,
            term: term.clone(),
        }
    }

    fn ptr_shard(&self, p: &P) -> (&Mutex<HashMap<usize, (TermId, u64)>>, usize) {
        let addr = Arc::as_ptr(p) as usize;
        // Arc payloads are word-aligned; shift the dead low bits away before
        // selecting a shard.
        (&self.ptr_shards[(addr >> 4) & (SHARDS - 1)], addr)
    }

    fn ptr_lookup(&self, p: &P) -> Option<Interned> {
        let (shard, addr) = self.ptr_shard(p);
        let guard = shard.lock().expect("term store pointer shard poisoned");
        guard.get(&addr).map(|&(id, digest)| Interned {
            id,
            digest,
            term: p.clone(),
        })
    }

    fn register_ptr(&self, i: &Interned) {
        let (shard, addr) = self.ptr_shard(&i.term);
        let mut guard = shard.lock().expect("term store pointer shard poisoned");
        guard.entry(addr).or_insert((i.id, i.digest));
    }

    /// Canonicalize `p`'s children, digest the node, and insert (or find) it.
    fn intern_slow(&self, p: &P) -> Interned {
        let (digest, canon): (u64, P) = match &**p {
            Proc::Nil => (digest_nil(), p.clone()),
            Proc::Act { action, tag, next } => {
                let next_i = self.intern(next);
                let digest = digest_act(action, tag, next_i.digest);
                let canon = if Arc::ptr_eq(next, &next_i.term) {
                    p.clone()
                } else {
                    Arc::new(Proc::Act {
                        action: action.clone(),
                        tag: *tag,
                        next: next_i.term,
                    })
                };
                (digest, canon)
            }
            Proc::Evt { event, next } => {
                let next_i = self.intern(next);
                let digest = digest_evt(event, next_i.digest);
                let canon = if Arc::ptr_eq(next, &next_i.term) {
                    p.clone()
                } else {
                    Arc::new(Proc::Evt {
                        event: event.clone(),
                        next: next_i.term,
                    })
                };
                (digest, canon)
            }
            Proc::Choice(alts) => {
                let kids: Vec<Interned> = alts.iter().map(|a| self.intern(a)).collect();
                let digest = digest_list(3, &kids);
                let canon = if alts
                    .iter()
                    .zip(&kids)
                    .all(|(a, k)| Arc::ptr_eq(a, &k.term))
                {
                    p.clone()
                } else {
                    Arc::new(Proc::Choice(kids.into_iter().map(Interned::into_term).collect()))
                };
                (digest, canon)
            }
            Proc::Par(comps) => {
                let kids: Vec<Interned> = comps.iter().map(|c| self.intern(c)).collect();
                let digest = digest_list(4, &kids);
                let canon = if comps
                    .iter()
                    .zip(&kids)
                    .all(|(c, k)| Arc::ptr_eq(c, &k.term))
                {
                    p.clone()
                } else {
                    Arc::new(Proc::Par(kids.into_iter().map(Interned::into_term).collect()))
                };
                (digest, canon)
            }
            Proc::Guard { cond, then } => {
                let then_i = self.intern(then);
                let digest = digest_guard(cond, then_i.digest);
                let canon = if Arc::ptr_eq(then, &then_i.term) {
                    p.clone()
                } else {
                    Arc::new(Proc::Guard {
                        cond: cond.clone(),
                        then: then_i.term,
                    })
                };
                (digest, canon)
            }
            Proc::Scope {
                body,
                limit,
                exception,
                timeout,
                interrupt,
            } => {
                let body_i = self.intern(body);
                let exc_i = exception.as_ref().map(|(l, hd)| (*l, self.intern(hd)));
                let to_i = timeout.as_ref().map(|t| self.intern(t));
                let ir_i = interrupt.as_ref().map(|i| self.intern(i));
                let digest = digest_scope(limit, &body_i, &exc_i, &to_i, &ir_i);
                let unchanged = Arc::ptr_eq(body, &body_i.term)
                    && exception
                        .as_ref()
                        .zip(exc_i.as_ref())
                        .is_none_or(|((_, a), (_, b))| Arc::ptr_eq(a, &b.term))
                    && timeout
                        .as_ref()
                        .zip(to_i.as_ref())
                        .is_none_or(|(a, b)| Arc::ptr_eq(a, &b.term))
                    && interrupt
                        .as_ref()
                        .zip(ir_i.as_ref())
                        .is_none_or(|(a, b)| Arc::ptr_eq(a, &b.term));
                let canon = if unchanged {
                    p.clone()
                } else {
                    Arc::new(Proc::Scope {
                        body: body_i.term,
                        limit: limit.clone(),
                        exception: exc_i.map(|(l, hd)| (l, hd.term)),
                        timeout: to_i.map(Interned::into_term),
                        interrupt: ir_i.map(Interned::into_term),
                    })
                };
                (digest, canon)
            }
            Proc::Restrict { body, labels } => {
                let body_i = self.intern(body);
                let digest = digest_restrict(labels, body_i.digest);
                let canon = if Arc::ptr_eq(body, &body_i.term) {
                    p.clone()
                } else {
                    Arc::new(Proc::Restrict {
                        body: body_i.term,
                        labels: labels.clone(),
                    })
                };
                (digest, canon)
            }
            Proc::Close { body, resources } => {
                let body_i = self.intern(body);
                let digest = digest_close(resources, body_i.digest);
                let canon = if Arc::ptr_eq(body, &body_i.term) {
                    p.clone()
                } else {
                    Arc::new(Proc::Close {
                        body: body_i.term,
                        resources: resources.clone(),
                    })
                };
                (digest, canon)
            }
            Proc::Invoke { def, args } => {
                let mut h = Fnv1a::new();
                h.write_u8(9);
                def.hash(&mut h);
                args.hash(&mut h);
                (h.finish(), p.clone())
            }
        };
        self.insert(canon, digest & self.digest_mask)
    }

    // -- Fast-path node constructors -----------------------------------------
    //
    // The step session builds successor terms whose children it already holds
    // as [`Interned`] values. These constructors digest the node directly
    // from the children's digests and go straight to [`TermStore::insert`] —
    // no recursive walk, no per-child pointer-map lookup. They MUST produce
    // the exact digest [`TermStore::intern_slow`] would (both paths share the
    // `digest_*` helpers), or structurally equal terms would land in
    // different buckets and be assigned two ids.

    /// Intern `Par(kids)` from already-interned components.
    pub(crate) fn mk_par(&self, kids: Vec<Interned>) -> Interned {
        let digest = digest_list(4, &kids) & self.digest_mask;
        let canon = Arc::new(Proc::Par(kids.into_iter().map(Interned::into_term).collect()));
        self.insert(canon, digest)
    }

    /// Intern `Restrict { body, labels }` from an already-interned body.
    pub(crate) fn mk_restrict(&self, body: &Interned, labels: &Arc<BTreeSet<Symbol>>) -> Interned {
        let digest = digest_restrict(labels, body.digest) & self.digest_mask;
        let canon = Arc::new(Proc::Restrict {
            body: body.term.clone(),
            labels: labels.clone(),
        });
        self.insert(canon, digest)
    }

    /// Intern `Close { body, resources }` from an already-interned body.
    pub(crate) fn mk_close(&self, body: &Interned, resources: &Arc<BTreeSet<Res>>) -> Interned {
        let digest = digest_close(resources, body.digest) & self.digest_mask;
        let canon = Arc::new(Proc::Close {
            body: body.term.clone(),
            resources: resources.clone(),
        });
        self.insert(canon, digest)
    }

    /// Intern a `Scope` node from already-interned children.
    pub(crate) fn mk_scope(
        &self,
        body: &Interned,
        limit: TimeBound,
        exception: &Option<(Symbol, Interned)>,
        timeout: &Option<Interned>,
        interrupt: &Option<Interned>,
    ) -> Interned {
        let digest = digest_scope(&limit, body, exception, timeout, interrupt) & self.digest_mask;
        let canon = Arc::new(Proc::Scope {
            body: body.term.clone(),
            limit,
            exception: exception.as_ref().map(|(l, hd)| (*l, hd.term.clone())),
            timeout: timeout.as_ref().map(|t| t.term.clone()),
            interrupt: interrupt.as_ref().map(|i| i.term.clone()),
        });
        self.insert(canon, digest)
    }

    /// Insert a node whose children are canonical, or find its existing
    /// entry. Collisions within a digest bucket are resolved by shallow
    /// structural comparison (children by pointer — sound because both sides
    /// are canonical).
    fn insert(&self, canon: P, digest: u64) -> Interned {
        let shard_idx = (digest as usize) & (SHARDS - 1);
        let mut guard = self.entry_shards[shard_idx]
            .lock()
            .expect("term store shard poisoned");
        if let Some(slots) = guard.buckets.get(&digest) {
            for &slot in slots {
                let existing = &guard.entries[slot as usize].0;
                if shallow_eq(existing, &canon) {
                    // The canonical Arc's address was registered when the
                    // entry was created, so no pointer-map work is needed.
                    return Interned {
                        id: TermId::encode(shard_idx, slot),
                        digest,
                        term: existing.clone(),
                    };
                }
            }
        }
        let slot = u32::try_from(guard.entries.len()).expect("term store shard overflow");
        let id = TermId::encode(shard_idx, slot);
        guard.entries.push((canon.clone(), digest));
        guard.buckets.entry(digest).or_default().push(slot);
        drop(guard);
        self.count.fetch_add(1, Ordering::Relaxed);
        let out = Interned {
            id,
            digest,
            term: canon,
        };
        self.register_ptr(&out);
        out
    }
}

// ---------------------------------------------------------------------------
// Structural digests. One helper per node kind, shared by the recursive
// `intern_slow` walk and the `mk_*` fast-path constructors so the two paths
// cannot drift apart. Each digest covers the variant tag (a distinct byte per
// kind), the node's local fields via their `Hash` impls, and the children's
// *masked* digests — never pointers, never `TermId`s, so digests are
// deterministic across runs and interning orders.

fn digest_nil() -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(0);
    h.finish()
}

fn digest_act(action: &ActionT, tag: &Option<TagId>, next: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(1);
    action.hash(&mut h);
    tag.hash(&mut h);
    h.write_u64(next);
    h.finish()
}

fn digest_evt(event: &EventT, next: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(2);
    event.hash(&mut h);
    h.write_u64(next);
    h.finish()
}

/// Choice (`tag = 3`) and Par (`tag = 4`) digests: length-prefixed child list.
fn digest_list(tag: u8, kids: &[Interned]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(tag);
    h.write_usize(kids.len());
    for k in kids {
        h.write_u64(k.digest);
    }
    h.finish()
}

fn digest_guard(cond: &BExpr, then: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(5);
    cond.hash(&mut h);
    h.write_u64(then);
    h.finish()
}

fn digest_scope(
    limit: &TimeBound,
    body: &Interned,
    exception: &Option<(Symbol, Interned)>,
    timeout: &Option<Interned>,
    interrupt: &Option<Interned>,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(6);
    limit.hash(&mut h);
    h.write_u64(body.digest);
    match exception {
        Some((l, hd)) => {
            h.write_u8(1);
            l.hash(&mut h);
            h.write_u64(hd.digest);
        }
        None => h.write_u8(0),
    }
    match timeout {
        Some(t) => {
            h.write_u8(1);
            h.write_u64(t.digest);
        }
        None => h.write_u8(0),
    }
    match interrupt {
        Some(i) => {
            h.write_u8(1);
            h.write_u64(i.digest);
        }
        None => h.write_u8(0),
    }
    h.finish()
}

fn digest_restrict(labels: &Arc<BTreeSet<Symbol>>, body: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(7);
    labels.hash(&mut h);
    h.write_u64(body);
    h.finish()
}

fn digest_close(resources: &Arc<BTreeSet<Res>>, body: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u8(8);
    resources.hash(&mut h);
    h.write_u64(body);
    h.finish()
}

/// Structural equality of two nodes *whose children are canonical in the same
/// store*: variant and local fields compare by value, children by `Arc`
/// pointer identity.
fn shallow_eq(a: &Proc, b: &Proc) -> bool {
    match (a, b) {
        (Proc::Nil, Proc::Nil) => true,
        (
            Proc::Act {
                action: a1,
                tag: t1,
                next: n1,
            },
            Proc::Act {
                action: a2,
                tag: t2,
                next: n2,
            },
        ) => a1 == a2 && t1 == t2 && Arc::ptr_eq(n1, n2),
        (
            Proc::Evt {
                event: e1,
                next: n1,
            },
            Proc::Evt {
                event: e2,
                next: n2,
            },
        ) => e1 == e2 && Arc::ptr_eq(n1, n2),
        (Proc::Choice(x), Proc::Choice(y)) | (Proc::Par(x), Proc::Par(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| Arc::ptr_eq(p, q))
        }
        (
            Proc::Guard {
                cond: c1,
                then: p1,
            },
            Proc::Guard {
                cond: c2,
                then: p2,
            },
        ) => c1 == c2 && Arc::ptr_eq(p1, p2),
        (
            Proc::Scope {
                body: b1,
                limit: l1,
                exception: e1,
                timeout: t1,
                interrupt: i1,
            },
            Proc::Scope {
                body: b2,
                limit: l2,
                exception: e2,
                timeout: t2,
                interrupt: i2,
            },
        ) => {
            Arc::ptr_eq(b1, b2)
                && l1 == l2
                && match (e1, e2) {
                    (None, None) => true,
                    (Some((s1, h1)), Some((s2, h2))) => s1 == s2 && Arc::ptr_eq(h1, h2),
                    _ => false,
                }
                && opt_ptr_eq(t1, t2)
                && opt_ptr_eq(i1, i2)
        }
        (
            Proc::Restrict {
                body: b1,
                labels: l1,
            },
            Proc::Restrict {
                body: b2,
                labels: l2,
            },
        ) => Arc::ptr_eq(b1, b2) && (Arc::ptr_eq(l1, l2) || l1 == l2),
        (
            Proc::Close {
                body: b1,
                resources: r1,
            },
            Proc::Close {
                body: b2,
                resources: r2,
            },
        ) => Arc::ptr_eq(b1, b2) && (Arc::ptr_eq(r1, r2) || r1 == r2),
        (
            Proc::Invoke { def: d1, args: a1 },
            Proc::Invoke { def: d2, args: a2 },
        ) => d1 == d2 && a1 == a2,
        _ => false,
    }
}

fn opt_ptr_eq(a: &Option<P>, b: &Option<P>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => Arc::ptr_eq(x, y),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    #[test]
    fn structurally_equal_terms_share_one_id() {
        let store = TermStore::new();
        let a = store.intern(&act([(cpu(), 1)], evt_send(Symbol::new("done"), 1, nil())));
        let b = store.intern(&act([(cpu(), 1)], evt_send(Symbol::new("done"), 1, nil())));
        assert_eq!(a.id(), b.id());
        assert_eq!(a.digest(), b.digest());
        assert!(Arc::ptr_eq(a.term(), b.term()));
        // nil, evt, act — three unique nodes despite six interned.
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let store = TermStore::new();
        let mut ids = std::collections::HashSet::new();
        for i in 0..50 {
            let t = store.intern(&act([(cpu(), i)], nil()));
            assert!(ids.insert(t.id()), "id reused for distinct term");
        }
        assert_eq!(store.len(), 51); // 50 act nodes + nil
    }

    #[test]
    fn canonical_terms_have_canonical_children() {
        let store = TermStore::new();
        let inner = act([(cpu(), 2)], nil());
        let outer = store.intern(&act([(cpu(), 1)], inner));
        match &**outer.term() {
            Proc::Act { next, .. } => {
                let child = store.intern(next);
                assert!(Arc::ptr_eq(next, child.term()), "child not canonical");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn interning_canonical_arc_is_a_pointer_hit() {
        let store = TermStore::new();
        let first = store.intern(&par([act([(cpu(), 1)], nil()), nil()]));
        let before = store.len();
        let again = store.intern(first.term());
        assert_eq!(first.id(), again.id());
        assert_eq!(store.len(), before);
    }

    #[test]
    fn resolve_round_trips() {
        let store = TermStore::new();
        let t = store.intern(&choice([act([(cpu(), 1)], nil()), nil()]));
        let r = store.resolve(t.id());
        assert_eq!(r.id(), t.id());
        assert_eq!(r.digest(), t.digest());
        assert!(Arc::ptr_eq(r.term(), t.term()));
    }

    #[test]
    fn all_variants_intern_and_distinguish() {
        let store = TermStore::new();
        let e = Symbol::new("e");
        let mut env = Env::new();
        let d = env.declare("D", 1);
        let terms: Vec<P> = vec![
            nil(),
            act([(cpu(), 1)], nil()),
            act_tagged([(cpu(), 1)], env.tag("t"), nil()),
            evt_send(e, 1, nil()),
            evt_recv(e, 1, nil()),
            tau(1, Some(e), nil()),
            tau(1, None, nil()),
            choice([act([(cpu(), 1)], nil()), nil()]),
            par([act([(cpu(), 1)], nil()), nil()]),
            guard(BExpr::lt(Expr::c(1), Expr::c(2)), nil()),
            scope(nil(), TimeBound::Finite(Expr::c(3)), None, None, None),
            scope(nil(), TimeBound::Infinite, Some((e, nil())), Some(nil()), Some(nil())),
            restrict(evt_send(e, 1, nil()), [e]),
            close(act([(cpu(), 1)], nil()), [cpu()]),
            invoke(d, [Expr::c(4)]),
            invoke(d, [Expr::c(5)]),
        ];
        let ids: Vec<TermId> = terms.iter().map(|t| store.intern(t).id()).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j], "terms {i} and {j} wrongly shared an id");
            }
        }
        // Re-interning structural copies reproduces every id.
        let again: Vec<TermId> = terms.iter().map(|t| store.intern(t).id()).collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn digest_mask_collisions_never_merge_distinct_terms() {
        let store = TermStore::with_digest_mask(0);
        let mut ids = std::collections::HashSet::new();
        for i in 0..40 {
            let t = store.intern(&act([(cpu(), i)], nil()));
            assert_eq!(t.digest(), 0);
            assert!(ids.insert(t.id()));
        }
        // Structural copies still find their entries through the bucket scan.
        for i in 0..40 {
            let t = store.intern(&act([(cpu(), i)], nil()));
            assert!(ids.contains(&t.id()));
        }
        assert_eq!(store.len(), 41);
    }

    #[test]
    fn concurrent_interning_converges_to_one_id_per_structure() {
        let store = TermStore::new();
        let ids: Vec<Vec<TermId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = &store;
                    s.spawn(move || {
                        (0..32)
                            .map(|i| store.intern(&act([(cpu(), i)], nil())).id())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
        assert_eq!(store.len(), 33);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn resolve_foreign_id_panics() {
        let store = TermStore::new();
        let other = TermStore::new();
        // Intern enough terms that the foreign id's slot is out of range.
        let id = other.intern(&act([(cpu(), 1)], act([(cpu(), 2)], nil()))).id();
        let _ = store.resolve(id);
    }
}
