//! Closed-form delay advance: per-shape delay derivatives over time vectors.
//!
//! [`crate::zone`] collapses forced runs into single delay steps, but its
//! bulk advance still *re-derives every quantum* through the step relation —
//! the state win without the wall-clock win. This module removes the
//! per-quantum work. The key observation (see [`crate::skeleton`]): while a
//! state is forced and timed, its *shape* is invariant and only its *time
//! vector* moves — and it moves linearly, by a constant per-quantum **delay
//! derivative** `δ` (scope limits tick down, budgets shorten, counters
//! count). The forced interval ends exactly when some vector component hits
//! a boundary value (a release instant, a timeout, an exhausted budget), so:
//!
//! * the delay bound is a **min over component slacks**
//!   `d = min_i (θ_i − v_i) / δ_i` over the moving components `i`, where
//!   `θ_i` is component `i`'s learned boundary, and
//! * the bulk advance is `intern(rebuild(shape, v + d·δ))` — O(#params),
//!   zero per-quantum re-derivation.
//!
//! # Soundness: derived from, and re-anchored to, the step relation
//!
//! Nothing here is trusted analysis of the process syntax. The first visit
//! to a shape *derives* `(δ, label)` by replaying real prioritized steps and
//! factoring the successors (`pattern_replay` — a *learning replay*); the
//! boundaries `θ_i` are learned where a replay actually observes the
//! interval end, and each is confirmed *binding* by a single-backoff probe
//! (backing that one component off one step must restore forcedness).
//! Every later closed-form advance still re-verifies against the step
//! relation at both ends of the span: the entry step and the final
//! (pre-exit → exit) step are derived concretely and compared against the
//! rebuilt terms by interned id. Any mismatch — a wrong boundary, a
//! non-linear shape, a vector off the learned lattice — falls back to the
//! learning replay, which is exactly the PR 9 semantics. Shapes that
//! *cannot* evolve linearly (a timed self-loop, conflicting derivatives,
//! conflicting boundaries) are poisoned to `ShapeEntry::NonLinear` and
//! always replay.
//!
//! With `AdvanceCache::verify` set (the default in debug builds, hence in
//! every test run), a closed-form span additionally replays **all** its unit
//! steps and asserts interned-id equality quantum by quantum — the
//! property-mode anchor the zone design demands.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::label::Label;
use crate::skeleton::{self, Factored};
use crate::step::StepSession;
use crate::store::{Interned, TermId};

/// The outcome of one [`advance`] call.
#[derive(Clone, Debug)]
pub enum Advance {
    /// A verified closed-form span: `len ≥ 2` forced timed steps, every one
    /// labelled `label`, ending in `target`. Interior states are *not*
    /// materialized; the `k`-th one is `rebuild(entry, v + k·delta)`.
    Closed {
        /// The (constant) label of every step in the span.
        label: Label,
        /// The per-quantum time-vector derivative.
        delta: Arc<Vec<i64>>,
        /// Number of quanta advanced.
        len: u64,
        /// The interned state at the end of the span.
        target: Interned,
    },
    /// Concretely replayed forced *timed* steps (≥ 1), in order. Returned on
    /// first visits to a shape (while the derivative is being learned), for
    /// non-linear shapes, and whenever a closed-form prediction fails its
    /// end checks.
    Replayed(Vec<(Label, Interned)>),
    /// The state is not at the start of a forced timed interval (it
    /// branches, deadlocks, or its single step is instantaneous).
    NotTimed,
}

/// A snapshot of the cache's counters, read by the zone explorer's
/// observability hooks.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdvanceStats {
    /// Steps served closed-form with no per-quantum derivation: delay
    /// spans advanced by their learned derivative, plus learned unit
    /// macros (boundary exits and cascade steps) applied in the vector
    /// domain by the runner.
    pub closed_form_advances: u64,
    /// Advances that had a cached shape but had to replay concretely
    /// (non-linear shape, unlearned boundary, or a failed end check).
    pub replay_fallbacks: u64,
    /// Shapes whose derivative was derived (first insert into the cache).
    pub shapes_derived: u64,
    /// Shape entries currently cached.
    pub shape_cache: u64,
}

/// A per-frozen-region variant of a linear shape: the span label plus the
/// learned boundary value of each moving component (`None` until a replay
/// has observed — and probe-confirmed — that component binding).
#[derive(Clone, Debug)]
pub(crate) struct Variant {
    pub(crate) label: Label,
    pub(crate) thresholds: Vec<Option<i64>>,
    /// Spans the vector-domain runner has served from this variant without
    /// materializing, and the serve count at which the next release-mode
    /// spot verification fires (exponential backoff; see [`crate::runner`]).
    pub(crate) serves: u64,
    pub(crate) next_verify: u64,
}

/// A shape with a consistent linear derivative.
#[derive(Debug)]
pub(crate) struct LinearShape {
    pub(crate) delta: Arc<Vec<i64>>,
    /// Keyed by the *frozen* sub-vector (values at `δ_i == 0` positions):
    /// a generic definition instantiated per task carries its constants
    /// (period, deadline) in the vector, and the boundaries depend on them.
    pub(crate) variants: HashMap<Vec<i64>, Variant>,
}

#[derive(Debug)]
pub(crate) enum ShapeEntry {
    /// The shape does not evolve linearly (timed self-loop, conflicting
    /// derivatives or boundaries): always replay.
    NonLinear,
    Linear(LinearShape),
}

/// Shapes are keyed by digest *and* hole count, so a digest collision
/// between shapes of different arity cannot mix their vectors.
pub(crate) type ShapeKey = (u64, u32);

/// The cross-state cache of per-shape delay derivatives. Shareable across
/// worker threads (`&AdvanceCache` is `Sync`); all mutation happens under
/// one mutex in short critical sections, and the learned content converges
/// to the same values regardless of interleaving (every derivation replays
/// the same deterministic step relation).
#[derive(Debug)]
pub struct AdvanceCache {
    pub(crate) shapes: Mutex<HashMap<ShapeKey, ShapeEntry>>,
    /// Learned single-step transition maps for the vector-domain forced-run
    /// engine ([`crate::runner`]).
    pub(crate) units: Mutex<HashMap<crate::runner::UnitKey, crate::runner::UnitEntry>>,
    pub(crate) verify: bool,
    pub(crate) closed: AtomicU64,
    pub(crate) fallbacks: AtomicU64,
    pub(crate) derived: AtomicU64,
}

impl Default for AdvanceCache {
    fn default() -> AdvanceCache {
        AdvanceCache::new()
    }
}

impl AdvanceCache {
    /// An empty cache. Full per-quantum verification of closed-form spans is
    /// on in debug builds (so the entire test suite runs with it) and off in
    /// release builds (where the entry/pre-exit checks remain).
    pub fn new() -> AdvanceCache {
        AdvanceCache::with_verify(cfg!(debug_assertions))
    }

    /// An empty cache with explicit verification mode. `verify = true`
    /// replays every closed-form span unit step by unit step and panics on
    /// the first divergence from the step relation.
    pub fn with_verify(verify: bool) -> AdvanceCache {
        AdvanceCache {
            shapes: Mutex::new(HashMap::new()),
            units: Mutex::new(HashMap::new()),
            verify,
            closed: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            derived: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdvanceStats {
        AdvanceStats {
            closed_form_advances: self.closed.load(Ordering::Relaxed),
            replay_fallbacks: self.fallbacks.load(Ordering::Relaxed),
            shapes_derived: self.derived.load(Ordering::Relaxed),
            shape_cache: self.shapes.lock().expect("advance cache poisoned").len() as u64,
        }
    }

    pub(crate) fn poison(&self, key: ShapeKey) {
        let mut g = self.shapes.lock().expect("advance cache poisoned");
        if g.insert(key, ShapeEntry::NonLinear).is_none() {
            self.derived.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The single prioritized successor of `t`, when there is exactly one.
pub(crate) fn unique_step(session: &StepSession<'_>, t: &Interned) -> Option<(Label, Interned)> {
    let mut steps = session.prioritized_steps(t);
    if steps.len() == 1 {
        steps.pop()
    } else {
        None
    }
}

/// `v + k·δ` componentwise, refusing on overflow.
pub(crate) fn offset(v: &[i64], delta: &[i64], k: i64) -> Option<Vec<i64>> {
    v.iter()
        .zip(delta)
        .map(|(a, d)| d.checked_mul(k).and_then(|kd| a.checked_add(kd)))
        .collect()
}

/// The frozen sub-vector of `v`: its values at the `δ_i == 0` positions.
pub(crate) fn frozen_key(delta: &[i64], v: &[i64]) -> Vec<i64> {
    delta
        .iter()
        .zip(v)
        .filter(|(d, _)| **d == 0)
        .map(|(_, x)| *x)
        .collect()
}

/// Advance `entry` along its forced timed interval, closed-form when the
/// shape's derivative is cached and verified, by learning replay otherwise.
/// Never advances more than `cap` quanta. The returned steps (closed or
/// replayed) are all forced *timed* steps; instantaneous forced steps end
/// the interval ([`Advance::NotTimed`]), exactly like [`crate::zone::delay_bound`].
pub fn advance(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    entry: &Interned,
    cap: u64,
) -> Advance {
    if cap == 0 {
        return Advance::NotTimed;
    }
    let f = session.store().shape_of(entry);
    let key = (f.digest, f.values.len() as u32);
    enum Plan {
        Derive,
        NonLinear,
        Linear {
            delta: Arc<Vec<i64>>,
            variant: Option<Variant>,
        },
    }
    let plan = {
        let g = cache.shapes.lock().expect("advance cache poisoned");
        match g.get(&key) {
            None => Plan::Derive,
            Some(ShapeEntry::NonLinear) => Plan::NonLinear,
            Some(ShapeEntry::Linear(ls)) => Plan::Linear {
                delta: ls.delta.clone(),
                variant: ls.variants.get(&frozen_key(&ls.delta, &f.values)).cloned(),
            },
        }
    };
    match plan {
        Plan::Derive => pattern_replay(session, cache, entry, &f, key, cap, None),
        Plan::NonLinear => {
            let out = timed_walk(session, entry, cap);
            if matches!(out, Advance::Replayed(_)) {
                cache.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            out
        }
        Plan::Linear { delta, variant } => {
            match try_closed(session, cache, entry, &f, cap, &delta, variant.as_ref()) {
                Some(adv) => adv,
                None => {
                    cache.fallbacks.fetch_add(1, Ordering::Relaxed);
                    pattern_replay(session, cache, entry, &f, key, cap, Some(&delta))
                }
            }
        }
    }
}

/// Attempt the closed-form span. `None` means "fall back to replay";
/// `Some(NotTimed)` means the entry is not forced-timed at all.
fn try_closed(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    entry: &Interned,
    f: &Factored,
    cap: u64,
    delta: &Arc<Vec<i64>>,
    variant: Option<&Variant>,
) -> Option<Advance> {
    let var = variant?;
    // d = min over moving components of the exact slack to their boundary.
    let mut d: u64 = cap;
    let mut any_moving = false;
    for i in 0..delta.len() {
        let di = delta[i];
        if di == 0 {
            continue;
        }
        any_moving = true;
        let th = var.thresholds[i]?;
        let diff = th.checked_sub(f.values[i])?;
        if diff == 0 || (diff < 0) != (di < 0) {
            // Already at (or somehow past) the boundary: not a span start.
            return None;
        }
        if diff % di != 0 {
            // Off the learned lattice; replay and re-learn.
            return None;
        }
        d = d.min((diff / di) as u64);
    }
    if !any_moving || d < 2 {
        // A degenerate derivative never caches as Linear; spans of 0 or 1
        // quanta are cheaper replayed than end-checked.
        return None;
    }

    let store = session.store();

    // Entry check: the real first step must match the rebuilt prediction.
    let (l1, t1) = match unique_step(session, entry) {
        Some(s) => s,
        None => return Some(Advance::NotTimed),
    };
    if !l1.is_timed() {
        return Some(Advance::NotTimed);
    }
    if l1 != var.label {
        return None;
    }
    let v1 = offset(&f.values, delta, 1)?;
    let p1 = skeleton::rebuild(entry.term(), &v1)?;
    let t1r = session.intern(&p1);
    if t1r.id() != t1.id() {
        return None;
    }
    store.note_shape(
        &t1,
        Arc::new(Factored {
            digest: f.digest,
            values: v1,
        }),
    );

    // Pre-exit check: the real step out of the second-to-last span state
    // must land exactly on the rebuilt exit. This is what catches a learned
    // boundary that is wrong for this entry region — an overshot span would
    // have to pass a concrete derivation at its far end.
    let v_pre = offset(&f.values, delta, (d - 1) as i64)?;
    let v_end = offset(&f.values, delta, d as i64)?;
    let s_pre = if d == 2 {
        t1
    } else {
        let p_pre = skeleton::rebuild(entry.term(), &v_pre)?;
        let s = session.intern(&p_pre);
        store.note_shape(
            &s,
            Arc::new(Factored {
                digest: f.digest,
                values: v_pre,
            }),
        );
        s
    };
    let p_end = skeleton::rebuild(entry.term(), &v_end)?;
    let s_end = session.intern(&p_end);
    store.note_shape(
        &s_end,
        Arc::new(Factored {
            digest: f.digest,
            values: v_end,
        }),
    );
    let (l_pre, t_pre) = unique_step(session, &s_pre)?;
    if !l_pre.is_timed() || l_pre != var.label || t_pre.id() != s_end.id() {
        return None;
    }

    if cache.verify {
        // Property mode: the span *is* its unit steps, quantum by quantum.
        let mut cur = entry.clone();
        for k in 1..=d {
            let (l, t) = unique_step(session, &cur)
                .unwrap_or_else(|| panic!("closed-form span diverged: state at quantum {k} of {d} is not forced"));
            assert!(
                l.is_timed() && l == var.label,
                "closed-form span diverged: label mismatch at quantum {k} of {d}"
            );
            let vk = offset(&f.values, delta, k as i64).expect("verified span overflowed");
            let pk = skeleton::rebuild(entry.term(), &vk).expect("verified span must rebuild");
            assert_eq!(
                t.id(),
                session.intern(&pk).id(),
                "closed-form span diverged from the step relation at quantum {k} of {d}"
            );
            cur = t;
        }
        assert_eq!(cur.id(), s_end.id(), "closed-form span endpoint diverged");
    }

    cache.closed.fetch_add(1, Ordering::Relaxed);
    Some(Advance::Closed {
        label: var.label.clone(),
        delta: delta.clone(),
        len: d,
        target: s_end,
    })
}

/// Learning replay: concrete forced timed steps that simultaneously derive
/// (or re-check) the shape's derivative and, when the interval's end is
/// observed, learn the binding components' boundary values.
fn pattern_replay(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    entry: &Interned,
    f: &Factored,
    key: ShapeKey,
    cap: u64,
    cached_delta: Option<&Arc<Vec<i64>>>,
) -> Advance {
    let store = session.store();
    let (l1, t1) = match unique_step(session, entry) {
        Some(s) => s,
        None => return Advance::NotTimed,
    };
    if !l1.is_timed() {
        return Advance::NotTimed;
    }
    let f1 = store.shape_of(&t1);
    if f1.digest != f.digest || f1.values.len() != f.values.len() {
        // The very first step leaves the shape: `entry` is itself a
        // boundary state. With a cached derivative we can still learn which
        // components bind here.
        if let Some(delta) = cached_delta {
            learn_thresholds(session, cache, key, entry, &f.values, delta);
        }
        return Advance::Replayed(vec![(l1, t1)]);
    }
    let delta: Vec<i64> = f1
        .values
        .iter()
        .zip(&f.values)
        .map(|(a, b)| a.wrapping_sub(*b))
        .collect();
    if delta.iter().all(|&d| d == 0) {
        // A timed self-transition within one shape (an idle cycle): no
        // linear progress to extrapolate.
        cache.poison(key);
        return Advance::Replayed(vec![(l1, t1)]);
    }
    if let Some(dc) = cached_delta {
        if **dc != delta {
            // The same shape stepped with a different derivative than the
            // cached one: genuinely non-linear.
            cache.poison(key);
            return Advance::Replayed(vec![(l1, t1)]);
        }
    }
    // Install (or re-check) the Linear entry and this frozen region's label.
    let frozen = frozen_key(&delta, &f.values);
    {
        let mut g = cache.shapes.lock().expect("advance cache poisoned");
        match g.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                let mut variants = HashMap::new();
                variants.insert(
                    frozen.clone(),
                    Variant {
                        label: l1.clone(),
                        thresholds: vec![None; f.values.len()],
                        serves: 0,
                        next_verify: 1,
                    },
                );
                slot.insert(ShapeEntry::Linear(LinearShape {
                    delta: Arc::new(delta.clone()),
                    variants,
                }));
                cache.derived.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => match slot.get_mut() {
                ShapeEntry::NonLinear => {
                    // Poisoned by a concurrent observation; stay poisoned.
                    drop(g);
                    let mut steps = vec![(l1, t1)];
                    extend_timed_walk(session, entry, &mut steps, cap);
                    return Advance::Replayed(steps);
                }
                ShapeEntry::Linear(ls) => {
                    if *ls.delta != delta {
                        slot.insert(ShapeEntry::NonLinear);
                        return Advance::Replayed(vec![(l1, t1)]);
                    }
                    let var = ls.variants.entry(frozen.clone()).or_insert_with(|| Variant {
                        label: l1.clone(),
                        thresholds: vec![None; f.values.len()],
                        serves: 0,
                        next_verify: 1,
                    });
                    if var.label != l1 {
                        slot.insert(ShapeEntry::NonLinear);
                        return Advance::Replayed(vec![(l1, t1)]);
                    }
                }
            },
        }
    }
    // Walk the interval concretely, verifying the linear pattern at every
    // quantum. In-pattern states are pairwise distinct (the vector strictly
    // moves), so no cycle guard is needed here.
    let mut steps = vec![(l1.clone(), t1.clone())];
    let mut cur = t1;
    let mut v_cur = f1.values.clone();
    let mut boundary = None;
    while (steps.len() as u64) < cap {
        let Some((l, t)) = unique_step(session, &cur) else {
            boundary = Some((cur.clone(), v_cur.clone()));
            break;
        };
        let Some(v_next) = offset(&v_cur, &delta, 1) else {
            break;
        };
        let in_pattern = l.is_timed() && l == l1 && {
            let ft = store.shape_of(&t);
            ft.digest == f.digest && ft.values == v_next
        };
        if !in_pattern {
            boundary = Some((cur.clone(), v_cur.clone()));
            break;
        }
        steps.push((l, t.clone()));
        cur = t;
        v_cur = v_next;
    }
    if let Some((state, w)) = boundary {
        learn_thresholds(session, cache, key, &state, &w, &Arc::new(delta));
    }
    Advance::Replayed(steps)
}

/// At an observed interval end `w`, identify which moving components are
/// *binding* — backing just that component off one quantum restores
/// forcedness — and record their boundary values for the frozen region.
/// Conflicting observations poison the shape.
fn learn_thresholds(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    key: ShapeKey,
    state: &Interned,
    w: &[i64],
    delta: &Arc<Vec<i64>>,
) {
    // Fetch the variant's label (the span label the probe must reproduce).
    // If some already-learned boundary explains this interval end — a moving
    // component sitting exactly at its recorded θ — there is nothing new to
    // learn and the (step-relation) probes below are skipped. Boundary
    // states recur once per span, so without this check a hot shape would
    // re-probe every moving component at every single span end.
    let label = {
        let g = cache.shapes.lock().expect("advance cache poisoned");
        match g.get(&key) {
            Some(ShapeEntry::Linear(ls)) if *ls.delta == **delta => {
                match ls.variants.get(&frozen_key(delta, w)) {
                    Some(v) => {
                        let explained = v
                            .thresholds
                            .iter()
                            .zip(&**delta)
                            .zip(w)
                            .any(|((th, d), x)| *d != 0 && *th == Some(*x));
                        if explained {
                            return;
                        }
                        v.label.clone()
                    }
                    None => return,
                }
            }
            _ => return,
        }
    };
    let mut learned: Vec<(usize, i64)> = Vec::new();
    for i in 0..delta.len() {
        if delta[i] == 0 {
            continue;
        }
        let Some(v_back) = back_off(w, delta, i) else {
            continue;
        };
        if conforms(session, state, &v_back, delta, &label) {
            learned.push((i, w[i]));
        }
    }
    if learned.is_empty() {
        return;
    }
    let mut g = cache.shapes.lock().expect("advance cache poisoned");
    if let Some(slot) = g.get_mut(&key) {
        let poison = match slot {
            ShapeEntry::Linear(ls) if *ls.delta == **delta => {
                match ls.variants.get_mut(&frozen_key(delta, w)) {
                    Some(var) => {
                        let mut conflict = false;
                        for (i, th) in learned {
                            match var.thresholds[i] {
                                Some(existing) if existing != th => conflict = true,
                                _ => var.thresholds[i] = Some(th),
                            }
                        }
                        conflict
                    }
                    None => false,
                }
            }
            _ => false,
        };
        if poison {
            *slot = ShapeEntry::NonLinear;
        }
    }
}

/// `w` with component `i` backed off one quantum.
fn back_off(w: &[i64], delta: &[i64], i: usize) -> Option<Vec<i64>> {
    let mut v = w.to_vec();
    v[i] = v[i].checked_sub(delta[i])?;
    Some(v)
}

/// Does the state at vector `v` (rebuilt on `template`) make exactly one
/// prioritized step, timed, labelled `label`, to the state at `v + δ`?
fn conforms(
    session: &StepSession<'_>,
    template: &Interned,
    v: &[i64],
    delta: &[i64],
    label: &Label,
) -> bool {
    let Some(p) = skeleton::rebuild(template.term(), v) else {
        return false;
    };
    let probe = session.intern(&p);
    let Some((l, t)) = unique_step(session, &probe) else {
        return false;
    };
    if !l.is_timed() || l != *label {
        return false;
    }
    let Some(v_next) = offset(v, delta, 1) else {
        return false;
    };
    let Some(p_next) = skeleton::rebuild(template.term(), &v_next) else {
        return false;
    };
    t.id() == session.intern(&p_next).id()
}

/// Plain forced-timed walk (no factoring): the path for poisoned shapes.
fn timed_walk(session: &StepSession<'_>, entry: &Interned, cap: u64) -> Advance {
    let (l1, t1) = match unique_step(session, entry) {
        Some(s) => s,
        None => return Advance::NotTimed,
    };
    if !l1.is_timed() {
        return Advance::NotTimed;
    }
    let mut steps = vec![(l1, t1)];
    extend_timed_walk(session, entry, &mut steps, cap);
    Advance::Replayed(steps)
}

/// Extend `steps` with further forced timed steps, up to `cap` total,
/// stopping (like [`crate::zone::forced_run`]) before extending from a state
/// already visited.
fn extend_timed_walk(
    session: &StepSession<'_>,
    entry: &Interned,
    steps: &mut Vec<(Label, Interned)>,
    cap: u64,
) {
    let mut seen: HashSet<TermId> = HashSet::new();
    seen.insert(entry.id());
    loop {
        let cur = steps.last().expect("non-empty").1.clone();
        if steps.len() as u64 >= cap || !seen.insert(cur.id()) {
            return;
        }
        match unique_step(session, &cur) {
            Some((l, t)) if l.is_timed() => steps.push((l, t)),
            _ => return,
        }
    }
}

/// Closed-form counterpart of [`crate::zone::delay_bound`]: the largest
/// `d ≥ 1` (up to `cap`) such that the next `d` quanta of `t` are forced
/// timed steps, computed through the derivative cache. Agrees with the
/// replay bound exactly, including the saturate-at-`cap` behaviour of
/// forced idle cycles.
pub fn delay_bound(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    t: &Interned,
    cap: u64,
) -> u64 {
    let mut total = 0u64;
    let mut cur = t.clone();
    while total < cap {
        match advance(session, cache, &cur, cap - total) {
            Advance::Closed { len, target, .. } => {
                total += len;
                cur = target;
            }
            Advance::Replayed(steps) => {
                total += steps.len() as u64;
                cur = steps.into_iter().last().expect("non-empty").1;
            }
            Advance::NotTimed => return total,
        }
    }
    cap
}

/// Closed-form counterpart of [`crate::zone::step_delay`]: advance `t` by
/// exactly `d` forced timed quanta, or `None` when forcedness breaks first.
/// Produces the same interned term (`TermId` and all) the unit walk reaches.
pub fn step_delay(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    t: &Interned,
    d: u64,
) -> Option<Interned> {
    let mut remaining = d;
    let mut cur = t.clone();
    while remaining > 0 {
        match advance(session, cache, &cur, remaining) {
            Advance::Closed { len, target, .. } => {
                remaining -= len;
                cur = target;
            }
            Advance::Replayed(steps) => {
                remaining -= steps.len() as u64;
                cur = steps.into_iter().last().expect("non-empty").1;
            }
            Advance::NotTimed => return None,
        }
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::expr::Expr;
    use crate::step::MemoConfig;
    use crate::store::TermStore;
    use crate::symbol::{Res, Symbol};
    use crate::term::{act, evt_send, invoke, nil, scope, TimeBound};
    use crate::zone;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    fn session(env: &Env) -> StepSession<'_> {
        StepSession::new(env, Arc::new(TermStore::new()), MemoConfig::default())
    }

    /// An idle loop clipped by an n-quantum scope: the canonical
    /// "watchdog counting to a release instant" shape.
    fn watchdog(env: &mut Env, n: i64) -> crate::term::P {
        let idle = env.declare("Idle", 0);
        env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
        scope(
            invoke(idle, []),
            TimeBound::Finite(Expr::c(n)),
            None,
            Some(nil()),
            None,
        )
    }

    #[test]
    fn derivative_is_learned_then_advances_closed_form() {
        let mut env = Env::new();
        let p = watchdog(&mut env, 40);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t = s.intern(&p);
        // First visit: learning replay, full length.
        match advance(&s, &cache, &t, 1024) {
            Advance::Replayed(steps) => assert_eq!(steps.len(), 40),
            other => panic!("first visit must replay, got {other:?}"),
        }
        let st = cache.stats();
        assert_eq!(st.shapes_derived, 1);
        assert_eq!(st.closed_form_advances, 0);
        // Second visit (same shape, different vector): closed form.
        let f = s.store().shape_of(&t);
        let p9 = skeleton::rebuild(t.term(), &{
            let mut v = f.values.clone();
            v[0] = 9; // 9 quanta left on the watchdog
            v
        })
        .unwrap();
        let t9 = s.intern(&p9);
        match advance(&s, &cache, &t9, 1024) {
            Advance::Closed { len, target, .. } => {
                assert_eq!(len, 9);
                assert_eq!(
                    target.id(),
                    zone::step_delay(&s, &t9, 9).expect("replay agrees").id()
                );
            }
            other => panic!("second visit must go closed-form, got {other:?}"),
        }
        assert_eq!(cache.stats().closed_form_advances, 1);
    }

    #[test]
    fn closed_bound_and_step_agree_with_replay_on_the_watchdog() {
        let mut env = Env::new();
        let p = watchdog(&mut env, 17);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t = s.intern(&p);
        assert_eq!(delay_bound(&s, &cache, &t, 1024), zone::delay_bound(&s, &t, 1024));
        for d in [0u64, 1, 2, 16, 17] {
            assert_eq!(
                step_delay(&s, &cache, &t, d).map(|x| x.id()),
                zone::step_delay(&s, &t, d).map(|x| x.id()),
                "d = {d}"
            );
        }
        assert!(step_delay(&s, &cache, &t, 18).is_none());
    }

    #[test]
    fn advance_stops_exactly_at_the_release_instant() {
        // Boundary satellite case: the span must end *at* the scope expiry,
        // never one quantum past it, from every entry offset.
        let mut env = Env::new();
        let p = watchdog(&mut env, 30);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t = s.intern(&p);
        // Learn the shape.
        let _ = advance(&s, &cache, &t, 1024);
        let f = s.store().shape_of(&t);
        for left in [2i64, 3, 11, 29] {
            let mut v = f.values.clone();
            v[0] = left;
            let entry = s.intern(&skeleton::rebuild(t.term(), &v).unwrap());
            assert_eq!(
                delay_bound(&s, &cache, &entry, 1024),
                left as u64,
                "watchdog with {left} quanta left"
            );
            assert!(step_delay(&s, &cache, &entry, left as u64 + 1).is_none());
        }
    }

    #[test]
    fn zero_delay_is_the_identity() {
        let env = Env::new();
        let s = session(&env);
        let cache = AdvanceCache::new();
        let dead = s.intern(&nil());
        assert_eq!(step_delay(&s, &cache, &dead, 0).unwrap().id(), dead.id());
        assert_eq!(delay_bound(&s, &cache, &dead, 1024), 0);
    }

    #[test]
    fn nonlinear_self_loop_is_poisoned_and_counted() {
        // An idle cycle: timed, forced, but the vector does not move.
        let mut env = Env::new();
        let idle = env.declare("Idle", 0);
        env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t = s.intern(&invoke(idle, []));
        // First visit derives… and immediately poisons.
        let first = advance(&s, &cache, &t, 64);
        assert!(matches!(first, Advance::Replayed(_)));
        // Second visit must take the replay-fallback path and count it.
        let second = advance(&s, &cache, &t, 64);
        assert!(matches!(second, Advance::Replayed(_)));
        let st = cache.stats();
        assert!(st.replay_fallbacks >= 1, "fallback not counted: {st:?}");
        assert_eq!(st.closed_form_advances, 0);
        // And the bound still saturates like the replay engine's.
        assert_eq!(delay_bound(&s, &cache, &t, 77), zone::delay_bound(&s, &t, 77));
    }

    #[test]
    fn instantaneous_steps_end_the_interval() {
        let env = Env::new();
        let s = session(&env);
        let cache = AdvanceCache::new();
        let done = Symbol::new("done");
        let p = s.intern(&act(
            [(cpu(), 1)],
            act([(cpu(), 1)], evt_send(done, 1, act([(cpu(), 1)], nil()))),
        ));
        assert_eq!(delay_bound(&s, &cache, &p, 1024), 2);
        assert_eq!(zone::delay_bound(&s, &p, 1024), 2);
    }

    #[test]
    fn spans_are_capped() {
        let mut env = Env::new();
        let p = watchdog(&mut env, 100);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t = s.intern(&p);
        let _ = advance(&s, &cache, &t, 1024); // learn
        let f = s.store().shape_of(&t);
        let mut v = f.values.clone();
        v[0] = 90;
        let entry = s.intern(&skeleton::rebuild(t.term(), &v).unwrap());
        match advance(&s, &cache, &entry, 10) {
            Advance::Closed { len, .. } => assert_eq!(len, 10),
            other => panic!("expected a capped closed span, got {other:?}"),
        }
    }
}
