//! Pretty-printing of terms and labels in a VERSA-like surface syntax.
//!
//! Terms print as, e.g.:
//!
//! ```text
//! {(cpu,1),(bus,1)}:(done!,1).Simple
//! ```
//!
//! Printing needs the [`Env`] to resolve definition names and tags, so the
//! entry points are [`Env::display_proc`] and [`Env::display_label`], which
//! return cheap wrapper values implementing [`std::fmt::Display`].

use std::fmt;

use crate::env::Env;
use crate::label::{Dir, Label};
use crate::term::{EvKind, Proc, TimeBound, P};

/// Displayable wrapper around a process term.
pub struct ProcDisplay<'a> {
    env: &'a Env,
    p: &'a Proc,
}

/// Displayable wrapper around a transition label.
pub struct LabelDisplay<'a> {
    env: &'a Env,
    l: &'a Label,
}

impl Env {
    /// Display a process term using this environment's names.
    pub fn display_proc<'a>(&'a self, p: &'a P) -> ProcDisplay<'a> {
        ProcDisplay { env: self, p }
    }

    /// Display a label using this environment's names.
    pub fn display_label<'a>(&'a self, l: &'a Label) -> LabelDisplay<'a> {
        LabelDisplay { env: self, l }
    }
}

fn fmt_proc(env: &Env, p: &Proc, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        Proc::Nil => write!(f, "NIL"),
        Proc::Act { action, tag, next } => {
            write!(f, "{{")?;
            for (i, (r, e)) in action.uses.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "({r},{e:?})")?;
            }
            write!(f, "}}")?;
            if let Some(t) = tag {
                write!(f, "[#{}]", env.tag_text(*t))?;
            }
            write!(f, ":")?;
            fmt_proc(env, next, f)
        }
        Proc::Evt { event, next } => {
            match &event.kind {
                EvKind::Send(l) => write!(f, "({l}!,{:?})", event.prio)?,
                EvKind::Recv(l) => write!(f, "({l}?,{:?})", event.prio)?,
                EvKind::Tau(Some(l)) => write!(f, "(tau@{l},{:?})", event.prio)?,
                EvKind::Tau(None) => write!(f, "(tau,{:?})", event.prio)?,
            }
            write!(f, ".")?;
            fmt_proc(env, next, f)
        }
        Proc::Choice(alts) => {
            write!(f, "(")?;
            for (i, a) in alts.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                fmt_proc(env, a, f)?;
            }
            write!(f, ")")
        }
        Proc::Par(comps) => {
            write!(f, "(")?;
            for (i, c) in comps.iter().enumerate() {
                if i > 0 {
                    write!(f, " || ")?;
                }
                fmt_proc(env, c, f)?;
            }
            write!(f, ")")
        }
        Proc::Guard { cond, then } => {
            write!(f, "({cond:?} -> ")?;
            fmt_proc(env, then, f)?;
            write!(f, ")")
        }
        Proc::Scope {
            body,
            limit,
            exception,
            timeout,
            interrupt,
        } => {
            write!(f, "[")?;
            fmt_proc(env, body, f)?;
            write!(f, "]Δ")?;
            match limit {
                TimeBound::Finite(e) => write!(f, "^{e:?}")?,
                TimeBound::Infinite => write!(f, "^∞")?,
            }
            if let Some((l, h)) = exception {
                write!(f, "_(exc {l} -> ")?;
                fmt_proc(env, h, f)?;
                write!(f, ")")?;
            }
            if let Some(t) = timeout {
                write!(f, "(to -> ")?;
                fmt_proc(env, t, f)?;
                write!(f, ")")?;
            }
            if let Some(i) = interrupt {
                write!(f, "(int -> ")?;
                fmt_proc(env, i, f)?;
                write!(f, ")")?;
            }
            Ok(())
        }
        Proc::Restrict { body, labels } => {
            fmt_proc(env, body, f)?;
            write!(f, " \\ {{")?;
            for (i, l) in labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, "}}")
        }
        Proc::Close { body, resources } => {
            write!(f, "[")?;
            fmt_proc(env, body, f)?;
            write!(f, "]_{{")?;
            for (i, r) in resources.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{r}")?;
            }
            write!(f, "}}")
        }
        Proc::Invoke { def, args } => {
            write!(f, "{}", env.def(*def).name)?;
            if !args.is_empty() {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for ProcDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_proc(self.env, self.p, f)
    }
}

impl fmt::Display for LabelDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.l {
            Label::A(a) => {
                write!(f, "{{")?;
                for (i, (r, p)) in a.uses.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "({r},{p})")?;
                }
                write!(f, "}}")?;
                if !a.tags.is_empty() {
                    write!(f, " [")?;
                    for (i, t) in a.tags.iter().enumerate() {
                        if i > 0 {
                            write!(f, "; ")?;
                        }
                        write!(f, "{}", self.env.tag_text(*t))?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Label::E { label, dir, prio } => match dir {
                Dir::Send => write!(f, "({label}!,{prio})"),
                Dir::Recv => write!(f, "({label}?,{prio})"),
            },
            Label::Tau { prio, via } => match via {
                Some(l) => write!(f, "(tau@{l},{prio})"),
                None => write!(f, "(tau,{prio})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Res, Symbol};
    use crate::term::{act, evt_send, invoke, nil};
    use crate::Expr;

    #[test]
    fn simple_process_prints_like_the_paper() {
        let mut env = Env::new();
        let cpu = Res::new("cpu");
        let bus = Res::new("bus");
        let done = Symbol::new("done");
        let simple = env.declare("Simple", 0);
        env.set_body(
            simple,
            act(
                [(cpu, 1)],
                act([(cpu, 1), (bus, 1)], evt_send(done, 1, invoke(simple, []))),
            ),
        );
        let p = invoke(simple, []);
        assert_eq!(env.display_proc(&p).to_string(), "Simple");
        let body = env.instantiate(simple, &[]).unwrap();
        let s = env.display_proc(&body).to_string();
        assert!(s.contains("(cpu,1)"), "got: {s}");
        assert!(s.contains("(done!,1)"), "got: {s}");
        assert!(s.ends_with("Simple"), "got: {s}");
    }

    #[test]
    fn labels_print_in_versa_notation() {
        let env = Env::new();
        let l = Label::E {
            label: Symbol::new("dispatch"),
            dir: crate::label::Dir::Recv,
            prio: 2,
        };
        assert_eq!(env.display_label(&l).to_string(), "(dispatch?,2)");
        let t = Label::Tau {
            prio: 3,
            via: Some(Symbol::new("done")),
        };
        assert_eq!(env.display_label(&t).to_string(), "(tau@done,3)");
    }

    #[test]
    fn all_operators_have_displays() {
        let mut env = Env::new();
        let cpu = Res::new("pp_cpu");
        let e = Symbol::new("pp_ev");
        let d = env.define("PPX", 1, crate::term::nil());
        let term = crate::term::restrict(
            crate::term::close(
                crate::term::par([
                    crate::term::scope(
                        crate::term::guard(
                            crate::BExpr::lt(crate::Expr::c(1), crate::Expr::c(2)),
                            crate::term::act([(cpu, 1)], crate::term::nil()),
                        ),
                        crate::term::TimeBound::Finite(crate::Expr::c(5)),
                        Some((e, crate::term::nil())),
                        Some(crate::term::nil()),
                        Some(crate::term::evt_recv(e, 1, crate::term::nil())),
                    ),
                    crate::term::tau(2, Some(e), crate::term::invoke(d, [crate::Expr::c(7)])),
                ]),
                [cpu],
            ),
            [e],
        );
        let text = env.display_proc(&term).to_string();
        for needle in ["Δ^5", "exc pp_ev", "(to ->", "(int ->", "||", "tau@pp_ev", "PPX(7)", "\\ {pp_ev}", "]_{pp_cpu}", "(1 < 2) ->"] {
            assert!(text.contains(needle), "missing {needle} in: {text}");
        }
        // Infinite scopes print too.
        let inf = crate::term::scope(
            crate::term::nil(),
            crate::term::TimeBound::Infinite,
            None,
            None,
            None,
        );
        assert!(env.display_proc(&inf).to_string().contains("Δ^∞"));
    }

    #[test]
    fn action_labels_show_tags() {
        let mut env = Env::new();
        let t = env.tag("thread X computes");
        let a = crate::label::GAction {
            uses: Box::new([(Res::new("pp_r"), 3)]),
            tags: Box::new([t]),
        };
        let l = Label::A(std::sync::Arc::new(a));
        let text = env.display_label(&l).to_string();
        assert!(text.contains("(pp_r,3)"), "{text}");
        assert!(text.contains("thread X computes"), "{text}");
    }

    #[test]
    fn nil_and_invocation_args_print() {
        let mut env = Env::new();
        let d = env.declare("Compute", 2);
        env.set_body(d, nil());
        let p = invoke(d, [Expr::c(1), Expr::c(2)]);
        assert_eq!(env.display_proc(&p).to_string(), "Compute(1,2)");
        assert_eq!(env.display_proc(&nil()).to_string(), "NIL");
    }
}
