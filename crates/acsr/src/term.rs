//! The ACSR process term language.
//!
//! The constructors mirror the operators used in the paper (§3):
//!
//! * `NIL` — the deadlocked process (no steps at all). Because time progress is
//!   global, a `NIL` component blocks time for the entire parallel composition;
//!   this is exactly how the translation of §4–5 turns a deadline violation
//!   into a model-wide deadlock.
//! * **Timed action prefix** `A : P` — performs the set of
//!   `(resource, priority)` accesses `A` for one quantum, then behaves as `P`.
//!   The empty action `{}` is an *idling* step.
//! * **Event prefix** `(e!, p).P` / `(e?, p).P` / `(τ, p).P` — instantaneous
//!   communication.
//! * **Choice** `P + Q` — resolved by the first step, timed or instantaneous.
//! * **Parallel** `P ∥ Q` — events interleave or synchronise; timed actions
//!   must be taken by *all* components simultaneously with disjoint resources.
//! * **Temporal scope** `P Δᵗ_a (Q, R, S)` — `P` executes inside the scope; an
//!   *exception* (output event `a`) transfers control to `Q`; a *timeout* after
//!   `t` quanta transfers control to `R`; the *interrupt* handler `S` may take
//!   over at any moment (§3, Fig. 3).
//! * **Restriction** `P \ F` — events with a label in `F` may only occur as
//!   internal synchronisations.
//! * **Resource closure** `[P]_I` — every timed action of `P` is extended with
//!   the unused resources of `I` at priority 0, modelling exclusive ownership.
//! * **Invocation** `N(e₁, …, eₖ)` — parameterized recursion through the
//!   definitions of an [`Env`](crate::env::Env).
//! * **Guard** `(b → P)` — behaves as `P` when the boolean expression `b`
//!   evaluates to true, as `NIL` otherwise (used heavily by Fig. 5).
//!
//! Terms double as *templates* (inside definitions, where expressions may
//! reference parameters) and as *states* (ground terms, all expressions
//! constant). [`subst`] instantiates a template with concrete arguments.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::env::{DefId, TagId};
use crate::expr::{BExpr, EvalError, Expr};
use crate::symbol::{Res, Symbol};

/// A reference-counted process term. States reachable during exploration share
/// structure through these pointers.
pub type P = Arc<Proc>;

/// A timed-action template: a set of resource accesses whose priorities are
/// expressions over the enclosing definition's parameters.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ActionT {
    /// `(resource, priority expression)` pairs. Kept in insertion order;
    /// ground evaluation sorts and checks for duplicates.
    pub uses: Vec<(Res, Expr)>,
}

/// The kind of an event prefix.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum EvKind {
    /// Output event `e!`.
    Send(Symbol),
    /// Input event `e?`.
    Recv(Symbol),
    /// Internal step `τ` (optionally remembering the event name that produced
    /// it, written `τ@name` in the paper).
    Tau(Option<Symbol>),
}

/// An event-prefix template.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventT {
    /// Send / receive / internal.
    pub kind: EvKind,
    /// Priority of the communication step.
    pub prio: Expr,
}

/// The time bound of a temporal scope.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TimeBound {
    /// The scope times out after this many quanta.
    Finite(Expr),
    /// The scope never times out (exception / interrupt exits only).
    Infinite,
}

/// An ACSR process term. See the module documentation for the operator
/// glossary; construction normally goes through the free functions
/// ([`act`], [`evt_send`], [`choice`], [`par`], [`scope`], …).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Proc {
    /// The deadlocked process: no transitions, blocks global time.
    Nil,
    /// Timed action prefix `A : next`.
    Act {
        /// The resource accesses performed in this quantum.
        action: ActionT,
        /// Optional provenance tag surfaced on composed transition labels;
        /// used by the AADL translation to attribute quanta to components.
        tag: Option<TagId>,
        /// Continuation.
        next: P,
    },
    /// Event prefix `(e, p) . next`.
    Evt {
        /// The communication performed.
        event: EventT,
        /// Continuation.
        next: P,
    },
    /// n-ary choice, resolved by the first step of any alternative.
    Choice(Vec<P>),
    /// n-ary parallel composition.
    Par(Vec<P>),
    /// Guarded process `(cond → then)`; behaves as `NIL` when `cond` is false.
    Guard {
        /// The boolean guard over the enclosing definition's parameters.
        cond: BExpr,
        /// The guarded continuation.
        then: P,
    },
    /// Temporal scope `body Δ^limit_a (exception, timeout, interrupt)`.
    Scope {
        /// The process executing inside the scope.
        body: P,
        /// Remaining time before the timeout exit.
        limit: TimeBound,
        /// `(label, handler)`: when `body` performs the event `label` (in
        /// either direction — skeletons *send* their exit event, dispatchers
        /// *receive* it), the scope exits to `handler` (the *exception* exit —
        /// the white-circle exit point in the paper's figures).
        exception: Option<(Symbol, P)>,
        /// Continuation taken when the time bound elapses.
        timeout: Option<P>,
        /// Handler that may take over (by performing any of its initial steps)
        /// at any moment while the scope is active.
        interrupt: Option<P>,
    },
    /// Event restriction `body \ labels`.
    Restrict {
        /// The restricted process.
        body: P,
        /// Labels that may only synchronise internally.
        labels: Arc<BTreeSet<Symbol>>,
    },
    /// Resource closure `[body]_resources`.
    Close {
        /// The closed process.
        body: P,
        /// Resources owned by the process.
        resources: Arc<BTreeSet<Res>>,
    },
    /// Invocation of a (possibly parameterized) process definition.
    Invoke {
        /// The definition being invoked.
        def: DefId,
        /// Argument expressions, evaluated at unfolding time.
        args: Vec<Expr>,
    },
}

// ---------------------------------------------------------------------------
// Smart constructors
// ---------------------------------------------------------------------------

/// The deadlocked process `NIL`.
pub fn nil() -> P {
    Arc::new(Proc::Nil)
}

/// Timed action prefix `{(r₁,p₁),…} : next`.
pub fn act<I, E>(uses: I, next: P) -> P
where
    I: IntoIterator<Item = (Res, E)>,
    E: Into<Expr>,
{
    Arc::new(Proc::Act {
        action: ActionT {
            uses: uses.into_iter().map(|(r, e)| (r, e.into())).collect(),
        },
        tag: None,
        next,
    })
}

/// Timed action prefix carrying a provenance tag.
pub fn act_tagged<I, E>(uses: I, tag: TagId, next: P) -> P
where
    I: IntoIterator<Item = (Res, E)>,
    E: Into<Expr>,
{
    Arc::new(Proc::Act {
        action: ActionT {
            uses: uses.into_iter().map(|(r, e)| (r, e.into())).collect(),
        },
        tag: Some(tag),
        next,
    })
}

/// Output-event prefix `(label!, prio) . next`.
pub fn evt_send(label: Symbol, prio: impl Into<Expr>, next: P) -> P {
    Arc::new(Proc::Evt {
        event: EventT {
            kind: EvKind::Send(label),
            prio: prio.into(),
        },
        next,
    })
}

/// Input-event prefix `(label?, prio) . next`.
pub fn evt_recv(label: Symbol, prio: impl Into<Expr>, next: P) -> P {
    Arc::new(Proc::Evt {
        event: EventT {
            kind: EvKind::Recv(label),
            prio: prio.into(),
        },
        next,
    })
}

/// Internal-step prefix `(τ, prio) . next`.
pub fn tau(prio: impl Into<Expr>, via: Option<Symbol>, next: P) -> P {
    Arc::new(Proc::Evt {
        event: EventT {
            kind: EvKind::Tau(via),
            prio: prio.into(),
        },
        next,
    })
}

/// n-ary choice `P₁ + P₂ + …`.
pub fn choice(alts: impl IntoIterator<Item = P>) -> P {
    let alts: Vec<P> = alts.into_iter().collect();
    match alts.len() {
        0 => nil(),
        1 => alts.into_iter().next().expect("len checked"),
        _ => Arc::new(Proc::Choice(alts)),
    }
}

/// n-ary parallel composition `P₁ ∥ P₂ ∥ …`.
pub fn par(comps: impl IntoIterator<Item = P>) -> P {
    let comps: Vec<P> = comps.into_iter().collect();
    match comps.len() {
        0 => nil(),
        1 => comps.into_iter().next().expect("len checked"),
        _ => Arc::new(Proc::Par(comps)),
    }
}

/// Guarded process `(cond → then)`.
pub fn guard(cond: BExpr, then: P) -> P {
    Arc::new(Proc::Guard { cond, then })
}

/// Temporal scope `body Δ^limit_a (exception, timeout, interrupt)`.
pub fn scope(
    body: P,
    limit: TimeBound,
    exception: Option<(Symbol, P)>,
    timeout: Option<P>,
    interrupt: Option<P>,
) -> P {
    Arc::new(Proc::Scope {
        body,
        limit,
        exception,
        timeout,
        interrupt,
    })
}

/// Event restriction `body \ labels`.
pub fn restrict(body: P, labels: impl IntoIterator<Item = Symbol>) -> P {
    Arc::new(Proc::Restrict {
        body,
        labels: Arc::new(labels.into_iter().collect()),
    })
}

/// Resource closure `[body]_resources`.
pub fn close(body: P, resources: impl IntoIterator<Item = Res>) -> P {
    Arc::new(Proc::Close {
        body,
        resources: Arc::new(resources.into_iter().collect()),
    })
}

/// Invocation `def(args…)`.
pub fn invoke(def: DefId, args: impl IntoIterator<Item = Expr>) -> P {
    Arc::new(Proc::Invoke {
        def,
        args: args.into_iter().collect(),
    })
}

// ---------------------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------------------

/// Instantiate a template with concrete parameter values, producing a ground
/// term: every expression is evaluated to a constant and every guard whose
/// condition is decided is pruned (`false` guards become `NIL`, which
/// contributes no transitions — exactly the semantics of the guard operator).
pub fn subst(p: &P, args: &[i64]) -> Result<P, EvalError> {
    Ok(match &**p {
        Proc::Nil => p.clone(),
        Proc::Act { action, tag, next } => Arc::new(Proc::Act {
            action: ActionT {
                uses: action
                    .uses
                    .iter()
                    .map(|(r, e)| Ok((*r, Expr::Const(e.eval(args)?))))
                    .collect::<Result<_, EvalError>>()?,
            },
            tag: *tag,
            next: subst(next, args)?,
        }),
        Proc::Evt { event, next } => Arc::new(Proc::Evt {
            event: EventT {
                kind: event.kind.clone(),
                prio: Expr::Const(event.prio.eval(args)?),
            },
            next: subst(next, args)?,
        }),
        Proc::Choice(alts) => Arc::new(Proc::Choice(
            alts.iter()
                .map(|a| subst(a, args))
                .collect::<Result<_, _>>()?,
        )),
        Proc::Par(comps) => Arc::new(Proc::Par(
            comps
                .iter()
                .map(|c| subst(c, args))
                .collect::<Result<_, _>>()?,
        )),
        Proc::Guard { cond, then } => {
            if cond.eval(args)? {
                subst(then, args)?
            } else {
                nil()
            }
        }
        Proc::Scope {
            body,
            limit,
            exception,
            timeout,
            interrupt,
        } => Arc::new(Proc::Scope {
            body: subst(body, args)?,
            limit: match limit {
                TimeBound::Finite(e) => TimeBound::Finite(Expr::Const(e.eval(args)?)),
                TimeBound::Infinite => TimeBound::Infinite,
            },
            exception: exception
                .as_ref()
                .map(|(l, h)| Ok::<_, EvalError>((*l, subst(h, args)?)))
                .transpose()?,
            timeout: timeout.as_ref().map(|t| subst(t, args)).transpose()?,
            interrupt: interrupt.as_ref().map(|i| subst(i, args)).transpose()?,
        }),
        Proc::Restrict { body, labels } => Arc::new(Proc::Restrict {
            body: subst(body, args)?,
            labels: labels.clone(),
        }),
        Proc::Close { body, resources } => Arc::new(Proc::Close {
            body: subst(body, args)?,
            resources: resources.clone(),
        }),
        Proc::Invoke { def, args: a } => Arc::new(Proc::Invoke {
            def: *def,
            args: a
                .iter()
                .map(|e| Ok(Expr::Const(e.eval(args)?)))
                .collect::<Result<_, EvalError>>()?,
        }),
    })
}

impl ActionT {
    /// The idling action `{}`.
    pub fn idle() -> ActionT {
        ActionT { uses: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    #[test]
    fn constructors_build_expected_shapes() {
        let p = act([(cpu(), 1)], nil());
        match &*p {
            Proc::Act { action, tag, .. } => {
                assert_eq!(action.uses.len(), 1);
                assert!(tag.is_none());
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        assert!(matches!(&*nil(), Proc::Nil));
        assert!(matches!(&*choice([nil(), nil()]), Proc::Choice(v) if v.len() == 2));
        // Degenerate cases collapse.
        assert!(matches!(&*choice([]), Proc::Nil));
        let single = act([(cpu(), 1)], nil());
        assert_eq!(choice([single.clone()]), single);
        assert_eq!(par([single.clone()]), single);
    }

    #[test]
    fn subst_evaluates_priorities_and_args() {
        let mut env = Env::new();
        let d = env.declare("X", 2);
        // body: {(cpu, p0+1)} : X(p0+1, p1)
        let body = act(
            [(cpu(), Expr::p(0).add(Expr::c(1)))],
            invoke(d, [Expr::p(0).add(Expr::c(1)), Expr::p(1)]),
        );
        let ground = subst(&body, &[3, 9]).unwrap();
        match &*ground {
            Proc::Act { action, next, .. } => {
                assert_eq!(action.uses[0].1, Expr::Const(4));
                match &**next {
                    Proc::Invoke { args, .. } => {
                        assert_eq!(args, &[Expr::Const(4), Expr::Const(9)]);
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn subst_prunes_false_guards_to_nil() {
        let g = guard(
            BExpr::lt(Expr::p(0), Expr::c(5)),
            act([(cpu(), 1)], nil()),
        );
        assert!(matches!(&*subst(&g, &[7]).unwrap(), Proc::Nil));
        assert!(matches!(
            &*subst(&g, &[2]).unwrap(),
            Proc::Act { .. }
        ));
    }

    #[test]
    fn subst_evaluates_scope_bounds() {
        let s = scope(
            act([(cpu(), 1)], nil()),
            TimeBound::Finite(Expr::p(0).mul(Expr::c(2))),
            None,
            Some(nil()),
            None,
        );
        match &*subst(&s, &[5]).unwrap() {
            Proc::Scope { limit, .. } => {
                assert_eq!(*limit, TimeBound::Finite(Expr::Const(10)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn subst_fails_on_unbound_param() {
        let p = act([(cpu(), Expr::p(3))], nil());
        assert!(subst(&p, &[1]).is_err());
    }

    #[test]
    fn ground_terms_are_structurally_comparable() {
        let a = act([(cpu(), 1)], evt_send(Symbol::new("done"), 1, nil()));
        let b = act([(cpu(), 1)], evt_send(Symbol::new("done"), 1, nil()));
        assert_eq!(a, b);
        let c = act([(cpu(), 2)], evt_send(Symbol::new("done"), 1, nil()));
        assert_ne!(a, c);
    }
}
