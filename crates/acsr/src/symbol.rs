//! Interned names.
//!
//! ACSR models generated from AADL carry a large number of names — event
//! labels (`dispatch_HCI_RefSpeed`, `done_HCI_RefSpeed`, queue events `e_q` /
//! `e_deq`, …), resource names (one per processor and bus), and process
//! definition names. The paper relies on *carefully chosen names* to raise
//! failing scenarios back to the AADL level (§1, §5), so names appear on many
//! labels and must be cheap to copy, compare and hash. We intern every string
//! once into a process-wide table; a [`Symbol`] is a 4-byte index into it.
//!
//! Interned strings are leaked (they live for the lifetime of the process),
//! which is the standard trade-off for analysis tools whose name population is
//! bounded by the input model.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare, order and hash.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, Symbol>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `name`, returning its unique symbol.
    pub fn new(name: &str) -> Symbol {
        let mut int = interner().lock().expect("symbol interner poisoned");
        if let Some(&sym) = int.map.get(name) {
            return sym;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let sym = Symbol(u32::try_from(int.strings.len()).expect("symbol table overflow"));
        int.strings.push(leaked);
        int.map.insert(leaked, sym);
        sym
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("symbol interner poisoned");
        int.strings[self.0 as usize]
    }

    /// The raw index of this symbol in the intern table.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

/// A serially reusable resource (a processor, a bus, shared data, …).
///
/// Resources are the central semantic notion of ACSR: a timed action claims a
/// set of resources for one quantum, and two actions can only proceed in
/// parallel when their resource sets are disjoint (rule *Par3* in §3 of the
/// paper).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Res(pub Symbol);

impl Res {
    /// Intern a resource by name.
    pub fn new(name: &str) -> Res {
        Res(Symbol::new(name))
    }

    /// The resource's name.
    pub fn name(self) -> Symbol {
        self.0
    }
}

impl fmt::Debug for Res {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Res({})", self.0)
    }
}

impl fmt::Display for Res {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<&str> for Res {
    fn from(s: &str) -> Res {
        Res::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("dispatch_T1");
        let b = Symbol::new("dispatch_T1");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "dispatch_T1");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("cpu1"), Symbol::new("cpu2"));
    }

    #[test]
    fn resources_compare_by_name() {
        assert_eq!(Res::new("bus"), Res::new("bus"));
        assert_ne!(Res::new("bus"), Res::new("cpu"));
        assert_eq!(Res::new("bus").name().as_str(), "bus");
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Symbol::new("done").to_string(), "done");
        assert_eq!(Res::new("cpu").to_string(), "cpu");
    }

    #[test]
    fn symbols_are_orderable_deterministically() {
        // Ordering is by interning index, which is stable within a run; we only
        // require a total order, not a lexicographic one.
        let a = Symbol::new("zzz_order_a");
        let b = Symbol::new("zzz_order_b");
        assert!(a < b || b < a);
    }
}
