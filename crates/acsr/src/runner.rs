//! Vector-domain forced runs: the closed-form engine behind zone mode.
//!
//! [`crate::advance`] removes the per-quantum work *inside* a forced timed
//! interval, but a periodic model's forced runs are not one interval: every
//! release instant splits them with a short cascade of boundary steps — the
//! dispatch `τ`, a preemption shuffle, a one-quantum compute step, the
//! completion `τ` — and every one of those used to be a fresh concrete
//! derivation through the step relation. On a model like
//! `longperiod.aadl` (four tasks, co-prime periods) the spans average a
//! handful of quanta, so those per-release derivations dominated wall time
//! and the zone *state* win never became a wall-clock win.
//!
//! This module walks the whole forced run in the **vector domain**. The
//! current state is a shape (an interned structural template) plus a numeric
//! time vector, and each kind of forced step is served arithmetically:
//!
//! * **Spans** — when every moving component's boundary `θ_i` is learned
//!   (see [`crate::advance`]), the interval length is `min_i (θ_i − v_i)/δ_i`
//!   and the advance is `v += d·δ`. No rebuild, no interning, no step
//!   derivation.
//! * **Unit macros** — single forced steps that *leave* the shape (the
//!   boundary exit, the cascade `τ`s, a one-quantum compute step) are
//!   learned as per-shape transition maps: an input guard plus, per output
//!   component, either a constant or `v[src] + k`. A macro is inferred from
//!   three consistent concrete observations and thereafter serves the step
//!   as `O(#params)` arithmetic.
//!
//! Only run endpoints are materialized back into interned terms; interior
//! states live as `(template, vector)` pairs inside the returned segments
//! and are rebuilt syntactically on demand (traces, artifact deposits).
//!
//! # When is a macro allowed to serve?
//!
//! A macro is a *deterministic* map, but a state's successor set is only
//! deterministic when no second event is pending at the same instant (a
//! simultaneous release makes a branch — a "diamond" — which learning mode
//! surfaces as a run end, never as an observation). Serving is therefore
//! gated on an **instant certificate**:
//!
//! * At a span shape with complete boundaries, the components sitting
//!   exactly at their `θ_i` are counted. Zero criticals certify a span;
//!   exactly one critical certifies the (keyed-by-binding) exit macro and
//!   validates the instant it opens; two or more force a concrete
//!   derivation — which is exactly where diamonds live.
//! * Inside a validated instant, instantaneous cascade macros keep the
//!   certificate and a timed macro ends it.
//! * At an *unvalidated* instant (right after a served timed step), an
//!   instantaneous macro may serve only if a bounded **lookahead** through
//!   the learned maps reaches a span shape whose predicted vector has zero
//!   criticals — i.e. the theory itself proves no other event shares the
//!   instant. Otherwise the step is derived concretely.
//!
//! # Verification
//!
//! Like the span cache, nothing here is trusted analysis: with
//! [`AdvanceCache::with_verify`] (default in debug builds, hence in every
//! test run) *every* served span and macro step is replayed against the
//! step relation and any divergence panics. Release builds spot-check each
//! shape variant and each macro on an exponential-backoff schedule (serves
//! 1, 2, 4, 8, …); a failed spot check poisons the entry and falls back to
//! concrete replay. `tools/ci.sh` additionally diffs closed-form against
//! replay-mode verdicts on every bundled model in release mode, and
//! `--zone-advance replay` remains the always-available escape hatch.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use std::sync::Arc;

use crate::advance::{
    advance, frozen_key, offset, unique_step, Advance, AdvanceCache, ShapeEntry, ShapeKey,
};
use crate::label::Label;
use crate::skeleton::{self, Factored};
use crate::step::StepSession;
use crate::store::Interned;

/// Maximum instantaneous-macro hops a lookahead certificate may cross.
const MAX_LOOKAHEAD: usize = 4;
/// Observations required before a unit macro is inferred.
const INFER_AT: usize = 3;
/// Observation cap during refinement; a macro that cannot settle within
/// this many observations is poisoned.
const REFINE_CAP: usize = 10;

/// The endpoint of a [`RunSeg`]: materialized, or a `(template, vector)`
/// pair that rebuilds to the state on demand.
#[derive(Clone, Debug)]
pub enum RunEnd {
    /// An interned state (every run's final segment ends in one).
    Real(Interned),
    /// A virtual state: `rebuild(template, values)`.
    Virt {
        template: Interned,
        values: Arc<Vec<i64>>,
    },
}

impl RunEnd {
    /// The interned endpoint, when materialized.
    pub fn interned(&self) -> Option<&Interned> {
        match self {
            RunEnd::Real(t) => Some(t),
            RunEnd::Virt { .. } => None,
        }
    }

    /// The endpoint as an interned term, rebuilding if virtual.
    pub fn materialize(&self, session: &StepSession<'_>) -> Interned {
        match self {
            RunEnd::Real(t) => t.clone(),
            RunEnd::Virt { template, values } => {
                let p = skeleton::rebuild(template.term(), values)
                    .expect("virtual run state must rebuild within its shape");
                session.intern(&p)
            }
        }
    }
}

/// One segment of a forced run walked by [`forced_run_closed`].
#[derive(Clone, Debug)]
pub enum RunSeg {
    /// A concretely derived step (timed or instantaneous).
    Unit(Label, Interned),
    /// A closed-form span of `len ≥ 1` forced timed steps, all labelled
    /// `label`; the `k`-th interior state is the segment's source rebuilt
    /// at `vector + k·delta`.
    Span {
        label: Label,
        delta: Arc<Vec<i64>>,
        len: u64,
        end: RunEnd,
    },
    /// A macro-served forced step that changes shape (a boundary exit, a
    /// cascade `τ`, a one-quantum compute step).
    Jump { label: Label, end: RunEnd },
}

impl RunSeg {
    /// Concrete steps this segment stands for.
    pub fn weight(&self) -> u64 {
        match self {
            RunSeg::Unit(..) | RunSeg::Jump { .. } => 1,
            RunSeg::Span { len, .. } => *len,
        }
    }

    /// The (uniform) label of the segment's steps.
    pub fn label(&self) -> &Label {
        match self {
            RunSeg::Unit(l, _) => l,
            RunSeg::Span { label, .. } | RunSeg::Jump { label, .. } => label,
        }
    }

    /// The segment's endpoint.
    pub fn end(&self) -> RunEnd {
        match self {
            RunSeg::Unit(_, t) => RunEnd::Real(t.clone()),
            RunSeg::Span { end, .. } | RunSeg::Jump { end, .. } => end.clone(),
        }
    }

    fn set_end(&mut self, t: Interned) {
        match self {
            RunSeg::Unit(..) => {}
            RunSeg::Span { end, .. } | RunSeg::Jump { end, .. } => *end = RunEnd::Real(t),
        }
    }
}

/// The outcome of [`forced_run_closed`].
pub enum RunOutcome {
    /// The entry state has no prioritized successors.
    Deadlock,
    /// The entry state has two or more prioritized successors.
    Branch(Vec<(Label, Interned)>),
    /// The maximal forced chain out of the entry: `steps` concrete steps
    /// across the segments; the final segment's end is always materialized.
    Run { segs: Vec<RunSeg>, steps: u64 },
}

/// Per-output-component source of a unit macro's transition map.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OutSrc {
    /// `w[j] = v[src] + k`.
    Affine { src: usize, k: i64 },
    /// `w[j] = c`.
    Const(i64),
}

/// One concrete observation of a forced step out of a shape.
#[derive(Clone, Debug)]
pub(crate) struct Obs {
    v: Vec<i64>,
    label: Label,
    w: Vec<i64>,
    target: Interned,
    target_key: ShapeKey,
}

/// A learned single-step transition map.
#[derive(Debug)]
pub(crate) struct UnitMacro {
    label: Label,
    timed: bool,
    /// Exact-match guard: components that never varied across the macro's
    /// observations must hold their observed value (relaxed by refinement
    /// when a mismatching state is later observed concretely).
    in_req: Vec<Option<i64>>,
    out: Arc<Vec<OutSrc>>,
    target_tpl: Interned,
    target_key: ShapeKey,
    /// Observations the map was inferred from, kept for refinement.
    obs: Vec<Obs>,
    serves: u64,
    next_verify: u64,
}

/// Unit macros are keyed by source shape plus, for span-shape boundary
/// exits, the binding component (distinct releases out of the same shape
/// are distinct macros).
pub(crate) type UnitKey = (ShapeKey, Option<u32>);

#[derive(Debug)]
pub(crate) enum UnitEntry {
    /// Collecting observations (fewer than [`INFER_AT`], or inference has
    /// not been attempted yet).
    Learning(Vec<Obs>),
    Ready(UnitMacro),
    /// Conflicting observations or a failed spot check: always derive
    /// concretely.
    Poisoned,
}

/// Infer a transition map explaining every observation, or `None` when the
/// observations are inconsistent with any guarded affine map (the caller
/// poisons the entry — more observations can only shrink the candidate
/// space, never recover it).
fn infer(obs: &[Obs]) -> Option<UnitMacro> {
    let first = &obs[0];
    let n = first.v.len();
    let m = first.w.len();
    if obs.iter().any(|o| {
        o.label != first.label
            || o.target_key != first.target_key
            || o.v.len() != n
            || o.w.len() != m
    }) {
        return None;
    }
    let in_req: Vec<Option<i64>> = (0..n)
        .map(|i| {
            let x = first.v[i];
            obs.iter().all(|o| o.v[i] == x).then_some(x)
        })
        .collect();
    let mut out = Vec::with_capacity(m);
    'component: for j in 0..m {
        let wj = first.w[j];
        if obs.iter().all(|o| o.w[j] == wj) {
            out.push(OutSrc::Const(wj));
            continue;
        }
        // The output varies, so it must track some (necessarily varying)
        // input at a constant drift; take the first input that explains
        // every observation.
        for i in 0..n {
            let k = (first.w[j] as i128) - (first.v[i] as i128);
            if obs
                .iter()
                .all(|o| (o.w[j] as i128) - (o.v[i] as i128) == k)
            {
                let Ok(k) = i64::try_from(k) else {
                    return None;
                };
                out.push(OutSrc::Affine { src: i, k });
                continue 'component;
            }
        }
        return None;
    }
    Some(UnitMacro {
        label: first.label.clone(),
        timed: first.label.is_timed(),
        in_req,
        out: Arc::new(out),
        target_tpl: first.target.clone(),
        target_key: first.target_key,
        obs: obs.to_vec(),
        serves: 0,
        next_verify: 1,
    })
}

fn in_req_ok(in_req: &[Option<i64>], v: &[i64]) -> bool {
    in_req.len() == v.len()
        && in_req
            .iter()
            .zip(v)
            .all(|(r, x)| r.map_or(true, |c| c == *x))
}

fn apply_out(out: &[OutSrc], v: &[i64]) -> Option<Vec<i64>> {
    out.iter()
        .map(|o| match o {
            OutSrc::Const(c) => Some(*c),
            OutSrc::Affine { src, k } => v.get(*src).and_then(|x| x.checked_add(*k)),
        })
        .collect()
}

/// Record a concrete observation of a forced step, inferring or refining
/// the keyed macro.
fn record_obs(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    ukey: UnitKey,
    v: &[i64],
    label: &Label,
    target: &Interned,
) {
    let ft = session.store().shape_of(target);
    let ob = Obs {
        v: v.to_vec(),
        label: label.clone(),
        w: ft.values.clone(),
        target: target.clone(),
        target_key: (ft.digest, ft.values.len() as u32),
    };
    let mut g = cache.units.lock().expect("advance cache poisoned");
    match g.entry(ukey) {
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(UnitEntry::Learning(vec![ob]));
        }
        std::collections::hash_map::Entry::Occupied(mut slot) => match slot.get_mut() {
            UnitEntry::Poisoned => {}
            UnitEntry::Learning(obs) => {
                if obs[0].label != ob.label || obs[0].target_key != ob.target_key {
                    *slot.get_mut() = UnitEntry::Poisoned;
                    return;
                }
                if !obs.iter().any(|o| o.v == ob.v) {
                    obs.push(ob);
                }
                if obs.len() >= INFER_AT {
                    *slot.get_mut() = match infer(obs) {
                        Some(m) => UnitEntry::Ready(m),
                        None => UnitEntry::Poisoned,
                    };
                }
            }
            UnitEntry::Ready(m) => {
                // The macro refused this state (an in_req mismatch): relax
                // the guard by re-inferring over the extended observations.
                if m.label != ob.label || m.target_key != ob.target_key {
                    *slot.get_mut() = UnitEntry::Poisoned;
                    return;
                }
                if in_req_ok(&m.in_req, v) {
                    // Refused for validation reasons only; nothing to learn.
                    return;
                }
                if m.obs.len() >= REFINE_CAP {
                    *slot.get_mut() = UnitEntry::Poisoned;
                    return;
                }
                m.obs.push(ob);
                let obs = std::mem::take(&mut m.obs);
                *slot.get_mut() = match infer(&obs) {
                    Some(m) => UnitEntry::Ready(m),
                    None => UnitEntry::Poisoned,
                };
            }
        },
    }
}

/// A macro read out of the table, pending eligibility and verification.
struct Peeked {
    label: Label,
    timed: bool,
    target_tpl: Interned,
    target_key: ShapeKey,
    w: Vec<i64>,
}

/// Phase 1 of a macro serve: read the map and compute the predicted target
/// vector, without committing.
fn peek_unit(cache: &AdvanceCache, ukey: UnitKey, v: &[i64]) -> Option<Peeked> {
    let g = cache.units.lock().expect("advance cache poisoned");
    match g.get(&ukey) {
        Some(UnitEntry::Ready(m)) if in_req_ok(&m.in_req, v) => {
            let w = apply_out(&m.out, v)?;
            Some(Peeked {
                label: m.label.clone(),
                timed: m.timed,
                target_tpl: m.target_tpl.clone(),
                target_key: m.target_key,
                w,
            })
        }
        _ => None,
    }
}

/// Phase 2 of a macro serve: bump the serve counter and decide whether this
/// serve is spot-verified. `None` when the entry was poisoned in between.
fn commit_unit(cache: &AdvanceCache, ukey: UnitKey) -> Option<bool> {
    let mut g = cache.units.lock().expect("advance cache poisoned");
    match g.get_mut(&ukey) {
        Some(UnitEntry::Ready(m)) => {
            m.serves += 1;
            let verify = cache.verify || m.serves >= m.next_verify;
            if m.serves >= m.next_verify {
                m.next_verify = m.next_verify.saturating_mul(2);
            }
            Some(verify)
        }
        _ => None,
    }
}

fn poison_unit(cache: &AdvanceCache, ukey: UnitKey) {
    let mut g = cache.units.lock().expect("advance cache poisoned");
    g.insert(ukey, UnitEntry::Poisoned);
}

/// What the span theory says about the instant at `(key, vals)`:
/// `Some(true)` — complete boundaries, at least one moving component, zero
/// criticals: nothing is pending at this instant. `Some(false)` — theory
/// present but it cannot rule a pending event out. `None` — shape unknown,
/// no verdict either way.
fn span_clear(cache: &AdvanceCache, key: ShapeKey, vals: &[i64]) -> Option<bool> {
    let g = cache.shapes.lock().expect("advance cache poisoned");
    match g.get(&key) {
        Some(ShapeEntry::Linear(ls)) if ls.delta.len() == vals.len() => {
            if let Some(var) = ls.variants.get(&frozen_key(&ls.delta, vals)) {
                let mut moving = false;
                let mut crit = 0u32;
                let mut complete = true;
                for i in 0..vals.len() {
                    if ls.delta[i] == 0 {
                        continue;
                    }
                    moving = true;
                    match var.thresholds[i] {
                        Some(th) => {
                            if th == vals[i] {
                                crit += 1;
                            }
                        }
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if moving && complete {
                    return Some(crit == 0);
                }
            }
            Some(false)
        }
        Some(_) => Some(false),
        None => None,
    }
}

/// Does the learned theory prove that no event other than the predicted
/// chain shares the current instant? Follows instantaneous Ready macros
/// from `(key, w)` for at most [`MAX_LOOKAHEAD`] hops; certifies iff a span
/// shape with complete boundaries and zero critical components is reached.
fn lookahead_certifies(cache: &AdvanceCache, mut key: ShapeKey, w: &[i64]) -> bool {
    let mut vals = w.to_vec();
    for _ in 0..MAX_LOOKAHEAD {
        match span_clear(cache, key, &vals) {
            Some(verdict) => return verdict,
            None => {}
        }
        let hop = {
            let g = cache.units.lock().expect("advance cache poisoned");
            match g.get(&(key, None)) {
                Some(UnitEntry::Ready(m)) if !m.timed && in_req_ok(&m.in_req, &vals) => {
                    apply_out(&m.out, &vals).map(|w| (w, m.target_key))
                }
                _ => None,
            }
        };
        match hop {
            Some((w, tkey)) => {
                vals = w;
                key = tkey;
            }
            None => return false,
        }
    }
    false
}

/// What the boundary theory says about the current state.
enum SpanPlan {
    /// Zero criticals: a certified span of `d` quanta ending at `end`.
    Span {
        label: Label,
        delta: Arc<Vec<i64>>,
        d: u64,
        end: Vec<i64>,
        verify: bool,
    },
    /// Exactly one component at its boundary: the keyed exit macro applies.
    /// `next_clear` certifies the instant *one quantum later* as well: no
    /// other moving component reaches its boundary after a single timed
    /// step (`diff_j != δ_j` for every other `j`), so even a timed exit
    /// opens a validated instant.
    Exit { binding: u32, next_clear: bool },
    /// Two or more criticals (a possible diamond): derive concretely.
    Multi,
    /// No usable theory (no entry, poisoned, unlearned region or boundary,
    /// off-lattice vector): fall through to the generic path.
    NoTheory,
}

fn span_plan(cache: &AdvanceCache, key: ShapeKey, values: &[i64], cap_left: u64) -> SpanPlan {
    let mut g = cache.shapes.lock().expect("advance cache poisoned");
    let Some(ShapeEntry::Linear(ls)) = g.get_mut(&key) else {
        return SpanPlan::NoTheory;
    };
    if ls.delta.len() != values.len() {
        return SpanPlan::NoTheory;
    }
    let delta = ls.delta.clone();
    let frozen = frozen_key(&delta, values);
    let Some(var) = ls.variants.get_mut(&frozen) else {
        return SpanPlan::NoTheory;
    };
    let mut moving = false;
    let mut crit: Option<u32> = None;
    let mut multi = false;
    let mut next_clear = true;
    let mut d = cap_left;
    for i in 0..values.len() {
        let di = delta[i];
        if di == 0 {
            continue;
        }
        moving = true;
        let Some(th) = var.thresholds[i] else {
            return SpanPlan::NoTheory;
        };
        let Some(diff) = th.checked_sub(values[i]) else {
            return SpanPlan::NoTheory;
        };
        if diff == 0 {
            if crit.replace(i as u32).is_some() {
                multi = true;
            }
            continue;
        }
        if (diff < 0) != (di < 0) || diff % di != 0 {
            return SpanPlan::NoTheory;
        }
        if diff == di {
            // This component reaches its boundary one quantum from now.
            next_clear = false;
        }
        d = d.min((diff / di) as u64);
    }
    if !moving {
        return SpanPlan::NoTheory;
    }
    if multi {
        return SpanPlan::Multi;
    }
    if let Some(binding) = crit {
        return SpanPlan::Exit {
            binding,
            next_clear,
        };
    }
    let Some(end) = offset(values, &delta, d as i64) else {
        return SpanPlan::NoTheory;
    };
    var.serves += 1;
    let verify = cache.verify || var.serves >= var.next_verify;
    if var.serves >= var.next_verify {
        var.next_verify = var.next_verify.saturating_mul(2);
    }
    SpanPlan::Span {
        label: var.label.clone(),
        delta,
        d,
        end,
        verify,
    }
}

/// The walk state: interned, or a shape template plus the current vector.
enum Cur {
    Real(Interned),
    Virt {
        template: Interned,
        key: ShapeKey,
        values: Vec<i64>,
    },
}

struct Runner<'a, 'e> {
    session: &'a StepSession<'e>,
    cache: &'a AdvanceCache,
    segs: Vec<RunSeg>,
    steps: u64,
    cap: u64,
    cur: Cur,
    /// Set when the theory certified that the only events pending at the
    /// current instant are the ones the served chain itself performs.
    instant_valid: bool,
    /// Cycle guard at segment granularity, over deterministic 64-bit state
    /// hashes. A (vanishingly unlikely) collision merely ends the edge
    /// early — the cap-invariance argument makes edge granularity
    /// verdict-neutral, so no exactness is needed here.
    seen: HashSet<u64>,
}

fn mix(mut h: u64, x: u64) -> u64 {
    h ^= x;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h ^ (h >> 29)
}

fn virt_hash(key: ShapeKey, values: &[i64]) -> u64 {
    let mut h = mix(mix(0xcbf2_9ce4_8422_2325, key.0), key.1 as u64);
    for v in values {
        h = mix(h, *v as u64);
    }
    h
}

fn real_hash(t: &Interned) -> u64 {
    mix(0x9e37_79b9_7f4a_7c15, t.id().raw() as u64)
}

/// How one loop iteration left the runner.
enum Flow {
    Continue,
    EndRun,
    Deadlock,
    Branch(Vec<(Label, Interned)>),
}

impl<'a, 'e> Runner<'a, 'e> {
    fn cur_hash(&self) -> u64 {
        match &self.cur {
            Cur::Real(t) => real_hash(t),
            Cur::Virt { key, values, .. } => virt_hash(*key, values),
        }
    }

    /// Insert the current state into the cycle guard; `false` ends the run.
    fn note_seen(&mut self) -> bool {
        let h = self.cur_hash();
        self.seen.insert(h)
    }

    /// The current state as an interned term (rebuilding when virtual).
    fn materialize(&mut self) -> Interned {
        match &self.cur {
            Cur::Real(t) => t.clone(),
            Cur::Virt {
                template,
                key,
                values,
            } => {
                let p = skeleton::rebuild(template.term(), values).expect(
                    "closed-form advance produced a vector outside its shape \
                     (use --zone-advance replay to bypass the closed-form engine)",
                );
                let t = self.session.intern(&p);
                self.session.store().note_shape(
                    &t,
                    Arc::new(Factored {
                        digest: key.0,
                        values: values.clone(),
                    }),
                );
                self.cur = Cur::Real(t.clone());
                t
            }
        }
    }

    /// Serve one macro step that has already passed its eligibility gate.
    /// Returns `false` when the serve was abandoned (poisoned entry or a
    /// failed release-mode spot check) — the caller falls back to the
    /// concrete path.
    fn serve_jump(&mut self, ukey: UnitKey, p: Peeked, instant_after: bool) -> bool {
        let Some(verify) = commit_unit(self.cache, ukey) else {
            return false;
        };
        if verify && !self.verify_jump(&p) {
            assert!(
                !cfg!(debug_assertions),
                "macro-served step diverged from the step relation (shape {:?})",
                ukey
            );
            poison_unit(self.cache, ukey);
            return false;
        }
        self.cache.closed.fetch_add(1, Ordering::Relaxed);
        self.segs.push(RunSeg::Jump {
            label: p.label.clone(),
            end: RunEnd::Virt {
                template: p.target_tpl.clone(),
                values: Arc::new(p.w.clone()),
            },
        });
        self.steps += 1;
        self.instant_valid = instant_after;
        self.cur = Cur::Virt {
            template: p.target_tpl,
            key: p.target_key,
            values: p.w,
        };
        true
    }

    /// Replay a macro serve against the step relation.
    fn verify_jump(&mut self, p: &Peeked) -> bool {
        let src = self.materialize();
        let Some((l, t)) = unique_step(self.session, &src) else {
            return false;
        };
        if l != p.label {
            return false;
        }
        let Some(rebuilt) = skeleton::rebuild(p.target_tpl.term(), &p.w) else {
            return false;
        };
        t.id() == self.session.intern(&rebuilt).id()
    }

    /// Replay a span serve quantum by quantum against the step relation.
    fn verify_span(&mut self, label: &Label, delta: &[i64], d: u64) -> bool {
        let src = self.materialize();
        let f = self.session.store().shape_of(&src);
        let mut cur = src.clone();
        for k in 1..=d {
            let Some((l, t)) = unique_step(self.session, &cur) else {
                return false;
            };
            if !l.is_timed() || l != *label {
                return false;
            }
            let Some(vk) = offset(&f.values, delta, k as i64) else {
                return false;
            };
            let Some(pk) = skeleton::rebuild(src.term(), &vk) else {
                return false;
            };
            if t.id() != self.session.intern(&pk).id() {
                return false;
            }
            cur = t;
        }
        true
    }

    /// Certify the instant shared by `t` by walking the *concrete* forced
    /// chain: while the shape has no span theory and the next step is
    /// instantaneous, follow it; certify iff a span shape with complete
    /// boundaries and zero criticals is reached within
    /// [`MAX_LOOKAHEAD`] hops. `unique_step` is memoized, so the walk is
    /// reused verbatim by the steps that follow — this is how the unit
    /// map bootstraps before any macros exist to hop through.
    fn chain_certifies(&self, t: &Interned) -> bool {
        let mut cur = t.clone();
        for _ in 0..MAX_LOOKAHEAD {
            let f = self.session.store().shape_of(&cur);
            let key = (f.digest, f.values.len() as u32);
            if let Some(verdict) = span_clear(self.cache, key, &f.values) {
                if !verdict {
                }
                return verdict;
            }
            match unique_step(self.session, &cur) {
                Some((l, nt)) if !l.is_timed() => cur = nt,
                Some(_) => {
                    return false;
                }
                None => {
                    return false;
                }
            }
        }
        false
    }

    /// Take one concrete forced step (the learning path), recording the
    /// observation under `ukey` when one is given.
    /// Take one concrete forced step. `certified` says the *current*
    /// instant is known clear of foreign events (θ-certification from an
    /// exit, or carried instant validity). Observations are only recorded
    /// at certified instants — a diamond-instant cascade behaves
    /// differently from the common case at the *same* shape, and letting
    /// its steps into the observation set would poison the macro for
    /// everyone. An instantaneous step can also certify retroactively:
    /// its target shares the instant, so if the target's span theory shows
    /// zero critical components, no foreign event was pending.
    fn concrete_step(&mut self, ukey: Option<UnitKey>, values: &[i64], certified: bool) -> Flow {
        let src = self.materialize();
        match unique_step(self.session, &src) {
            Some((l, t)) => {
                let mut certified = certified;
                if !certified && !l.is_timed() {
                    certified = self.chain_certifies(&t);
                }
                if certified {
                } else {
                }
                if certified {
                    if let Some(ukey) = ukey {
                        record_obs(self.session, self.cache, ukey, values, &l, &t);
                    }
                }
                // A timed step opens a new instant; the concrete chain
                // ahead can certify it just like the current one.
                self.instant_valid = if l.is_timed() {
                    self.chain_certifies(&t)
                } else {
                    certified
                };
                self.segs.push(RunSeg::Unit(l, t.clone()));
                self.steps += 1;
                self.cur = Cur::Real(t);
                if self.note_seen() {
                    Flow::Continue
                } else {
                    Flow::EndRun
                }
            }
            None => self.blocked(&src),
        }
    }

    /// The current state is not forced: classify it (ending the run).
    fn blocked(&mut self, src: &Interned) -> Flow {
        if !self.segs.is_empty() {
            return Flow::EndRun;
        }
        let succs = self.session.prioritized_steps(src);
        if succs.is_empty() {
            Flow::Deadlock
        } else {
            Flow::Branch(succs)
        }
    }

    /// One iteration of the walk.
    fn step(&mut self) -> Flow {
        // A factored view of the current state. Values are cloned (the
        // vectors are small) so the walk state can be replaced freely.
        let (key, template, values): (ShapeKey, Interned, Vec<i64>) = match &self.cur {
            Cur::Real(t) => {
                let f = self.session.store().shape_of(t);
                (
                    (f.digest, f.values.len() as u32),
                    t.clone(),
                    f.values.clone(),
                )
            }
            Cur::Virt {
                template,
                key,
                values,
            } => (*key, template.clone(), values.clone()),
        };

        match span_plan(self.cache, key, &values, self.cap - self.steps) {
            SpanPlan::Span {
                label,
                delta,
                d,
                end,
                verify,
            } => {
                if verify && !self.verify_span(&label, &delta, d) {
                    assert!(
                        !cfg!(debug_assertions),
                        "closed-form span diverged from the step relation (shape {key:?})"
                    );
                    self.cache.poison(key);
                    return Flow::Continue;
                }
                self.cache.closed.fetch_add(1, Ordering::Relaxed);
                self.segs.push(RunSeg::Span {
                    label,
                    delta,
                    len: d,
                    end: RunEnd::Virt {
                        template: template.clone(),
                        values: Arc::new(end.clone()),
                    },
                });
                self.steps += d;
                self.instant_valid = false;
                self.cur = Cur::Virt {
                    template,
                    key,
                    values: end,
                };
                if self.note_seen() {
                    Flow::Continue
                } else {
                    Flow::EndRun
                }
            }
            SpanPlan::Exit {
                binding,
                next_clear,
            } => {
                // Exactly one pending event: the exit macro is certified by
                // the boundary theory itself, and serving it validates the
                // instant it opens.
                let ukey = (key, Some(binding));
                if let Some(p) = peek_unit(self.cache, ukey, &values) {
                    // An instantaneous exit keeps the instant; a timed one
                    // opens the next instant, which `next_clear` certifies.
                    let after = !p.timed || next_clear;
                    if self.serve_jump(ukey, p, after) {
                        return if self.note_seen() {
                            Flow::Continue
                        } else {
                            Flow::EndRun
                        };
                    }
                }
                self.cache.fallbacks.fetch_add(1, Ordering::Relaxed);
                let flow = self.concrete_step(Some(ukey), &values, true);
                // A concrete singleton step at a one-critical boundary
                // consumed that one event: the instant it opened (if it
                // was instantaneous, or `next_clear` held) is validated by
                // the same argument as the macro serve.
                if let (Flow::Continue, Some(RunSeg::Unit(l, _))) = (&flow, self.segs.last()) {
                    self.instant_valid = self.instant_valid || !l.is_timed() || next_clear;
                }
                flow
            }
            SpanPlan::Multi => {
                // Two or more simultaneous events: this is where diamonds
                // live, so always look at the real successor set.
                self.cache.fallbacks.fetch_add(1, Ordering::Relaxed);
                let flow = self.concrete_step(None, &values, false);
                self.instant_valid = false;
                flow
            }
            SpanPlan::NoTheory => {
                // Cascade shapes (and span shapes still learning their
                // boundaries). Try the learned transition map first.
                let ukey = (key, None);
                if let Some(p) = peek_unit(self.cache, ukey, &values) {
                    let eligible = self.instant_valid
                        || (!p.timed && lookahead_certifies(self.cache, p.target_key, &p.w));
                    // An instantaneous serve keeps the (certified) instant.
                    // A timed serve opens a new one, which the theory can
                    // certify in the vector domain: hop instantaneous
                    // macros from the target until a span shape with zero
                    // criticals proves nothing foreign is pending.
                    let after = !p.timed
                        || lookahead_certifies(self.cache, p.target_key, &p.w);
                    if eligible && self.serve_jump(ukey, p, after) {
                        return if self.note_seen() {
                            Flow::Continue
                        } else {
                            Flow::EndRun
                        };
                    }
                }
                // Concrete: let the span machinery learn derivatives and
                // boundaries, and record unit observations on the way.
                let real = self.materialize();
                match advance(self.session, self.cache, &real, self.cap - self.steps) {
                    Advance::Closed {
                        label,
                        delta,
                        len,
                        target,
                    } => {
                        self.steps += len;
                        self.instant_valid = false;
                        self.segs.push(RunSeg::Span {
                            label,
                            delta,
                            len,
                            end: RunEnd::Real(target.clone()),
                        });
                        self.cur = Cur::Real(target);
                        if self.note_seen() {
                            Flow::Continue
                        } else {
                            Flow::EndRun
                        }
                    }
                    Advance::Replayed(steps) => {
                        // Every replayed step is an observation opportunity:
                        // the first leaves *this* shape under `ukey`, each
                        // later one leaves the shape of the intermediate
                        // state it departs from. Certification chains
                        // through the cascade — an instantaneous step keeps
                        // the instant (and can retro-certify through its
                        // target's span theory), a timed step opens a new,
                        // uncertified one. Timed cascade steps only ever
                        // surface through this arm.
                        let mut src_key = ukey;
                        let mut src_vals = values.clone();
                        let mut certified = self.instant_valid;
                        for (i, (l, t)) in steps.iter().enumerate() {
                            if !certified && !l.is_timed() {
                                // We hold the concrete chain: the instant
                                // persists across instantaneous steps, so if
                                // any state within reach (walking only
                                // instantaneous steps) has a span theory
                                // showing zero criticals, this instant is
                                // provably clear of foreign events.
                                let mut j = i;
                                loop {
                                    let f = self.session.store().shape_of(&steps[j].1);
                                    let kj = (f.digest, f.values.len() as u32);
                                    if let Some(verdict) = span_clear(self.cache, kj, &f.values)
                                    {
                                        certified = verdict;
                                        break;
                                    }
                                    let next = j + 1;
                                    if next >= steps.len()
                                        || next - i >= MAX_LOOKAHEAD
                                        || steps[next].0.is_timed()
                                    {
                                        break;
                                    }
                                    j = next;
                                }
                            }
                            if certified {
                                record_obs(self.session, self.cache, src_key, &src_vals, l, t);
                            }
                            certified = certified && !l.is_timed();
                            self.steps += 1;
                            self.segs.push(RunSeg::Unit(l.clone(), t.clone()));
                            self.cur = Cur::Real(t.clone());
                            if !self.note_seen() {
                                self.instant_valid = certified;
                                return Flow::EndRun;
                            }
                            // The next step departs from `t`.
                            let ft = self.session.store().shape_of(t);
                            let tkey = (ft.digest, ft.values.len() as u32);
                            src_key = (tkey, None);
                            src_vals = ft.values.clone();
                        }
                        self.instant_valid = certified;
                        Flow::Continue
                    }
                    Advance::NotTimed => {
                        let certified = self.instant_valid;
                        self.concrete_step(Some(ukey), &values, certified)
                    }
                }
            }
        }
    }
}

/// Follow the maximal forced chain out of `entry` in the vector domain,
/// serving spans and learned unit macros arithmetically and deriving
/// concretely everywhere the theory cannot certify the step. Semantics
/// (cap bound, cycle guard at segment granularity, blocked-state
/// classification) mirror [`crate::zone::forced_run`]; results are
/// intern-identical to a concrete replay of the same chain.
pub fn forced_run_closed(
    session: &StepSession<'_>,
    cache: &AdvanceCache,
    entry: &Interned,
    cap: u64,
) -> RunOutcome {
    let mut r = Runner {
        session,
        cache,
        segs: Vec::new(),
        steps: 0,
        cap,
        cur: Cur::Real(entry.clone()),
        instant_valid: false,
        seen: HashSet::new(),
    };
    r.note_seen();
    while r.steps < r.cap {
        match r.step() {
            Flow::Continue => {}
            Flow::EndRun => break,
            Flow::Deadlock => return RunOutcome::Deadlock,
            Flow::Branch(succs) => return RunOutcome::Branch(succs),
        }
    }
    // Materialize the endpoint: the final segment's end is the edge target.
    let end = r.materialize();
    let mut segs = r.segs;
    if let Some(last) = segs.last_mut() {
        last.set_end(end);
    }
    RunOutcome::Run {
        segs,
        steps: r.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::expr::Expr;
    use crate::step::MemoConfig;
    use crate::store::TermStore;
    use crate::symbol::Res;
    use crate::term::{act, invoke, nil, par, scope, TimeBound, P};
    use crate::zone;

    fn session(env: &Env) -> StepSession<'_> {
        StepSession::new(env, Arc::new(TermStore::new()), MemoConfig::default())
    }

    /// A periodic task on its own resource: idle for `period − 1` quanta
    /// (an idle loop clipped by a scope), one quantum of work, repeat.
    fn periodic(env: &mut Env, name: &str, res: &str, period: i64) -> P {
        let idle = env.declare(&format!("{name}Idle"), 0);
        env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
        let d = env.declare(name, 0);
        env.set_body(
            d,
            scope(
                invoke(idle, []),
                TimeBound::Finite(Expr::c(period - 1)),
                None,
                Some(act([(Res::new(res), 1)], invoke(d, []))),
                None,
            ),
        );
        invoke(d, [])
    }

    /// Two periodic tasks with co-prime periods on disjoint resources:
    /// fully deterministic (every state is forced), and every release of
    /// one task sees a different phase of the other, so the unit-macro
    /// observations vary and inference has something to chew on.
    fn two_tasks(env: &mut Env) -> P {
        let a = periodic(env, "A", "cpuA", 3);
        let b = periodic(env, "B", "cpuB", 5);
        par([a, b])
    }

    /// Expand a run into `(label, interned)` unit steps by materializing
    /// every segment the way a trace reconstruction would.
    fn expand(
        session: &StepSession<'_>,
        entry: &Interned,
        segs: &[RunSeg],
    ) -> Vec<(Label, Interned)> {
        let mut cur = entry.clone();
        let mut steps = Vec::new();
        for seg in segs {
            match seg {
                RunSeg::Unit(l, t) => {
                    steps.push((l.clone(), t.clone()));
                    cur = t.clone();
                }
                RunSeg::Span {
                    label,
                    delta,
                    len,
                    end,
                } => {
                    let f = session.store().shape_of(&cur);
                    for k in 1..*len {
                        let v = offset(&f.values, delta, k as i64).unwrap();
                        let p = skeleton::rebuild(cur.term(), &v).unwrap();
                        steps.push((label.clone(), session.intern(&p)));
                    }
                    let t = end.materialize(session);
                    steps.push((label.clone(), t.clone()));
                    cur = t;
                }
                RunSeg::Jump { label, end } => {
                    let t = end.materialize(session);
                    steps.push((label.clone(), t.clone()));
                    cur = t;
                }
            }
        }
        steps
    }

    /// Drive a closed run from `cur` and check that its expansion is
    /// intern-identical to the concrete unique-step chain out of `cur`,
    /// step for step. Returns the run's endpoint (or `None` at a
    /// deadlock/branch, which must agree with the concrete successor set).
    fn check_run(s: &StepSession<'_>, cache: &AdvanceCache, cur: &Interned) -> Option<Interned> {
        match forced_run_closed(s, cache, cur, 64) {
            RunOutcome::Run { segs, steps } => {
                assert!(!segs.is_empty(), "a run has at least one segment");
                assert_eq!(
                    steps,
                    segs.iter().map(RunSeg::weight).sum::<u64>(),
                    "step count equals total segment weight"
                );
                let end = segs
                    .last()
                    .unwrap()
                    .end()
                    .interned()
                    .cloned()
                    .expect("final segment is materialized");
                let got = expand(s, cur, &segs);
                let mut c = cur.clone();
                for (i, (gl, gt)) in got.iter().enumerate() {
                    let (cl, ct) =
                        unique_step(s, &c).unwrap_or_else(|| panic!("step {i} is not forced"));
                    assert_eq!(gl, &cl, "label {i}");
                    assert_eq!(gt.id(), ct.id(), "state {i}");
                    c = ct;
                }
                assert_eq!(got.last().unwrap().1.id(), end.id());
                Some(end)
            }
            RunOutcome::Deadlock => {
                assert!(s.prioritized_steps(cur).is_empty());
                None
            }
            RunOutcome::Branch(succs) => {
                assert!(succs.len() >= 2);
                assert_eq!(succs.len(), s.prioritized_steps(cur).len());
                None
            }
        }
    }

    /// Every step the closed engine emits — learning, warming, or fully
    /// macro-served — must be intern-identical to the concrete unique-step
    /// chain. Repeated passes over the same states hit progressively more
    /// served paths (debug builds also verify every serve internally).
    #[test]
    fn closed_runs_expand_to_the_concrete_forced_run() {
        let mut env = Env::new();
        let p = two_tasks(&mut env);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t0 = s.intern(&p);
        for pass in 0..6 {
            let mut cur = t0.clone();
            for _ in 0..12 {
                match check_run(&s, &cache, &cur) {
                    // A pure cycle ends back where it started (the cycle
                    // guard fires on the revisit, like the concrete walker).
                    Some(end) if end.id() == cur.id() => break,
                    Some(end) => cur = end,
                    None => break,
                }
            }
        }
        // The model is a forced 15-quantum cycle: something must have
        // served closed-form by now.
        assert!(cache.stats().closed_form_advances >= 1);
    }

    /// After enough observations the boundary-exit steps are served by
    /// learned unit macros instead of concrete derivation.
    #[test]
    fn unit_macros_warm_up_and_serve() {
        let mut env = Env::new();
        let p = two_tasks(&mut env);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t0 = s.intern(&p);
        let mut cur = t0.clone();
        for _ in 0..64 {
            match forced_run_closed(&s, &cache, &cur, 64) {
                RunOutcome::Run { segs, .. } => {
                    cur = segs
                        .last()
                        .and_then(|sg| sg.end().interned().cloned())
                        .expect("final segment is materialized");
                }
                _ => break,
            }
        }
        let ready = cache
            .units
            .lock()
            .unwrap()
            .values()
            .filter(|e| matches!(e, UnitEntry::Ready(_)))
            .count();
        assert!(ready >= 1, "no unit macro became ready");
        let before = cache.stats().closed_form_advances;
        let out = forced_run_closed(&s, &cache, &t0, 64);
        assert!(matches!(out, RunOutcome::Run { .. }));
        assert!(
            cache.stats().closed_form_advances > before,
            "warmed run served nothing closed-form"
        );
    }

    /// Branch and deadlock classification matches the concrete engine, and
    /// the cap bounds the run exactly like the concrete walker.
    #[test]
    fn caps_deadlocks_and_branches_mirror_the_concrete_walker() {
        let mut env = Env::new();
        let p = two_tasks(&mut env);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let t0 = s.intern(&p);
        for cap in [1u64, 2, 3, 7] {
            match forced_run_closed(&s, &cache, &t0, cap) {
                RunOutcome::Run { steps, .. } => assert!(steps <= cap),
                other => panic!(
                    "forced entry must yield a run at cap {cap}, got {}",
                    match other {
                        RunOutcome::Deadlock => "deadlock",
                        RunOutcome::Branch(_) => "branch",
                        RunOutcome::Run { .. } => unreachable!(),
                    }
                ),
            }
        }
        let dead = s.intern(&nil());
        assert!(matches!(
            forced_run_closed(&s, &cache, &dead, 64),
            RunOutcome::Deadlock
        ));
        // Two incomparable timed actions: a branch, reported with the full
        // prioritized successor set.
        let br = s.intern(&crate::term::choice([
            act([(Res::new("x"), 1)], nil()),
            act([(Res::new("y"), 1)], nil()),
        ]));
        match forced_run_closed(&s, &cache, &br, 64) {
            RunOutcome::Branch(succs) => assert_eq!(succs.len(), 2),
            _ => panic!("incomparable choice must branch"),
        }
    }

    /// The map inference: affine tracking and constant outputs, with the
    /// guard keeping never-varied components exact.
    #[test]
    fn inference_learns_guarded_affine_maps() {
        let env = Env::new();
        let s = session(&env);
        let tgt = s.intern(&nil());
        let f = s.store().shape_of(&tgt);
        let tkey = (f.digest, f.values.len() as u32);
        let lbl = Label::A(Arc::new(crate::label::GAction::idle()));
        let mk = |v: Vec<i64>, w: Vec<i64>| Obs {
            v,
            label: lbl.clone(),
            w,
            target: tgt.clone(),
            target_key: tkey,
        };
        let obs = vec![
            mk(vec![10, 3, 7], vec![9, 7]),
            mk(vec![20, 3, 7], vec![19, 7]),
            mk(vec![15, 3, 7], vec![14, 7]),
        ];
        let m = infer(&obs).expect("consistent observations must infer");
        assert!(matches!(m.out[0], OutSrc::Affine { src: 0, k: -1 }));
        assert!(matches!(m.out[1], OutSrc::Const(7)));
        assert_eq!(m.in_req, vec![None, Some(3), Some(7)]);
        // A conflicting observation set refuses.
        let bad = vec![
            mk(vec![10], vec![1]),
            mk(vec![20], vec![2]),
            mk(vec![30], vec![23]),
        ];
        assert!(infer(&bad).is_none());
    }

    /// The closed walker agrees with `zone::forced_run` on what is and is
    /// not a forced entry across every state of the cycle.
    #[test]
    fn forcedness_classification_matches_zone_forced_run() {
        let mut env = Env::new();
        let p = two_tasks(&mut env);
        let s = session(&env);
        let cache = AdvanceCache::new();
        let mut cur = s.intern(&p);
        for _ in 0..40 {
            let concrete_forced = zone::forced_run(&s, &cur, 1024).is_some();
            let closed = forced_run_closed(&s, &cache, &cur, 1024);
            match (&closed, concrete_forced) {
                (RunOutcome::Run { .. }, true) => {}
                (RunOutcome::Deadlock | RunOutcome::Branch(_), false) => {}
                _ => panic!("forcedness classification diverges"),
            }
            match unique_step(&s, &cur) {
                Some((_, t)) => cur = t,
                None => break,
            }
        }
    }
}
