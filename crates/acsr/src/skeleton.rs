//! Parametric skeletons: factoring a term into *shape* × *time vector*.
//!
//! A ground ACSR state of a periodic task system is almost entirely static
//! structure. What changes from quantum to quantum while the system idles or
//! computes undisturbed is a handful of integers: the remaining `Scope`
//! limits (deadline/period watchdogs counting down), the `Invoke` arguments
//! of parameterized recursions (dispatch counters), and the position inside
//! chains of identical timed-action prefixes (execution budgets unrolled by
//! the translation). This module makes that observation operational:
//!
//! * [`factor`] splits a term into a **shape digest** — an FNV-1a hash of the
//!   structure with every such time parameter replaced by a typed hole — and
//!   the **time vector**, the hole values in deterministic traversal order.
//! * [`rebuild`] is the inverse: given any term of a shape (the *template*)
//!   and a new time vector, it reconstructs the concrete term, path-copying
//!   only the spine that actually changed. `rebuild(t, factor(t).values)`
//!   returns `t`'s structure unchanged (and shares its `Arc`s).
//!
//! Two terms with the same shape digest and vector length are *shape-equal*:
//! they differ at most in their time parameters. The closed-form delay
//! advance ([`crate::advance`]) exploits this — while a state is forced, its
//! vector evolves linearly per quantum, so bulk time advance is vector
//! arithmetic plus one `rebuild` instead of per-quantum step derivation.
//!
//! The three hole kinds:
//!
//! | hole | matched structure | value |
//! |------|-------------------|-------|
//! | scope limit | `Scope { limit: Finite(Const(n)), .. }` | `n` |
//! | invoke argument | each `Const(n)` in `Invoke { args, .. }` | `n` |
//! | action chain | maximal run of `Act` nodes with identical `(action, tag)` | run length |
//!
//! Everything else — resource sets, priorities, event names, restriction and
//! closure sets, non-constant expressions, `Infinite` bounds — is *frozen*
//! into the digest via the term types' `Hash` impls, so terms differing in
//! any frozen part land in different shapes.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::expr::Expr;
use crate::hashed::Fnv1a;
use crate::term::{Proc, TimeBound, P};

/// Upper bound on a collapsed action-chain length (and thus on any rebuilt
/// chain). Purely a sanity guard: real translated budgets are tiny, and a
/// corrupt vector must not be able to demand a gigabyte of `Act` nodes.
pub const MAX_CHAIN: i64 = 1 << 24;

// Marker bytes mixed into the shape digest. Node-kind tags reuse the store's
// 0..=9 numbering; hole markers and option tags live above 0x40 so they can
// never collide with a node tag.
const H_CHAIN: u8 = 0x41;
const H_LIMIT: u8 = 0x42;
const H_ARG: u8 = 0x43;
const FROZEN_EXPR: u8 = 0x50;
const BOUND_INFINITE: u8 = 0x51;
const OPT_SOME: u8 = 0x52;
const OPT_NONE: u8 = 0x53;

/// A factored term: shape digest plus time vector. See the [module
/// documentation](self).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Factored {
    /// FNV-1a digest of the structure with holes abstracted.
    pub digest: u64,
    /// Hole values in deterministic pre-order traversal order.
    pub values: Vec<i64>,
}

/// Factor `p` into its shape and time vector.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::skeleton::{factor, rebuild};
///
/// let cpu = Res::new("cpu");
/// // Three identical quanta followed by NIL: one chain hole of value 3.
/// let p = act([(cpu, 1)], act([(cpu, 1)], act([(cpu, 1)], nil())));
/// let f = factor(&p);
/// assert_eq!(f.values, vec![3]);
/// // Same shape one quantum later.
/// let q = act([(cpu, 1)], act([(cpu, 1)], nil()));
/// assert_eq!(factor(&q).digest, f.digest);
/// // rebuild is the inverse of factor.
/// let r = rebuild(&p, &[2]).unwrap();
/// assert_eq!(r, q);
/// ```
pub fn factor(p: &P) -> Factored {
    let mut h = Fnv1a::new();
    let mut values = Vec::new();
    walk(p, &mut h, &mut values);
    Factored {
        digest: h.finish(),
        values,
    }
}

fn walk(p: &P, h: &mut Fnv1a, out: &mut Vec<i64>) {
    match &**p {
        Proc::Nil => h.write_u8(0),
        Proc::Act { action, tag, next } => {
            h.write_u8(1);
            action.hash(h);
            tag.hash(h);
            h.write_u8(H_CHAIN);
            // Collapse the maximal run of identical (action, tag) prefixes
            // into one count hole.
            let mut count: i64 = 1;
            let mut tail = next;
            while let Proc::Act {
                action: a,
                tag: t,
                next: n,
            } = &**tail
            {
                if a == action && t == tag && count < MAX_CHAIN {
                    count += 1;
                    tail = n;
                } else {
                    break;
                }
            }
            out.push(count);
            walk(tail, h, out);
        }
        Proc::Evt { event, next } => {
            h.write_u8(2);
            event.hash(h);
            walk(next, h, out);
        }
        Proc::Choice(alts) => {
            h.write_u8(3);
            h.write_usize(alts.len());
            for a in alts {
                walk(a, h, out);
            }
        }
        Proc::Par(comps) => {
            h.write_u8(4);
            h.write_usize(comps.len());
            for c in comps {
                walk(c, h, out);
            }
        }
        Proc::Guard { cond, then } => {
            h.write_u8(5);
            cond.hash(h);
            walk(then, h, out);
        }
        Proc::Scope {
            body,
            limit,
            exception,
            timeout,
            interrupt,
        } => {
            h.write_u8(6);
            match limit {
                TimeBound::Finite(Expr::Const(n)) => {
                    h.write_u8(H_LIMIT);
                    out.push(*n);
                }
                TimeBound::Finite(e) => {
                    h.write_u8(FROZEN_EXPR);
                    e.hash(h);
                }
                TimeBound::Infinite => h.write_u8(BOUND_INFINITE),
            }
            walk(body, h, out);
            match exception {
                Some((label, handler)) => {
                    h.write_u8(OPT_SOME);
                    label.hash(h);
                    walk(handler, h, out);
                }
                None => h.write_u8(OPT_NONE),
            }
            match timeout {
                Some(t) => {
                    h.write_u8(OPT_SOME);
                    walk(t, h, out);
                }
                None => h.write_u8(OPT_NONE),
            }
            match interrupt {
                Some(i) => {
                    h.write_u8(OPT_SOME);
                    walk(i, h, out);
                }
                None => h.write_u8(OPT_NONE),
            }
        }
        Proc::Restrict { body, labels } => {
            h.write_u8(7);
            labels.hash(h);
            walk(body, h, out);
        }
        Proc::Close { body, resources } => {
            h.write_u8(8);
            resources.hash(h);
            walk(body, h, out);
        }
        Proc::Invoke { def, args } => {
            h.write_u8(9);
            def.hash(h);
            h.write_usize(args.len());
            for a in args {
                match a {
                    Expr::Const(n) => {
                        h.write_u8(H_ARG);
                        out.push(*n);
                    }
                    e => {
                        h.write_u8(FROZEN_EXPR);
                        e.hash(h);
                    }
                }
            }
        }
    }
}

/// Reconstruct the term of `template`'s shape with time vector `values`.
///
/// `template` may be *any* term of the shape — the traversal consumes one
/// value per hole in the same order [`factor`] emitted them. Returns `None`
/// when the vector does not fit the shape (wrong length, a chain count
/// outside `1..=MAX_CHAIN`). Unchanged subtrees share the template's `Arc`s;
/// in particular a shrunk action chain reuses the template's own suffix, so
/// re-interning the result is mostly pointer-map hits.
pub fn rebuild(template: &P, values: &[i64]) -> Option<P> {
    let mut idx = 0usize;
    let built = rb(template, values, &mut idx)?;
    if idx == values.len() {
        Some(built)
    } else {
        None
    }
}

fn take(values: &[i64], idx: &mut usize) -> Option<i64> {
    let v = *values.get(*idx)?;
    *idx += 1;
    Some(v)
}

fn rb(p: &P, values: &[i64], idx: &mut usize) -> Option<P> {
    match &**p {
        Proc::Nil => Some(p.clone()),
        Proc::Act { action, tag, next } => {
            // Measure the template's chain, mirroring `walk`.
            let mut len: i64 = 1;
            let mut tail = next;
            while let Proc::Act {
                action: a,
                tag: t,
                next: n,
            } = &**tail
            {
                if a == action && t == tag && len < MAX_CHAIN {
                    len += 1;
                    tail = n;
                } else {
                    break;
                }
            }
            let count = take(values, idx)?;
            if !(1..=MAX_CHAIN).contains(&count) {
                return None;
            }
            let new_tail = rb(tail, values, idx)?;
            if Arc::ptr_eq(&new_tail, tail) {
                if count == len {
                    return Some(p.clone());
                }
                if count < len {
                    // The template's own suffix *is* the shorter chain.
                    let mut cur = p;
                    for _ in 0..(len - count) {
                        match &**cur {
                            Proc::Act { next, .. } => cur = next,
                            _ => unreachable!("chain shorter than measured"),
                        }
                    }
                    return Some(cur.clone());
                }
                // Longer chain: extend the template in place.
                let mut built = p.clone();
                for _ in 0..(count - len) {
                    built = Arc::new(Proc::Act {
                        action: action.clone(),
                        tag: *tag,
                        next: built,
                    });
                }
                return Some(built);
            }
            let mut built = new_tail;
            for _ in 0..count {
                built = Arc::new(Proc::Act {
                    action: action.clone(),
                    tag: *tag,
                    next: built,
                });
            }
            Some(built)
        }
        Proc::Evt { event, next } => {
            let n2 = rb(next, values, idx)?;
            Some(if Arc::ptr_eq(&n2, next) {
                p.clone()
            } else {
                Arc::new(Proc::Evt {
                    event: event.clone(),
                    next: n2,
                })
            })
        }
        Proc::Choice(alts) => {
            let mut kids = Vec::with_capacity(alts.len());
            let mut same = true;
            for a in alts {
                let k = rb(a, values, idx)?;
                same &= Arc::ptr_eq(&k, a);
                kids.push(k);
            }
            Some(if same { p.clone() } else { Arc::new(Proc::Choice(kids)) })
        }
        Proc::Par(comps) => {
            let mut kids = Vec::with_capacity(comps.len());
            let mut same = true;
            for c in comps {
                let k = rb(c, values, idx)?;
                same &= Arc::ptr_eq(&k, c);
                kids.push(k);
            }
            Some(if same { p.clone() } else { Arc::new(Proc::Par(kids)) })
        }
        Proc::Guard { cond, then } => {
            let t2 = rb(then, values, idx)?;
            Some(if Arc::ptr_eq(&t2, then) {
                p.clone()
            } else {
                Arc::new(Proc::Guard {
                    cond: cond.clone(),
                    then: t2,
                })
            })
        }
        Proc::Scope {
            body,
            limit,
            exception,
            timeout,
            interrupt,
        } => {
            let (new_limit, limit_same) = match limit {
                TimeBound::Finite(Expr::Const(n)) => {
                    let v = take(values, idx)?;
                    (TimeBound::Finite(Expr::Const(v)), v == *n)
                }
                other => (other.clone(), true),
            };
            let b2 = rb(body, values, idx)?;
            let e2 = match exception {
                Some((label, handler)) => Some((*label, rb(handler, values, idx)?)),
                None => None,
            };
            let t2 = match timeout {
                Some(t) => Some(rb(t, values, idx)?),
                None => None,
            };
            let i2 = match interrupt {
                Some(i) => Some(rb(i, values, idx)?),
                None => None,
            };
            let same = limit_same
                && Arc::ptr_eq(&b2, body)
                && exception
                    .as_ref()
                    .zip(e2.as_ref())
                    .is_none_or(|((_, a), (_, b))| Arc::ptr_eq(a, b))
                && timeout
                    .as_ref()
                    .zip(t2.as_ref())
                    .is_none_or(|(a, b)| Arc::ptr_eq(a, b))
                && interrupt
                    .as_ref()
                    .zip(i2.as_ref())
                    .is_none_or(|(a, b)| Arc::ptr_eq(a, b));
            Some(if same {
                p.clone()
            } else {
                Arc::new(Proc::Scope {
                    body: b2,
                    limit: new_limit,
                    exception: e2,
                    timeout: t2,
                    interrupt: i2,
                })
            })
        }
        Proc::Restrict { body, labels } => {
            let b2 = rb(body, values, idx)?;
            Some(if Arc::ptr_eq(&b2, body) {
                p.clone()
            } else {
                Arc::new(Proc::Restrict {
                    body: b2,
                    labels: labels.clone(),
                })
            })
        }
        Proc::Close { body, resources } => {
            let b2 = rb(body, values, idx)?;
            Some(if Arc::ptr_eq(&b2, body) {
                p.clone()
            } else {
                Arc::new(Proc::Close {
                    body: b2,
                    resources: resources.clone(),
                })
            })
        }
        Proc::Invoke { def, args } => {
            let mut new_args = Vec::with_capacity(args.len());
            let mut same = true;
            for a in args {
                match a {
                    Expr::Const(n) => {
                        let v = take(values, idx)?;
                        same &= v == *n;
                        new_args.push(Expr::Const(v));
                    }
                    other => new_args.push(other.clone()),
                }
            }
            Some(if same {
                p.clone()
            } else {
                Arc::new(Proc::Invoke {
                    def: *def,
                    args: new_args,
                })
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::symbol::{Res, Symbol};
    use crate::term::{act, choice, evt_send, invoke, nil, par, restrict, scope};

    fn cpu() -> Res {
        Res::new("cpu")
    }

    fn chain(n: usize) -> P {
        let mut p = evt_send(Symbol::new("done"), 1, nil());
        for _ in 0..n {
            p = act([(cpu(), 1)], p);
        }
        p
    }

    #[test]
    fn roundtrip_is_identity_and_shares_the_arc_spine() {
        let mut env = Env::new();
        let idle = env.declare("Idle", 1);
        let p = par([
            scope(
                chain(5),
                TimeBound::Finite(Expr::c(9)),
                Some((Symbol::new("done"), nil())),
                Some(nil()),
                None,
            ),
            restrict(invoke(idle, [Expr::c(4)]), [Symbol::new("done")]),
        ]);
        let f = factor(&p);
        assert_eq!(f.values, vec![9, 5, 4]);
        let r = rebuild(&p, &f.values).expect("roundtrip");
        assert!(Arc::ptr_eq(&r, &p), "identity rebuild must share the root Arc");
    }

    #[test]
    fn shape_digest_ignores_time_parameters_only() {
        let a = scope(chain(7), TimeBound::Finite(Expr::c(20)), None, Some(nil()), None);
        let b = scope(chain(2), TimeBound::Finite(Expr::c(13)), None, Some(nil()), None);
        assert_eq!(factor(&a).digest, factor(&b).digest);
        // A frozen difference (another resource) is another shape.
        let c = scope(
            act([(Res::new("bus"), 1)], nil()),
            TimeBound::Finite(Expr::c(20)),
            None,
            Some(nil()),
            None,
        );
        assert_ne!(factor(&a).digest, factor(&c).digest);
    }

    #[test]
    fn rebuild_moves_between_vectors() {
        let p = scope(chain(7), TimeBound::Finite(Expr::c(20)), None, Some(nil()), None);
        let q = rebuild(&p, &[13, 2]).expect("rebuild");
        let expected = scope(chain(2), TimeBound::Finite(Expr::c(13)), None, Some(nil()), None);
        assert_eq!(q, expected);
        // And back again, from the rebuilt template.
        let back = rebuild(&q, &[20, 7]).expect("rebuild back");
        assert_eq!(back, p);
    }

    #[test]
    fn shrunk_chains_reuse_the_template_suffix() {
        let p = chain(10);
        let q = rebuild(&p, &[4]).expect("rebuild");
        // The 4-chain is a physical subterm of the 10-chain.
        let mut cur = &p;
        for _ in 0..6 {
            match &**cur {
                Proc::Act { next, .. } => cur = next,
                _ => panic!("chain shorter than built"),
            }
        }
        assert!(Arc::ptr_eq(&q, cur));
    }

    #[test]
    fn invalid_vectors_are_refused() {
        let p = chain(3);
        assert!(rebuild(&p, &[]).is_none(), "missing hole value");
        assert!(rebuild(&p, &[2, 9]).is_none(), "excess hole value");
        assert!(rebuild(&p, &[0]).is_none(), "empty chain");
        assert!(rebuild(&p, &[-3]).is_none(), "negative chain");
        assert!(rebuild(&p, &[MAX_CHAIN + 1]).is_none(), "absurd chain");
    }

    #[test]
    fn mixed_action_chains_split_at_the_frozen_boundary() {
        // cpu,cpu,bus,cpu → holes [2,1,1]: the bus action breaks the chain.
        let bus = Res::new("bus");
        let p = act(
            [(cpu(), 1)],
            act([(cpu(), 1)], act([(bus, 1)], act([(cpu(), 1)], nil()))),
        );
        let f = factor(&p);
        assert_eq!(f.values, vec![2, 1, 1]);
        assert_eq!(rebuild(&p, &f.values).unwrap(), p);
    }

    #[test]
    fn choice_arity_is_frozen() {
        let a = choice([chain(2), nil()]);
        let b = choice([chain(2), nil(), nil()]);
        assert_ne!(factor(&a).digest, factor(&b).digest);
    }
}
