//! Hash-cached process terms for O(1) visited-set probes.
//!
//! Interning a state during exploration requires hashing its term. Ground
//! ACSR terms are deep trees, so the derived [`Hash`] walk is linear in the
//! term size — and the explorer probes the visited set once per *transition*,
//! re-walking deep terms over and over (and again for every key whenever the
//! map rehashes on growth). [`HashedP`] computes a structural FNV-1a hash
//! **once at construction** and reuses it for every subsequent probe:
//! hashing a `HashedP` writes the cached 64-bit digest, and equality
//! short-circuits on digest mismatch (then on `Arc` pointer identity) before
//! falling back to the deep structural comparison.
//!
//! The digest is *deterministic within a process* (FNV-1a over the derived
//! structural hash, no random keys), so hash-derived decisions downstream —
//! e.g. which shard of a sharded visited set a term lands in — are
//! reproducible run to run.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::term::{Proc, P};

/// A 64-bit FNV-1a [`Hasher`]: deterministic (no per-process random keys),
/// allocation-free, and good enough for structural term digests.
///
/// # Examples
///
/// ```
/// use std::hash::Hasher;
///
/// let mut h = acsr::hashed::Fnv1a::new();
/// h.write(b"abc");
/// let once = h.finish();
/// let mut h2 = acsr::hashed::Fnv1a::new();
/// h2.write(b"abc");
/// assert_eq!(once, h2.finish()); // deterministic across hashers and runs
/// ```
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The structural FNV-1a digest of a term: one full walk, the walk
/// [`HashedP`] performs once and then never repeats.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::hashed::structural_hash;
///
/// let a = act([(Res::new("cpu"), 1)], nil());
/// let b = act([(Res::new("cpu"), 1)], nil());
/// assert_eq!(structural_hash(&a), structural_hash(&b)); // structural, not pointer
/// assert_ne!(structural_hash(&a), structural_hash(&nil()));
/// ```
pub fn structural_hash(p: &Proc) -> u64 {
    let mut h = Fnv1a::new();
    p.hash(&mut h);
    h.finish()
}

/// A process term bundled with its precomputed structural hash.
///
/// Use this as the key type of visited sets / interners: construction pays
/// the one linear hash walk, after which
///
/// * [`Hash`] is O(1) — it writes the cached digest;
/// * [`PartialEq`] short-circuits on digest mismatch, then on `Arc` pointer
///   identity, before the deep structural comparison;
/// * map rehashing (growth) never re-walks terms.
///
/// # Examples
///
/// ```
/// use acsr::prelude::*;
/// use acsr::hashed::HashedP;
/// use std::collections::HashMap;
///
/// let term = act([(Res::new("cpu"), 1)], nil());
/// let key = HashedP::new(term.clone());
/// assert_eq!(key.term(), &term);
///
/// let mut visited: HashMap<HashedP, u32> = HashMap::new();
/// visited.insert(key, 0);
/// // A structurally equal term built independently probes to the same entry.
/// let probe = HashedP::new(act([(Res::new("cpu"), 1)], nil()));
/// assert_eq!(visited.get(&probe), Some(&0));
/// ```
#[derive(Clone, Debug)]
pub struct HashedP {
    hash: u64,
    term: P,
}

impl HashedP {
    /// Wrap `term`, paying its single structural hash walk now.
    pub fn new(term: P) -> HashedP {
        HashedP {
            hash: structural_hash(&term),
            term,
        }
    }

    /// Wrap `term` with a *caller-supplied* digest instead of the structural
    /// one — a **testing** hook for forcing digest collisions. Two `HashedP`s
    /// built with the same forced digest but different structures must still
    /// compare unequal (equality falls through to the deep comparison);
    /// property tests pin exactly that.
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    /// use acsr::hashed::HashedP;
    ///
    /// let a = HashedP::with_digest(act([(Res::new("cpu"), 1)], nil()), 42);
    /// let b = HashedP::with_digest(act([(Res::new("cpu"), 2)], nil()), 42);
    /// assert_eq!(a.digest(), b.digest());
    /// assert_ne!(a, b); // deep comparison still tells them apart
    /// ```
    pub fn with_digest(term: P, digest: u64) -> HashedP {
        HashedP { hash: digest, term }
    }

    /// The cached structural digest.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// The wrapped term.
    pub fn term(&self) -> &P {
        &self.term
    }

    /// Unwrap into the term, discarding the cache.
    pub fn into_term(self) -> P {
        self.term
    }
}

impl PartialEq for HashedP {
    fn eq(&self, other: &HashedP) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.term, &other.term) || self.term == other.term)
    }
}

impl Eq for HashedP {}

impl Hash for HashedP {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    #[test]
    fn digest_is_structural_and_deterministic() {
        let a = HashedP::new(act([(cpu(), 1)], act([(cpu(), 2)], nil())));
        let b = HashedP::new(act([(cpu(), 1)], act([(cpu(), 2)], nil())));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        let c = HashedP::new(act([(cpu(), 3)], nil()));
        assert_ne!(a, c);
    }

    #[test]
    fn shared_arcs_compare_by_pointer_fast_path() {
        let term = par([act([(cpu(), 1)], nil()), nil()]);
        let a = HashedP::new(term.clone());
        let b = HashedP::new(term);
        assert!(Arc::ptr_eq(a.term(), b.term()));
        assert_eq!(a, b);
    }

    #[test]
    fn hashmap_probes_use_the_cached_digest() {
        use std::collections::HashMap;
        let mut m: HashMap<HashedP, usize> = HashMap::new();
        for i in 0..64 {
            m.insert(HashedP::new(act([(cpu(), i)], nil())), i as usize);
        }
        for i in 0..64 {
            let probe = HashedP::new(act([(cpu(), i)], nil()));
            assert_eq!(m.get(&probe), Some(&(i as usize)));
        }
        assert!(m.get(&HashedP::new(nil())).is_none());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        use std::hash::Hasher;
        // FNV-1a 64 reference: fnv1a("") = offset basis, fnv1a("a") = 0xaf63dc4c8601ec8c.
        let empty = Fnv1a::new();
        assert_eq!(empty.finish(), 0xCBF2_9CE4_8422_2325);
        let mut a = Fnv1a::new();
        a.write(b"a");
        assert_eq!(a.finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn into_term_round_trips() {
        let term = act([(cpu(), 1)], nil());
        let hp = HashedP::new(term.clone());
        assert_eq!(hp.into_term(), term);
    }
}
