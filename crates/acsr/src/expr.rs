//! Integer and boolean expressions over process parameters.
//!
//! ACSR processes may carry *dynamic parameters* — bounded integer variables
//! that record execution history (§3 of the paper: "these dynamic parameters
//! are used as variables that keep the history of the execution — for example,
//! the progress of time"). The compute process of Fig. 5 is indexed by the
//! accumulated execution time `e` and the elapsed time `t`; guards such as
//! `e < cmax - 1` select the available transitions, and dynamic-priority
//! scheduling policies (EDF, LLF; §5) use *priority expressions* such as
//! `dmax - (d - t)` over those parameters.
//!
//! Expressions appear in process *templates* (the bodies of definitions in an
//! [`Env`](crate::env::Env)). When a parameterized process is invoked with
//! concrete arguments the whole body is substituted, which evaluates every
//! expression to a constant — reachable process terms are always *ground*.

use std::fmt;
use std::sync::Arc;

/// An error produced when evaluating an expression that still references a
/// parameter in a context where no parameter environment is available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Index of the unbound parameter.
    pub param: u8,
    /// Number of arguments that were supplied.
    pub supplied: usize,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression references parameter #{} but only {} argument(s) are bound",
            self.param, self.supplied
        )
    }
}

impl std::error::Error for EvalError {}

/// An integer expression over the parameters of the enclosing process
/// definition.
///
/// The builder methods intentionally mirror the arithmetic operator names
/// (`add`, `sub`, `mul`) — they build expression trees rather than computing.
///
/// `Param(i)` refers to the `i`-th formal parameter. Arithmetic is signed
/// 64-bit with saturating behaviour to keep analysis total (generated models
/// use small bounded values, so saturation is never reached in practice).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(i64),
    /// The value of the `i`-th parameter of the enclosing definition.
    Param(u8),
    /// Sum of two expressions.
    Add(Arc<Expr>, Arc<Expr>),
    /// Difference of two expressions.
    Sub(Arc<Expr>, Arc<Expr>),
    /// Product of two expressions.
    Mul(Arc<Expr>, Arc<Expr>),
    /// Minimum of two expressions.
    Min(Arc<Expr>, Arc<Expr>),
    /// Maximum of two expressions.
    Max(Arc<Expr>, Arc<Expr>),
}

#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Literal constant.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Reference to parameter `i`.
    pub fn p(i: u8) -> Expr {
        Expr::Param(i)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Arc::new(self), Arc::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Arc::new(self), Arc::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Arc::new(self), Arc::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Min(Arc::new(self), Arc::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Max(Arc::new(self), Arc::new(rhs))
    }

    /// Evaluate under the given parameter values.
    pub fn eval(&self, args: &[i64]) -> Result<i64, EvalError> {
        Ok(match self {
            Expr::Const(v) => *v,
            Expr::Param(i) => *args.get(*i as usize).ok_or(EvalError {
                param: *i,
                supplied: args.len(),
            })?,
            Expr::Add(a, b) => a.eval(args)?.saturating_add(b.eval(args)?),
            Expr::Sub(a, b) => a.eval(args)?.saturating_sub(b.eval(args)?),
            Expr::Mul(a, b) => a.eval(args)?.saturating_mul(b.eval(args)?),
            Expr::Min(a, b) => a.eval(args)?.min(b.eval(args)?),
            Expr::Max(a, b) => a.eval(args)?.max(b.eval(args)?),
        })
    }

    /// Evaluate in a ground context (no parameters bound).
    pub fn eval_ground(&self) -> Result<i64, EvalError> {
        self.eval(&[])
    }

    /// True if the expression is a literal constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Const(_))
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Const(v)
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Expr {
        Expr::Const(v as i64)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::Const(v as i64)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Param(i) => write!(f, "p{i}"),
            Expr::Add(a, b) => write!(f, "({a:?} + {b:?})"),
            Expr::Sub(a, b) => write!(f, "({a:?} - {b:?})"),
            Expr::Mul(a, b) => write!(f, "({a:?} * {b:?})"),
            Expr::Min(a, b) => write!(f, "min({a:?}, {b:?})"),
            Expr::Max(a, b) => write!(f, "max({a:?}, {b:?})"),
        }
    }
}

/// A boolean expression over process parameters, used as a transition guard.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BExpr {
    /// Constant truth value.
    Const(bool),
    /// `a < b`.
    Lt(Expr, Expr),
    /// `a <= b`.
    Le(Expr, Expr),
    /// `a == b`.
    Eq(Expr, Expr),
    /// `a != b`.
    Ne(Expr, Expr),
    /// Conjunction.
    And(Arc<BExpr>, Arc<BExpr>),
    /// Disjunction.
    Or(Arc<BExpr>, Arc<BExpr>),
    /// Negation.
    Not(Arc<BExpr>),
}

#[allow(clippy::should_implement_trait)]
impl BExpr {
    /// The constant `true`.
    pub fn t() -> BExpr {
        BExpr::Const(true)
    }

    /// The constant `false`.
    pub fn f() -> BExpr {
        BExpr::Const(false)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> BExpr {
        BExpr::Lt(a, b)
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> BExpr {
        BExpr::Le(a, b)
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> BExpr {
        BExpr::Lt(b, a)
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> BExpr {
        BExpr::Le(b, a)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> BExpr {
        BExpr::Eq(a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> BExpr {
        BExpr::Ne(a, b)
    }

    /// Conjunction.
    pub fn and(self, rhs: BExpr) -> BExpr {
        BExpr::And(Arc::new(self), Arc::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: BExpr) -> BExpr {
        BExpr::Or(Arc::new(self), Arc::new(rhs))
    }

    /// Negation.
    pub fn not(self) -> BExpr {
        BExpr::Not(Arc::new(self))
    }

    /// Evaluate under the given parameter values.
    pub fn eval(&self, args: &[i64]) -> Result<bool, EvalError> {
        Ok(match self {
            BExpr::Const(b) => *b,
            BExpr::Lt(a, b) => a.eval(args)? < b.eval(args)?,
            BExpr::Le(a, b) => a.eval(args)? <= b.eval(args)?,
            BExpr::Eq(a, b) => a.eval(args)? == b.eval(args)?,
            BExpr::Ne(a, b) => a.eval(args)? != b.eval(args)?,
            BExpr::And(a, b) => a.eval(args)? && b.eval(args)?,
            BExpr::Or(a, b) => a.eval(args)? || b.eval(args)?,
            BExpr::Not(a) => !a.eval(args)?,
        })
    }
}

impl fmt::Debug for BExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BExpr::Const(b) => write!(f, "{b}"),
            BExpr::Lt(a, b) => write!(f, "({a:?} < {b:?})"),
            BExpr::Le(a, b) => write!(f, "({a:?} <= {b:?})"),
            BExpr::Eq(a, b) => write!(f, "({a:?} == {b:?})"),
            BExpr::Ne(a, b) => write!(f, "({a:?} != {b:?})"),
            BExpr::And(a, b) => write!(f, "({a:?} && {b:?})"),
            BExpr::Or(a, b) => write!(f, "({a:?} || {b:?})"),
            BExpr::Not(a) => write!(f, "!{a:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_evaluates() {
        // 2 * p0 + (p1 - 1)
        let e = Expr::c(2).mul(Expr::p(0)).add(Expr::p(1).sub(Expr::c(1)));
        assert_eq!(e.eval(&[3, 10]).unwrap(), 15);
    }

    #[test]
    fn min_max_evaluate() {
        let e = Expr::p(0).min(Expr::c(5)).max(Expr::c(0));
        assert_eq!(e.eval(&[7]).unwrap(), 5);
        assert_eq!(e.eval(&[-3]).unwrap(), 0);
        assert_eq!(e.eval(&[2]).unwrap(), 2);
    }

    #[test]
    fn unbound_parameter_is_an_error() {
        let e = Expr::p(2);
        let err = e.eval(&[1, 2]).unwrap_err();
        assert_eq!(err.param, 2);
        assert_eq!(err.supplied, 2);
        assert!(e.eval_ground().is_err());
    }

    #[test]
    fn edf_priority_expression() {
        // πi = dmax - (di - t): the earlier the absolute deadline, the larger
        // the priority (§5 of the paper). Here dmax = 50, di = 20, t = p0.
        let pi = Expr::c(50).sub(Expr::c(20).sub(Expr::p(0)));
        assert_eq!(pi.eval(&[0]).unwrap(), 30);
        assert_eq!(pi.eval(&[15]).unwrap(), 45); // closer to deadline ⇒ higher
    }

    #[test]
    fn guards_evaluate() {
        // cmin - 1 < e && e < cmax   with cmin=2, cmax=5, e = p0
        let g = BExpr::lt(Expr::c(1), Expr::p(0)).and(BExpr::lt(Expr::p(0), Expr::c(5)));
        assert!(!g.eval(&[1]).unwrap());
        assert!(g.eval(&[2]).unwrap());
        assert!(g.eval(&[4]).unwrap());
        assert!(!g.eval(&[5]).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let g = BExpr::eq(Expr::p(0), Expr::c(0))
            .or(BExpr::ne(Expr::p(0), Expr::p(0)))
            .not();
        assert!(!g.eval(&[0]).unwrap());
        assert!(g.eval(&[1]).unwrap());
    }

    #[test]
    fn saturating_arithmetic_never_panics() {
        let e = Expr::c(i64::MAX).add(Expr::c(1));
        assert_eq!(e.eval_ground().unwrap(), i64::MAX);
        let e = Expr::c(i64::MIN).sub(Expr::c(1));
        assert_eq!(e.eval_ground().unwrap(), i64::MIN);
        let e = Expr::c(i64::MAX).mul(Expr::c(2));
        assert_eq!(e.eval_ground().unwrap(), i64::MAX);
    }
}
