//! # ACSR — the Algebra of Communicating Shared Resources
//!
//! A from-scratch Rust implementation of the real-time process algebra ACSR
//! (Lee, Brémond-Grégoire, Gerber, *Proceedings of the IEEE*, 1994), as used by
//! Sokolsky, Lee & Clarke, *Schedulability Analysis of AADL Models* (IPDPS 2006)
//! for the formal analysis of AADL architectural models.
//!
//! ACSR is a discrete-time process algebra in which **resources** are a
//! first-class semantic notion. Processes take two kinds of steps:
//!
//! * **Timed actions** — sets of `(resource, priority)` pairs. An action takes
//!   exactly one time quantum and requires exclusive access to every resource it
//!   names. Time is global: in a parallel composition every component must
//!   contribute a timed action for time to advance (rule *Par3* requires the
//!   resource sets to be disjoint). The empty action `{}` is *idling*.
//! * **Instantaneous events** — CCS-style send/receive communication `(e!, p)` /
//!   `(e?, p)` with priorities, synchronising into an internal step `τ@e`.
//!
//! A **preemption relation** over labels (see [`prio`]) removes lower-priority
//! alternatives from the transition relation; this is the mechanism by which
//! scheduling disciplines are encoded (the priority of the access to the
//! processor resource *is* the scheduling priority).
//!
//! ## Crate layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`symbol`] | interned names for events, resources, processes |
//! | [`expr`]   | integer/boolean expressions over process parameters |
//! | [`term`]   | the process term language (prefix, choice, parallel, scope, restriction, closure, recursion) |
//! | [`mod@env`] | process definitions, parameterized recursion, provenance tags |
//! | [`hashed`] | hash-cached terms ([`HashedP`]) for O(1) visited-set probes |
//! | [`store`]  | the hash-consed term store ([`TermStore`]): one canonical `Arc` and one [`TermId`] per structure |
//! | [`label`]  | ground transition labels |
//! | [`step`]   | the unprioritized operational semantics, plain ([`steps`]) and interned + memoized ([`StepSession`]) |
//! | [`prio`]   | the preemption relation and the prioritized transition relation |
//! | [`zone`]   | delay zones: forced-run detection and bulk time advance over interned terms |
//! | [`pretty`] | display of terms and labels in VERSA-like notation |
//!
//! ## Example — the first steps of the `Simple` process of Fig. 2 of the paper
//!
//! ```
//! use acsr::prelude::*;
//!
//! let mut env = Env::new();
//! let cpu = Res::new("cpu");
//! let bus = Res::new("bus");
//! let done = Symbol::new("done");
//!
//! // Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : (done!,1) . Simple
//! let simple = env.declare("Simple", 0);
//! env.set_body(
//!     simple,
//!     act(
//!         [(cpu, 1)],
//!         act([(cpu, 1), (bus, 1)], evt_send(done, 1, invoke(simple, []))),
//!     ),
//! );
//! let p = invoke(simple, []);
//! let steps = prioritized_steps(&env, &p);
//! assert_eq!(steps.len(), 1); // only the first computation step is offered
//! ```

pub mod advance;
pub mod env;
pub mod expr;
pub mod hashed;
pub mod skeleton;
pub mod label;
pub mod pretty;
pub mod prio;
pub mod runner;
pub mod stable;
pub mod step;
pub mod store;
pub mod symbol;
pub mod term;
pub mod zone;

pub use advance::{Advance, AdvanceCache, AdvanceStats};
pub use env::{DefId, Env, ProcDef, TagId};
pub use expr::{BExpr, EvalError, Expr};
pub use hashed::{structural_hash, HashedP};
pub use label::{Dir, GAction, Label};
pub use prio::{preempts, prioritize, prioritized_steps};
pub use runner::{forced_run_closed, RunEnd, RunOutcome, RunSeg};
pub use stable::{env_fingerprint, stable_digest};
pub use step::{steps, MemoConfig, MemoStats, StepSession};
pub use store::{Interned, TermId, TermStore};
pub use symbol::{Res, Symbol};
pub use term::{
    act, act_tagged, choice, close, evt_recv, evt_send, guard, invoke, nil, par, restrict, scope,
    tau, ActionT, EvKind, EventT, Proc, TimeBound, P,
};
pub use zone::{delay_bound, forced_run, step_delay, ForcedRun};

/// Commonly used items, for glob import in tests and downstream crates.
pub mod prelude {
    pub use crate::env::{DefId, Env, TagId};
    pub use crate::expr::{BExpr, Expr};
    pub use crate::label::{Dir, GAction, Label};
    pub use crate::prio::{preempts, prioritized_steps};
    pub use crate::step::steps;
    pub use crate::symbol::{Res, Symbol};
    pub use crate::term::{
        act, act_tagged, choice, close, evt_recv, evt_send, guard, invoke, nil, par, restrict,
        scope, tau, ActionT, EvKind, EventT, Proc, TimeBound, P,
    };
}
