//! Ground transition labels.
//!
//! The operational semantics (see [`step`](crate::step)) labels every
//! transition with either a ground timed action — a finite map from resources
//! to (constant) priorities, plus the provenance tags contributed by the
//! components that acted — or an instantaneous event (`e!` / `e?` with a
//! priority) or an internal step `τ@e`.

use std::fmt;
use std::sync::Arc;

use crate::env::TagId;
use crate::expr::EvalError;
use crate::symbol::{Res, Symbol};
use crate::term::ActionT;

/// Direction of a visible event.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Dir {
    /// Output `e!`.
    Send,
    /// Input `e?`.
    Recv,
}

/// A ground timed action: sorted, duplicate-free resource/priority pairs and
/// the provenance tags of the prefixes that composed it.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GAction {
    /// `(resource, priority)` pairs sorted by resource.
    pub uses: Box<[(Res, u32)]>,
    /// Provenance tags from all contributing components (insertion order).
    pub tags: Box<[TagId]>,
}

/// Error produced when grounding an action template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionError {
    /// An expression in the template referenced an unbound parameter.
    Eval(EvalError),
    /// The same resource appears twice in one action.
    DuplicateResource(Res),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::Eval(e) => write!(f, "{e}"),
            ActionError::DuplicateResource(r) => {
                write!(f, "resource {r} appears twice in a single action")
            }
        }
    }
}

impl std::error::Error for ActionError {}

impl From<EvalError> for ActionError {
    fn from(e: EvalError) -> Self {
        ActionError::Eval(e)
    }
}

impl GAction {
    /// The idling action `{}`.
    pub fn idle() -> GAction {
        GAction {
            uses: Box::new([]),
            tags: Box::new([]),
        }
    }

    /// Ground an action template in a context with no parameters bound.
    /// Negative evaluated priorities are clamped to 0 (priority expressions of
    /// dynamic policies are non-negative by construction; clamping keeps the
    /// semantics total).
    pub fn from_template(t: &ActionT, tag: Option<TagId>) -> Result<GAction, ActionError> {
        let mut uses: Vec<(Res, u32)> = Vec::with_capacity(t.uses.len());
        for (r, e) in &t.uses {
            let v = e.eval_ground()?;
            let prio = u32::try_from(v.max(0)).unwrap_or(u32::MAX);
            uses.push((*r, prio));
        }
        uses.sort_unstable_by_key(|(r, _)| *r);
        for w in uses.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ActionError::DuplicateResource(w[0].0));
            }
        }
        Ok(GAction {
            uses: uses.into_boxed_slice(),
            tags: tag.map(|t| vec![t]).unwrap_or_default().into_boxed_slice(),
        })
    }

    /// The resource set ρ(A).
    pub fn resources(&self) -> impl Iterator<Item = Res> + '_ {
        self.uses.iter().map(|(r, _)| *r)
    }

    /// Number of resources used.
    pub fn len(&self) -> usize {
        self.uses.len()
    }

    /// True when this is the idling action `{}`.
    pub fn is_empty(&self) -> bool {
        self.uses.is_empty()
    }

    /// Priority of access to `r`, or 0 when `r ∉ ρ(A)` (the convention used by
    /// the preemption relation).
    pub fn prio_of(&self, r: Res) -> u32 {
        match self.uses.binary_search_by_key(&r, |(res, _)| *res) {
            Ok(i) => self.uses[i].1,
            Err(_) => 0,
        }
    }

    /// True when `r ∈ ρ(A)`.
    pub fn uses_resource(&self, r: Res) -> bool {
        self.uses.binary_search_by_key(&r, |(res, _)| *res).is_ok()
    }

    /// Merge two actions taken simultaneously by parallel components.
    /// Returns `None` when the resource sets overlap (rule *Par3* requires
    /// disjointness).
    pub fn merge(&self, other: &GAction) -> Option<GAction> {
        let mut uses = Vec::with_capacity(self.uses.len() + other.uses.len());
        let (mut i, mut j) = (0, 0);
        while i < self.uses.len() && j < other.uses.len() {
            match self.uses[i].0.cmp(&other.uses[j].0) {
                std::cmp::Ordering::Less => {
                    uses.push(self.uses[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    uses.push(other.uses[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => return None,
            }
        }
        uses.extend_from_slice(&self.uses[i..]);
        uses.extend_from_slice(&other.uses[j..]);
        let mut tags = Vec::with_capacity(self.tags.len() + other.tags.len());
        tags.extend_from_slice(&self.tags);
        tags.extend_from_slice(&other.tags);
        Some(GAction {
            uses: uses.into_boxed_slice(),
            tags: tags.into_boxed_slice(),
        })
    }
}

/// A ground transition label.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Label {
    /// A timed action (one quantum).
    A(Arc<GAction>),
    /// A visible instantaneous event.
    E {
        /// The event's name.
        label: Symbol,
        /// Send or receive.
        dir: Dir,
        /// Priority of the communication.
        prio: u32,
    },
    /// An internal step, possibly remembering the event that produced it
    /// (written `τ@name` in the paper).
    Tau {
        /// Priority (sum of the synchronising parties' priorities).
        prio: u32,
        /// The event name for `τ@name`, if any.
        via: Option<Symbol>,
    },
}

impl Label {
    /// True when the label is a timed action (advances the global clock).
    pub fn is_timed(&self) -> bool {
        matches!(self, Label::A(_))
    }

    /// True when the label is an internal step.
    pub fn is_tau(&self) -> bool {
        matches!(self, Label::Tau { .. })
    }

    /// The action payload, when timed.
    pub fn action(&self) -> Option<&GAction> {
        match self {
            Label::A(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn r(name: &str) -> Res {
        Res::new(name)
    }

    #[test]
    fn grounding_sorts_and_checks_duplicates() {
        let t = ActionT {
            uses: vec![(r("zz"), Expr::c(1)), (r("aa"), Expr::c(2))],
        };
        let g = GAction::from_template(&t, None).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.uses.windows(2).all(|w| w[0].0 < w[1].0));

        let dup = ActionT {
            uses: vec![(r("cpu"), Expr::c(1)), (r("cpu"), Expr::c(2))],
        };
        assert!(matches!(
            GAction::from_template(&dup, None),
            Err(ActionError::DuplicateResource(_))
        ));
    }

    #[test]
    fn negative_priorities_clamp_to_zero() {
        let t = ActionT {
            uses: vec![(r("cpu"), Expr::c(-5))],
        };
        let g = GAction::from_template(&t, None).unwrap();
        assert_eq!(g.prio_of(r("cpu")), 0);
    }

    #[test]
    fn prio_of_absent_resource_is_zero() {
        let g = GAction::idle();
        assert_eq!(g.prio_of(r("cpu")), 0);
        assert!(!g.uses_resource(r("cpu")));
        assert!(g.is_empty());
    }

    #[test]
    fn merge_requires_disjoint_resources() {
        let a = GAction::from_template(
            &ActionT {
                uses: vec![(r("cpu1"), Expr::c(1))],
            },
            None,
        )
        .unwrap();
        let b = GAction::from_template(
            &ActionT {
                uses: vec![(r("bus"), Expr::c(2))],
            },
            None,
        )
        .unwrap();
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.prio_of(r("cpu1")), 1);
        assert_eq!(merged.prio_of(r("bus")), 2);

        // Overlap ⇒ no joint step (Par3).
        assert!(merged.merge(&a).is_none());
    }

    #[test]
    fn merge_with_idle_is_identity_on_resources() {
        let a = GAction::from_template(
            &ActionT {
                uses: vec![(r("cpu1"), Expr::c(3))],
            },
            None,
        )
        .unwrap();
        let merged = a.merge(&GAction::idle()).unwrap();
        assert_eq!(merged.uses, a.uses);
    }

    #[test]
    fn label_queries() {
        let a = Label::A(Arc::new(GAction::idle()));
        assert!(a.is_timed());
        assert!(!a.is_tau());
        assert!(a.action().unwrap().is_empty());
        let t = Label::Tau {
            prio: 2,
            via: Some(Symbol::new("dispatch")),
        };
        assert!(t.is_tau());
        assert!(!t.is_timed());
        assert!(t.action().is_none());
    }
}
