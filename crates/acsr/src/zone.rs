//! Delay zones: collapsing *forced* runs of the prioritized step relation.
//!
//! The quantum engine pays one transition per time quantum, so the explored
//! state count of a periodic task model scales with the hyperperiod — the
//! source paper's own scalability wall (§7). Most of those states are
//! *forced*: after prioritization exactly one step remains (an idling system
//! waiting for the next dispatch, the sole runnable task computing with every
//! competitor preempted away), so the state contributes nothing to the
//! branching structure that deadlock detection actually searches.
//!
//! This module detects such runs and lets an explorer traverse them as a
//! single *delay step* of multiplicity `d`:
//!
//! * [`delay_bound`] — the largest `d ≥ 1` such that the next `d` quanta are
//!   forced *timed* steps: at every state strictly inside the interval the
//!   prioritized step relation offers exactly one successor and that
//!   successor is a timed action. No task release, deadline expiry,
//!   preemption boundary, or lock acquire/release can occur strictly inside
//!   the interval — any of those would either add a second prioritized
//!   alternative or replace the timed step with an instantaneous one, ending
//!   the bound *at* that instant (never past it).
//! * [`step_delay`] — the bulk advance: `step_delay(d)` produces exactly the
//!   interned term that `d` unit steps produce, because it *is* `d` unit
//!   steps — each quantum of the run is re-derived and verified to still be
//!   forced. Zone soundness is therefore by construction, not by a separate
//!   side-condition analysis that could drift from the step relation.
//! * [`forced_run`] — the generalization the zone explorer uses at frontier
//!   expansion: a maximal chain of *singleton* prioritized successors of any
//!   label kind (timed or instantaneous). A state strictly inside such a
//!   chain has out-degree exactly one, so it can neither deadlock nor branch;
//!   every behaviour of the system flows through the chain's endpoint, and
//!   the full per-quantum step sequence is returned so counterexample traces
//!   re-expand to the concrete timeline.
//!
//! Runs are bounded by a caller-supplied `cap` (a cancellation/ memory
//! granularity knob — a longer forced run simply becomes several chained
//! delay steps) and by a cycle guard: a run that returns to a state it
//! already visited stops there, leaving the cycle to the explorer's visited
//! set.

use std::collections::HashSet;

use crate::label::Label;
use crate::step::StepSession;
use crate::store::{Interned, TermId};

/// A maximal forced run: the per-quantum steps from some entry state to the
/// first state that is *not* forced (branches, deadlocks, or closes a cycle).
///
/// Produced by [`forced_run`]; `steps` is never empty and the final step's
/// target is the run's endpoint.
#[derive(Clone, Debug)]
pub struct ForcedRun {
    /// The per-quantum `(label, target)` steps, in order. Interior states —
    /// every target but the last — have exactly one prioritized successor.
    pub steps: Vec<(Label, Interned)>,
    /// How many of the steps are timed actions (quanta of real time); the
    /// rest are forced instantaneous synchronisations.
    pub quanta: u64,
}

impl ForcedRun {
    /// The state the run ends in (the first non-forced state reached).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use acsr::prelude::*;
    /// use acsr::{MemoConfig, StepSession, TermStore, zone};
    ///
    /// let env = Env::new();
    /// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
    /// let p = session.intern(&act([(Res::new("cpu"), 1)], nil()));
    /// let run = zone::forced_run(&session, &p, 16).unwrap();
    /// assert!(matches!(&**run.endpoint().term(), acsr::Proc::Nil));
    /// ```
    pub fn endpoint(&self) -> &Interned {
        &self.steps.last().expect("forced runs are never empty").1
    }

    /// Number of steps in the run (its length as a concrete trace fragment).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use acsr::prelude::*;
    /// use acsr::{MemoConfig, StepSession, TermStore, zone};
    ///
    /// let env = Env::new();
    /// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
    /// let p = session.intern(&act([(Res::new("cpu"), 1)], act([(Res::new("cpu"), 1)], nil())));
    /// assert_eq!(zone::forced_run(&session, &p, 16).unwrap().len(), 2);
    /// ```
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always false — a forced run has at least one step by construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use acsr::prelude::*;
    /// use acsr::{MemoConfig, StepSession, TermStore, zone};
    ///
    /// let env = Env::new();
    /// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
    /// let p = session.intern(&act([(Res::new("cpu"), 1)], nil()));
    /// assert!(!zone::forced_run(&session, &p, 16).unwrap().is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The single prioritized successor of `t`, when there is exactly one.
fn unique_step(session: &StepSession<'_>, t: &Interned) -> Option<(Label, Interned)> {
    let mut steps = session.prioritized_steps(t);
    if steps.len() == 1 {
        steps.pop()
    } else {
        None
    }
}

/// The maximal forced run out of `entry`, or `None` when `entry` itself is
/// not forced (zero or several prioritized successors).
///
/// The run extends while every reached state has exactly one prioritized
/// successor, up to `cap` steps; it also stops when the next state would
/// revisit a state already on the run (including `entry`) — the cycle is
/// left to the caller's visited set. Because forcedness is re-verified at
/// every state, nothing can fire strictly inside the run: interior states
/// have out-degree exactly one, so they can neither deadlock nor offer an
/// alternative behaviour. `cap` values below 1 are treated as 1.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use acsr::prelude::*;
/// use acsr::{MemoConfig, StepSession, TermStore, zone};
///
/// let env = Env::new();
/// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
/// let cpu = Res::new("cpu");
/// // Three forced quanta to NIL collapse into one run…
/// let p = session.intern(&act([(cpu, 1)], act([(cpu, 1)], act([(cpu, 1)], nil()))));
/// let run = zone::forced_run(&session, &p, 1024).unwrap();
/// assert_eq!((run.len(), run.quanta), (3, 3));
/// // …while a genuine choice is not forced at all.
/// let branch = session.intern(&choice([
///     act([(cpu, 1)], nil()),
///     act([(Res::new("bus"), 1)], nil()),
/// ]));
/// assert!(zone::forced_run(&session, &branch, 1024).is_none());
/// ```
pub fn forced_run(session: &StepSession<'_>, entry: &Interned, cap: usize) -> Option<ForcedRun> {
    let cap = cap.max(1);
    let (label, target) = unique_step(session, entry)?;
    let mut seen: HashSet<TermId> = HashSet::new();
    seen.insert(entry.id());
    let mut quanta = u64::from(label.is_timed());
    let mut steps = vec![(label, target)];
    loop {
        let cur = &steps.last().expect("non-empty").1;
        if steps.len() >= cap || !seen.insert(cur.id()) {
            break;
        }
        match unique_step(session, cur) {
            Some((label, target)) => {
                quanta += u64::from(label.is_timed());
                steps.push((label, target));
            }
            None => break,
        }
    }
    Some(ForcedRun { steps, quanta })
}

/// The largest `d ≥ 1` (up to `cap`) such that the next `d` quanta of `t`
/// are forced *timed* steps, or `0` when `t` is not at the start of such an
/// interval (its prioritized successors are not exactly one timed action).
///
/// No task release, deadline expiry, preemption boundary, or lock
/// acquire/release can occur strictly inside the returned interval: each
/// would either introduce a second prioritized alternative or replace the
/// timed step with an instantaneous synchronisation, and either way the
/// bound ends *at* that state. A run that cycles back onto itself (a closed
/// idle loop) is forced forever; the bound is then `cap`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use acsr::prelude::*;
/// use acsr::{MemoConfig, StepSession, TermStore, zone};
///
/// let env = Env::new();
/// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
/// let cpu = Res::new("cpu");
/// let done = Symbol::new("done");
/// // Two forced quanta, then an instantaneous event ends the delay interval.
/// let p = session.intern(&act(
///     [(cpu, 1)],
///     act([(cpu, 1)], evt_send(done, 1, nil())),
/// ));
/// assert_eq!(zone::delay_bound(&session, &p, 1024), 2);
/// // NIL has no successors at all: no delay interval.
/// let dead = session.intern(&nil());
/// assert_eq!(zone::delay_bound(&session, &dead, 1024), 0);
/// ```
pub fn delay_bound(session: &StepSession<'_>, t: &Interned, cap: u64) -> u64 {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut cur = t.clone();
    let mut d = 0u64;
    while d < cap && seen.insert(cur.id()) {
        match unique_step(session, &cur) {
            Some((label, target)) if label.is_timed() => {
                d += 1;
                cur = target;
            }
            _ => return d,
        }
    }
    // Either the cap was reached or the run closed a cycle of forced timed
    // steps — in the latter case it is forced for every horizon, so the
    // cap is the honest answer to "how far may I advance".
    cap
}

/// Advance `t` by `d` forced timed quanta — the bulk form of `d` unit steps.
///
/// Returns the interned term that `d` applications of the (unique,
/// prioritized, timed) unit step produce, or `None` if forcedness breaks
/// before `d` quanta have elapsed, i.e. when `d > delay_bound(t)` for every
/// cap ≥ `d`. The result is *the same interned term* (`TermId` and all) a
/// quantum-by-quantum walk reaches, because each quantum is re-derived
/// through the same memoized step relation — the delay abstraction cannot
/// diverge from the concrete engine by construction.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use acsr::prelude::*;
/// use acsr::{MemoConfig, StepSession, TermStore, zone};
///
/// let env = Env::new();
/// let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
/// let cpu = Res::new("cpu");
/// let p = session.intern(&act([(cpu, 1)], act([(cpu, 1)], act([(cpu, 1)], nil()))));
/// // Bulk-advance two quanta, then compare against two unit steps.
/// let bulk = zone::step_delay(&session, &p, 2).unwrap();
/// let unit = {
///     let s1 = session.prioritized_steps(&p).pop().unwrap().1;
///     session.prioritized_steps(&s1).pop().unwrap().1
/// };
/// assert_eq!(bulk.id(), unit.id());
/// // Past the end of the forced interval the bulk advance refuses.
/// assert!(zone::step_delay(&session, &p, 4).is_none());
/// ```
pub fn step_delay(session: &StepSession<'_>, t: &Interned, d: u64) -> Option<Interned> {
    let mut cur = t.clone();
    for _ in 0..d {
        match unique_step(session, &cur) {
            Some((label, target)) if label.is_timed() => cur = target,
            _ => return None,
        }
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::expr::Expr;
    use crate::step::MemoConfig;
    use crate::store::TermStore;
    use crate::symbol::{Res, Symbol};
    use crate::term::{act, choice, evt_send, invoke, nil, scope, TimeBound};
    use std::sync::Arc;

    fn cpu() -> Res {
        Res::new("cpu")
    }

    fn session(env: &Env) -> StepSession<'_> {
        StepSession::new(env, Arc::new(TermStore::new()), MemoConfig::default())
    }

    #[test]
    fn forced_chain_collapses_and_matches_unit_steps() {
        let env = Env::new();
        let s = session(&env);
        let p = s.intern(&act([(cpu(), 1)], act([(cpu(), 1)], act([(cpu(), 1)], nil()))));
        let run = forced_run(&s, &p, 1024).expect("forced");
        assert_eq!(run.len(), 3);
        assert_eq!(run.quanta, 3);
        assert!(matches!(&**run.endpoint().term(), crate::term::Proc::Nil));
        // Every prefix of the run agrees with the concrete unit walk.
        let mut cur = p.clone();
        for (i, (label, target)) in run.steps.iter().enumerate() {
            let mut steps = s.prioritized_steps(&cur);
            assert_eq!(steps.len(), 1, "interior state {i} must stay forced");
            let (l, t) = steps.pop().unwrap();
            assert_eq!(&l, label);
            assert_eq!(t.id(), target.id());
            cur = t;
        }
    }

    #[test]
    fn branching_states_are_not_forced() {
        let env = Env::new();
        let s = session(&env);
        // Two incomparable timed actions (disjoint resources, equal
        // priorities): prioritization keeps both, so nothing is forced.
        let p = s.intern(&choice([
            act([(cpu(), 1)], nil()),
            act([(Res::new("bus"), 1)], nil()),
        ]));
        assert!(forced_run(&s, &p, 1024).is_none());
        assert_eq!(delay_bound(&s, &p, 1024), 0);
        assert!(step_delay(&s, &p, 1).is_none());
        // A deadlocked state has no steps at all.
        let dead = s.intern(&nil());
        assert!(forced_run(&s, &dead, 1024).is_none());
        assert_eq!(delay_bound(&s, &dead, 1024), 0);
        // …but advancing by zero quanta is the identity everywhere.
        assert_eq!(step_delay(&s, &dead, 0).unwrap().id(), dead.id());
    }

    #[test]
    fn events_end_the_delay_bound_but_extend_the_forced_run() {
        let env = Env::new();
        let s = session(&env);
        let done = Symbol::new("done");
        // cpu-quantum, cpu-quantum, done!, cpu-quantum, NIL. The naked send
        // is forced (its continuation is the only option) but instantaneous.
        let p = s.intern(&act(
            [(cpu(), 1)],
            act([(cpu(), 1)], evt_send(done, 1, act([(cpu(), 1)], nil()))),
        ));
        assert_eq!(delay_bound(&s, &p, 1024), 2);
        let run = forced_run(&s, &p, 1024).expect("forced");
        assert_eq!(run.len(), 4);
        assert_eq!(run.quanta, 3);
        assert!(run.steps[2].0.is_tau() || matches!(run.steps[2].0, Label::E { .. }));
    }

    #[test]
    fn scope_expiry_is_a_hard_boundary() {
        // An unbounded idle loop clipped by a 3-quantum scope whose timeout
        // continuation deadlocks: exactly 3 forced quanta, never 4 — the
        // "release exactly at the bound" shape (the scope stands in for a
        // period/deadline watchdog).
        let mut env = Env::new();
        let idle = env.declare("Idle", 0);
        env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
        let s = session(&env);
        let p = s.intern(&scope(
            invoke(idle, []),
            TimeBound::Finite(Expr::c(3)),
            None,
            Some(nil()),
            None,
        ));
        assert_eq!(delay_bound(&s, &p, 1024), 3);
        let run = forced_run(&s, &p, 1024).expect("forced");
        assert_eq!(run.quanta, 3);
        assert_eq!(run.len(), 3);
        // The expired scope offers its timeout continuation's steps, and
        // NIL has none: the boundary state is a deadlock, materialized as
        // the run's endpoint — never skipped over.
        assert!(s.prioritized_steps(run.endpoint()).is_empty());
        // The bulk advance agrees step for step and refuses to cross.
        let at3 = step_delay(&s, &p, 3).expect("within the bound");
        assert_eq!(at3.id(), run.endpoint().id());
        assert!(step_delay(&s, &p, 4).is_none());
    }

    #[test]
    fn preemption_mid_zone_is_impossible_by_construction() {
        let env = Env::new();
        let s = session(&env);
        // A high-priority cpu step alongside an idle alternative: the idle
        // branch is preempted away, so the state is forced — until the cpu
        // branch ends and the alternatives become incomparable.
        let contested = choice([
            act([(cpu(), 3)], act([(cpu(), 3)], nil())),
            act([] as [(Res, i32); 0], act([] as [(Res, i32); 0], nil())),
        ]);
        let p = s.intern(&contested);
        let run = forced_run(&s, &p, 1024).expect("preemption forces the cpu branch");
        // First step must be the cpu action (the idle alternative never
        // fires inside the run).
        match &run.steps[0].0 {
            Label::A(a) => assert!(a.uses_resource(cpu())),
            other => panic!("expected a timed cpu step, got {other:?}"),
        }
    }

    #[test]
    fn cycles_stop_the_run_and_saturate_the_bound() {
        let mut env = Env::new();
        let idle = env.declare("Idle", 0);
        env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
        let s = session(&env);
        let p = s.intern(&invoke(idle, []));
        // The self-loop is forced for every horizon: the bound saturates at
        // the cap, and the run stops as soon as it would revisit a state.
        assert_eq!(delay_bound(&s, &p, 77), 77);
        let run = forced_run(&s, &p, 1024).expect("forced");
        assert!(run.len() <= 2, "cycle guard must stop the run, got {}", run.len());
        assert_eq!(step_delay(&s, &p, 500).unwrap().id(), run.endpoint().id());
    }

    #[test]
    fn cap_splits_long_runs_without_losing_states() {
        let env = Env::new();
        let s = session(&env);
        let mut p = nil();
        for _ in 0..10 {
            p = act([(cpu(), 1)], p);
        }
        let entry = s.intern(&p);
        let capped = forced_run(&s, &entry, 4).expect("forced");
        assert_eq!(capped.len(), 4);
        // Chaining capped runs reaches the same endpoint as one long run.
        let rest = forced_run(&s, capped.endpoint(), 1024).expect("forced");
        assert_eq!(capped.len() + rest.len(), 10);
        assert!(matches!(&**rest.endpoint().term(), crate::term::Proc::Nil));
    }
}
