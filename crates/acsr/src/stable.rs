//! Process-independent digests of terms and environments.
//!
//! The in-memory [`TermStore`](crate::TermStore) digests subterms through the
//! derived `Hash` of [`Symbol`] — i.e. through the symbol's
//! *interner index*, which depends on the order strings were interned in this
//! process. That is exactly right for an in-process hash-cons table and
//! exactly wrong for an on-disk key: a warm daemon that interned other
//! models' names first would derive different digests for the same model.
//!
//! This module provides the on-disk variant: a structural FNV-1a walk in
//! which every symbol contributes its *string bytes* (length-prefixed),
//! definition references contribute the definition's *name*, and the
//! index-ordered `Restrict`/`Close` sets are re-sorted lexicographically
//! before hashing. The result is stable across processes, interning
//! histories, and runs — the property `cas` store keys need.
//!
//! Two runs computing the same digest therefore agree on the term *up to
//! renaming-invariant structure and names*; any change to structure, names,
//! priorities, bounds, or referenced definition names changes the digest.

use crate::env::Env;
use crate::expr::{BExpr, Expr};
use crate::term::{ActionT, EvKind, EventT, Proc, TimeBound};
use crate::symbol::Symbol;

/// 64-bit FNV-1a accumulator with length-prefixed variable-width writes.
struct Walk {
    h: u64,
}

impl Walk {
    fn new() -> Walk {
        Walk {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn byte(&mut self, b: u8) {
        self.h = (self.h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Length-prefixed string bytes, so `("ab","c")` ≠ `("a","bc")`.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn sym(&mut self, s: Symbol) {
        self.str(s.as_str());
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(v) => {
                self.byte(0);
                self.i64(*v);
            }
            Expr::Param(i) => {
                self.byte(1);
                self.byte(*i);
            }
            Expr::Add(a, b) => self.expr2(2, a, b),
            Expr::Sub(a, b) => self.expr2(3, a, b),
            Expr::Mul(a, b) => self.expr2(4, a, b),
            Expr::Min(a, b) => self.expr2(5, a, b),
            Expr::Max(a, b) => self.expr2(6, a, b),
        }
    }

    fn expr2(&mut self, tag: u8, a: &Expr, b: &Expr) {
        self.byte(tag);
        self.expr(a);
        self.expr(b);
    }

    fn bexpr(&mut self, e: &BExpr) {
        match e {
            BExpr::Const(v) => {
                self.byte(0);
                self.byte(*v as u8);
            }
            BExpr::Lt(a, b) => self.cmp(1, a, b),
            BExpr::Le(a, b) => self.cmp(2, a, b),
            BExpr::Eq(a, b) => self.cmp(3, a, b),
            BExpr::Ne(a, b) => self.cmp(4, a, b),
            BExpr::And(a, b) => {
                self.byte(5);
                self.bexpr(a);
                self.bexpr(b);
            }
            BExpr::Or(a, b) => {
                self.byte(6);
                self.bexpr(a);
                self.bexpr(b);
            }
            BExpr::Not(a) => {
                self.byte(7);
                self.bexpr(a);
            }
        }
    }

    fn cmp(&mut self, tag: u8, a: &Expr, b: &Expr) {
        self.byte(tag);
        self.expr(a);
        self.expr(b);
    }

    fn action(&mut self, a: &ActionT) {
        self.u64(a.uses.len() as u64);
        for (res, prio) in &a.uses {
            self.sym(res.0);
            self.expr(prio);
        }
    }

    fn event(&mut self, e: &EventT) {
        match &e.kind {
            EvKind::Send(s) => {
                self.byte(0);
                self.sym(*s);
            }
            EvKind::Recv(s) => {
                self.byte(1);
                self.sym(*s);
            }
            EvKind::Tau(s) => {
                self.byte(2);
                match s {
                    None => self.byte(0),
                    Some(s) => {
                        self.byte(1);
                        self.sym(*s);
                    }
                }
            }
        }
        self.expr(&e.prio);
    }

    fn bound(&mut self, b: &TimeBound) {
        match b {
            TimeBound::Finite(e) => {
                self.byte(0);
                self.expr(e);
            }
            TimeBound::Infinite => self.byte(1),
        }
    }

    fn proc(&mut self, env: &Env, p: &Proc) {
        match p {
            Proc::Nil => self.byte(0),
            Proc::Act { action, tag, next } => {
                self.byte(1);
                self.action(action);
                match tag {
                    None => self.byte(0),
                    Some(t) => {
                        self.byte(1);
                        self.str(env.tag_text(*t));
                    }
                }
                self.proc(env, next);
            }
            Proc::Evt { event, next } => {
                self.byte(2);
                self.event(event);
                self.proc(env, next);
            }
            Proc::Choice(alts) => {
                self.byte(3);
                self.u64(alts.len() as u64);
                for alt in alts {
                    self.proc(env, alt);
                }
            }
            Proc::Par(parts) => {
                self.byte(4);
                self.u64(parts.len() as u64);
                for part in parts {
                    self.proc(env, part);
                }
            }
            Proc::Guard { cond, then } => {
                self.byte(5);
                self.bexpr(cond);
                self.proc(env, then);
            }
            Proc::Scope {
                body,
                limit,
                exception,
                timeout,
                interrupt,
            } => {
                self.byte(6);
                self.proc(env, body);
                self.bound(limit);
                match exception {
                    None => self.byte(0),
                    Some((label, handler)) => {
                        self.byte(1);
                        self.sym(*label);
                        self.proc(env, handler);
                    }
                }
                for opt in [timeout, interrupt] {
                    match opt {
                        None => self.byte(0),
                        Some(q) => {
                            self.byte(1);
                            self.proc(env, q);
                        }
                    }
                }
            }
            Proc::Restrict { body, labels } => {
                self.byte(7);
                self.proc(env, body);
                // The set is ordered by interner index — a process-local
                // order. Re-sort by string so the walk is reproducible.
                let mut names: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
                names.sort_unstable();
                self.u64(names.len() as u64);
                for name in names {
                    self.str(name);
                }
            }
            Proc::Close { body, resources } => {
                self.byte(8);
                self.proc(env, body);
                let mut names: Vec<&str> = resources.iter().map(|r| r.0.as_str()).collect();
                names.sort_unstable();
                self.u64(names.len() as u64);
                for name in names {
                    self.str(name);
                }
            }
            Proc::Invoke { def, args } => {
                self.byte(9);
                // By *name*, not by DefId: ids number declarations in
                // declaration order, which is as process-local as interner
                // indices.
                self.str(env.def(*def).name.as_str());
                self.u64(args.len() as u64);
                for arg in args {
                    self.expr(arg);
                }
            }
        }
    }
}

/// Digest a term, resolving every symbol, tag, and definition reference to
/// its string form. Stable across processes and interning histories.
pub fn stable_digest(env: &Env, p: &Proc) -> u64 {
    let mut w = Walk::new();
    w.proc(env, p);
    w.h
}

/// Fingerprint an environment: every definition in declaration order, as
/// `(name, arity, body digest)`. Two environments with the same fingerprint
/// unfold invocations identically (up to 64-bit collision), so a term digest
/// paired with an environment fingerprint identifies the transition system.
pub fn env_fingerprint(env: &Env) -> u64 {
    let mut w = Walk::new();
    w.u64(env.num_defs() as u64);
    for (_, def) in env.defs() {
        w.sym(def.name);
        w.byte(def.arity);
        match &def.body {
            None => w.byte(0),
            Some(body) => {
                w.byte(1);
                w.proc(env, body);
            }
        }
    }
    w.h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Res;
    use crate::term::{act, close, evt_send, invoke, nil, par, restrict};
    use crate::Expr;

    fn small_env() -> (Env, crate::term::P) {
        let mut env = Env::new();
        // Intern names in an order that disagrees with lexicographic order,
        // so an index-ordered walk of the restrict/close sets would differ
        // from the sorted-by-string walk.
        let zz = Symbol::new("zz_label");
        let aa = Symbol::new("aa_label");
        let cpu = Res::new("cpu");
        let body = act([(cpu, Expr::c(1))], evt_send(zz, 2, nil()));
        let id = env.define("Task", 1, body);
        let t = close(
            restrict(par([invoke(id, [Expr::c(3)])]), [zz, aa]),
            [cpu],
        );
        (env, t)
    }

    #[test]
    fn digest_deterministic_and_discriminating() {
        let (env, t) = small_env();
        assert_eq!(stable_digest(&env, &t), stable_digest(&env, &t));
        let (env2, _) = small_env();
        let other = nil();
        assert_ne!(stable_digest(&env2, &other), stable_digest(&env, &t));
    }

    #[test]
    fn digest_ignores_interning_history() {
        // Digest the term, then intern a pile of unrelated symbols (as a
        // warm daemon that served other models would have), rebuild the
        // same term, and digest again. Index-based hashing would drift;
        // the stable walk must not.
        let (env, t) = small_env();
        let before = stable_digest(&env, &t);
        let fp_before = env_fingerprint(&env);
        for i in 0..64 {
            Symbol::new(&format!("noise_{i}"));
        }
        let (env2, t2) = small_env();
        assert_eq!(stable_digest(&env2, &t2), before);
        assert_eq!(env_fingerprint(&env2), fp_before);
    }

    #[test]
    fn fingerprint_tracks_definition_bodies() {
        let (env, _) = small_env();
        let mut changed = env.clone();
        let id = changed.lookup("Task").unwrap();
        changed.set_body(id, nil());
        assert_ne!(env_fingerprint(&env), env_fingerprint(&changed));
    }

    #[test]
    fn digest_sees_priorities_and_names() {
        let (env, _) = small_env();
        let cpu = Res::new("cpu");
        let a = act([(cpu, Expr::c(1))], nil());
        let b = act([(cpu, Expr::c(2))], nil());
        assert_ne!(stable_digest(&env, &a), stable_digest(&env, &b));
        let c = act([(Res::new("bus"), Expr::c(1))], nil());
        assert_ne!(stable_digest(&env, &a), stable_digest(&env, &c));
    }
}
