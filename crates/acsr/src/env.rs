//! Process definitions, parameterized recursion and provenance tags.
//!
//! ACSR expresses recursion through named, possibly parameterized process
//! definitions (`Compute(e, t) = …`, §3/Fig. 5 of the paper). An [`Env`] owns
//! the definition table for one model; a term invokes a definition through its
//! [`DefId`]. Definitions are *templates*: their bodies may reference the
//! formal parameters through [`Expr::Param`](crate::expr::Expr::Param).
//!
//! The environment also owns the **tag table**. Tags are free-form provenance
//! strings attached to timed-action prefixes; they surface on composed
//! transition labels so that a trace through the state space of a translated
//! AADL model can be attributed, quantum by quantum, to the AADL components
//! that acted — the machinery behind the paper's "failing scenarios in terms
//! of the original AADL model" (§1, §5).

use std::collections::HashMap;
use std::fmt;

use crate::expr::EvalError;
use crate::symbol::Symbol;
use crate::term::{subst, P};

/// Identifier of a process definition within an [`Env`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DefId(pub(crate) u32);

impl DefId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Identifier of a provenance tag within an [`Env`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TagId(pub(crate) u32);

impl TagId {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A named process definition.
#[derive(Clone, Debug)]
pub struct ProcDef {
    /// The definition's name (used for pretty-printing and diagnostics).
    pub name: Symbol,
    /// Number of formal parameters.
    pub arity: u8,
    /// The body template; `None` until [`Env::set_body`] is called (allowing
    /// mutually recursive definitions to be declared first).
    pub body: Option<P>,
}

/// The definition and tag tables of one ACSR model.
#[derive(Clone, Debug, Default)]
pub struct Env {
    defs: Vec<ProcDef>,
    by_name: HashMap<Symbol, DefId>,
    tags: Vec<String>,
    tag_ids: HashMap<String, TagId>,
    /// Bumped whenever the *transition semantics* of the environment can
    /// change (a definition is declared or its body set). Successor caches
    /// key on this so a mutated environment silently invalidates them. Tag
    /// interning does **not** bump the epoch: tags only add display text,
    /// they never alter which steps a term can take.
    epoch: u64,
}

/// Errors raised when instantiating a definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstantiateError {
    /// The definition body was never set.
    MissingBody(Symbol),
    /// Wrong number of arguments.
    ArityMismatch {
        /// The definition's name.
        name: Symbol,
        /// Declared arity.
        expected: u8,
        /// Supplied argument count.
        got: usize,
    },
    /// An expression in the body referenced an out-of-range parameter.
    Eval(EvalError),
}

impl fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiateError::MissingBody(name) => {
                write!(f, "definition {name} was declared but its body was never set")
            }
            InstantiateError::ArityMismatch {
                name,
                expected,
                got,
            } => write!(f, "{name} expects {expected} argument(s), got {got}"),
            InstantiateError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InstantiateError {}

impl From<EvalError> for InstantiateError {
    fn from(e: EvalError) -> Self {
        InstantiateError::Eval(e)
    }
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Declare a definition by name with the given arity, without a body yet.
    /// Re-declaring an existing name returns the existing id (the arity must
    /// match).
    pub fn declare(&mut self, name: &str, arity: u8) -> DefId {
        let sym = Symbol::new(name);
        if let Some(&id) = self.by_name.get(&sym) {
            assert_eq!(
                self.defs[id.0 as usize].arity, arity,
                "re-declaration of {name} with different arity"
            );
            return id;
        }
        let id = DefId(u32::try_from(self.defs.len()).expect("definition table overflow"));
        self.defs.push(ProcDef {
            name: sym,
            arity,
            body: None,
        });
        self.by_name.insert(sym, id);
        self.epoch += 1;
        id
    }

    /// Set (or replace) the body of a declared definition.
    pub fn set_body(&mut self, id: DefId, body: P) {
        self.defs[id.0 as usize].body = Some(body);
        self.epoch += 1;
    }

    /// The environment's modification epoch: increases on every [`declare`]
    /// / [`set_body`] (any change that can alter the transition relation).
    /// Memoized successor caches key on it — see
    /// [`StepSession`](crate::step::StepSession).
    ///
    /// [`declare`]: Env::declare
    /// [`set_body`]: Env::set_body
    ///
    /// # Examples
    ///
    /// ```
    /// use acsr::prelude::*;
    ///
    /// let mut env = Env::new();
    /// let before = env.epoch();
    /// let d = env.declare("P", 0);
    /// env.set_body(d, nil());
    /// assert!(env.epoch() > before);
    /// ```
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declare a definition and set its body in one step.
    pub fn define(&mut self, name: &str, arity: u8, body: P) -> DefId {
        let id = self.declare(name, arity);
        self.set_body(id, body);
        id
    }

    /// Look up a definition by name.
    pub fn lookup(&self, name: &str) -> Option<DefId> {
        self.by_name.get(&Symbol::new(name)).copied()
    }

    /// Access a definition.
    pub fn def(&self, id: DefId) -> &ProcDef {
        &self.defs[id.0 as usize]
    }

    /// Number of definitions.
    pub fn num_defs(&self) -> usize {
        self.defs.len()
    }

    /// Iterate over all definitions.
    pub fn defs(&self) -> impl Iterator<Item = (DefId, &ProcDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (DefId(i as u32), d))
    }

    /// Instantiate definition `id` with concrete arguments, producing the
    /// ground body term.
    pub fn instantiate(&self, id: DefId, args: &[i64]) -> Result<P, InstantiateError> {
        let def = self.def(id);
        if args.len() != def.arity as usize {
            return Err(InstantiateError::ArityMismatch {
                name: def.name,
                expected: def.arity,
                got: args.len(),
            });
        }
        let body = def
            .body
            .as_ref()
            .ok_or(InstantiateError::MissingBody(def.name))?;
        Ok(subst(body, args)?)
    }

    /// Intern a provenance tag.
    pub fn tag(&mut self, text: &str) -> TagId {
        if let Some(&id) = self.tag_ids.get(text) {
            return id;
        }
        let id = TagId(u32::try_from(self.tags.len()).expect("tag table overflow"));
        self.tags.push(text.to_owned());
        self.tag_ids.insert(text.to_owned(), id);
        id
    }

    /// The text of a tag.
    pub fn tag_text(&self, id: TagId) -> &str {
        &self.tags[id.0 as usize]
    }

    /// Number of interned tags.
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }

    /// Verify that every declared definition has a body; returns the names of
    /// the offenders otherwise. Useful as a sanity check after model
    /// construction.
    pub fn check_complete(&self) -> Result<(), Vec<Symbol>> {
        let missing: Vec<Symbol> = self
            .defs
            .iter()
            .filter(|d| d.body.is_none())
            .map(|d| d.name)
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(missing)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::symbol::Res;
    use crate::term::{act, invoke, nil, Proc};

    #[test]
    fn declare_then_set_body_supports_mutual_recursion() {
        let mut env = Env::new();
        let a = env.declare("A", 0);
        let b = env.declare("B", 0);
        env.set_body(a, act([(Res::new("r"), 1)], invoke(b, [])));
        env.set_body(b, act([(Res::new("r"), 2)], invoke(a, [])));
        assert!(env.check_complete().is_ok());
        assert_eq!(env.lookup("A"), Some(a));
        assert_eq!(env.def(b).name.as_str(), "B");
    }

    #[test]
    fn redeclaration_returns_same_id() {
        let mut env = Env::new();
        let a1 = env.declare("Same", 2);
        let a2 = env.declare("Same", 2);
        assert_eq!(a1, a2);
        assert_eq!(env.num_defs(), 1);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn redeclaration_with_different_arity_panics() {
        let mut env = Env::new();
        env.declare("Bad", 1);
        env.declare("Bad", 2);
    }

    #[test]
    fn instantiate_checks_arity_and_body() {
        let mut env = Env::new();
        let x = env.declare("X", 1);
        assert!(matches!(
            env.instantiate(x, &[1]),
            Err(InstantiateError::MissingBody(_))
        ));
        env.set_body(x, act([(Res::new("cpu"), Expr::p(0))], nil()));
        assert!(matches!(
            env.instantiate(x, &[]),
            Err(InstantiateError::ArityMismatch { expected: 1, got: 0, .. })
        ));
        let ground = env.instantiate(x, &[7]).unwrap();
        match &*ground {
            Proc::Act { action, .. } => assert_eq!(action.uses[0].1, Expr::Const(7)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tags_intern() {
        let mut env = Env::new();
        let t1 = env.tag("thread RefSpeed computes");
        let t2 = env.tag("thread RefSpeed computes");
        let t3 = env.tag("thread Cruise1 computes");
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(env.tag_text(t3), "thread Cruise1 computes");
        assert_eq!(env.num_tags(), 2);
    }

    #[test]
    fn check_complete_reports_missing() {
        let mut env = Env::new();
        env.declare("NoBody", 0);
        let missing = env.check_complete().unwrap_err();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].as_str(), "NoBody");
    }
}
