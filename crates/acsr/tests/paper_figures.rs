//! Reproduction of Figures 2 and 3 of *Schedulability Analysis of AADL
//! Models* (Sokolsky, Lee, Clarke; IPDPS 2006) — the running ACSR example.
//!
//! Fig. 2: the `Simple` process, (a) without and (b) with idling steps:
//!
//! ```text
//! Simple = {(cpu,1)} : {(cpu,1),(bus,1)} : (done!,1) . Simple
//! ```
//!
//! Fig. 3: `Simple` running inside a temporal scope (exception handler,
//! timeout handler, interrupt handler) in parallel with a `SimpleDriver` that
//! (i) shares the first quantum, (ii) preempts `Simple` on the bus for one
//! quantum, then (iii) either forces the interrupt via an event or keeps
//! preempting until `Simple` gives up through its exception exit.

use acsr::prelude::*;

fn cpu() -> Res {
    Res::new("fig_cpu")
}
fn bus() -> Res {
    Res::new("fig_bus")
}

/// Fig. 2a: `Simple` without idling steps.
fn simple_a(env: &mut Env) -> P {
    let done = Symbol::new("fig_done");
    let simple = env.declare("Fig2_Simple", 0);
    env.set_body(
        simple,
        act(
            [(cpu(), 1)],
            act([(cpu(), 1), (bus(), 1)], evt_send(done, 1, invoke(simple, []))),
        ),
    );
    invoke(simple, [])
}

/// Fig. 2b: `Simple` with idling steps before each computation.
fn simple_b(env: &mut Env) -> P {
    let done = Symbol::new("fig_done");
    let s0 = env.declare("Fig2b_S0", 0);
    let s1 = env.declare("Fig2b_S1", 0);
    env.set_body(
        s0,
        choice([
            act([(cpu(), 1)], invoke(s1, [])),
            act([] as [(Res, i32); 0], invoke(s0, [])),
        ]),
    );
    env.set_body(
        s1,
        choice([
            act([(cpu(), 1), (bus(), 1)], evt_send(done, 1, invoke(s0, []))),
            act([] as [(Res, i32); 0], invoke(s1, [])),
        ]),
    );
    invoke(s0, [])
}

/// A process that holds the bus forever at priority 2.
fn bus_hog(env: &mut Env) -> P {
    let hog = env.declare("BusHog", 0);
    env.set_body(hog, act([(bus(), 2)], invoke(hog, [])));
    invoke(hog, [])
}

#[test]
fn fig2a_deadlocks_when_the_bus_is_never_free() {
    // "a timed action cannot be performed if the necessary resources are not
    // available. The process that tries to execute the step will be
    // deadlocked, unless other steps are available in the same state."
    let mut env = Env::new();
    let simple = simple_a(&mut env);
    let hog = bus_hog(&mut env);
    let sys = par([simple, hog]);
    let ex = versa::explore(&env, &sys, &versa::Options::default());
    assert_eq!(ex.deadlocks.len(), 1);
    let t = ex.first_deadlock_trace().unwrap();
    // One joint quantum (cpu ∥ bus), then stuck on the bus conflict.
    assert_eq!(t.elapsed_quanta(), 1);
}

#[test]
fn fig2b_idling_steps_let_the_process_wait() {
    // "To allow processes to wait for resource access, ACSR models introduce
    // idling steps, which do not consume resources but let the time
    // progress."
    let mut env = Env::new();
    let simple = simple_b(&mut env);
    let hog = bus_hog(&mut env);
    let sys = par([simple, hog]);
    let ex = versa::explore(&env, &sys, &versa::Options::default());
    assert!(ex.deadlock_free());
    // Simple makes its first step but then waits forever at S1 — only two
    // product states recur.
    assert!(ex.num_states() <= 3);
}

#[test]
fn fig2_simple_runs_alone_without_contention() {
    let mut env = Env::new();
    let simple = simple_a(&mut env);
    let ex = versa::explore(&env, &simple, &versa::Options::default());
    // 3 states: initial, after first step, after second step (then done! loops).
    assert!(ex.deadlock_free());
    assert_eq!(ex.num_states(), 3);
}

/// Build the Fig. 3 composition. Returns `(system, done, interrupt,
/// exception)`. The temporal line-up is adapted from the figure: the driver
/// shares the first quantum, preempts the bus for one quantum, and then
/// either (a) holds the bus once more and forces the interrupt, or (b)
/// claims the processor, starving `Simple` until it gives up through its
/// exception exit.
fn fig3(env: &mut Env) -> (P, Symbol, Symbol, Symbol) {
    let done = Symbol::new("fig3_done");
    let interrupt = Symbol::new("fig3_interrupt");
    let exception = Symbol::new("fig3_exception");

    // Simple with idling alternatives; after being denied a resource for a
    // quantum it may voluntarily release control through the exception exit.
    let s0 = env.declare("Fig3_S0", 0);
    let s0w = env.declare("Fig3_S0w", 0);
    let s1 = env.declare("Fig3_S1", 0);
    let s1w = env.declare("Fig3_S1w", 0);
    let step0 = |target: acsr::DefId| act([(cpu(), 1)], invoke(target, []));
    env.set_body(
        s0,
        choice([step0(s1), act([] as [(Res, i32); 0], invoke(s0w, []))]),
    );
    env.set_body(
        s0w,
        choice([
            step0(s1),
            act([] as [(Res, i32); 0], invoke(s0w, [])),
            evt_send(exception, 1, nil()),
        ]),
    );
    let step1 = || act([(cpu(), 1), (bus(), 1)], evt_send(done, 1, invoke(s0, [])));
    env.set_body(
        s1,
        choice([step1(), act([] as [(Res, i32); 0], invoke(s1w, []))]),
    );
    env.set_body(
        s1w,
        choice([
            step1(),
            act([] as [(Res, i32); 0], invoke(s1w, [])),
            evt_send(exception, 1, nil()),
        ]),
    );

    // Handlers: each announces itself with a distinct resource usage.
    let exc_handler = act([(Res::new("fig_exc"), 2)], nil());
    let timeout_handler = act([(Res::new("fig_to"), 2)], nil());
    let int_handler = evt_recv(interrupt, 1, act([(Res::new("fig_int"), 2)], nil()));

    let scoped = scope(
        invoke(s0, []),
        TimeBound::Finite(Expr::c(10)),
        Some((exception, exc_handler)),
        Some(timeout_handler),
        Some(int_handler),
    );

    // SimpleDriver.
    let idle = env.declare("Fig3_Idle", 0);
    env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
    let cpu_hog = env.declare("Fig3_CpuHog", 0);
    env.set_body(cpu_hog, act([(cpu(), 2)], invoke(cpu_hog, [])));
    let driver = act(
        [(bus(), 2)],
        act(
            [(bus(), 2)],
            choice([
                act([(bus(), 2)], evt_send(interrupt, 1, invoke(idle, []))),
                act([(cpu(), 2)], invoke(cpu_hog, [])),
            ]),
        ),
    );

    // Only the interrupt is a private channel between driver and scope; the
    // exception is the scope's own (visible) exit event.
    let sys = restrict(par([scoped, driver]), [interrupt]);
    (sys, done, interrupt, exception)
}

#[test]
fn fig3_first_quantum_is_shared() {
    // "The first action of the driver uses disjoint resources with the first
    // action of Simple and thus they can proceed together."
    let mut env = Env::new();
    let (sys, _, _, _) = fig3(&mut env);
    let s = prioritized_steps(&env, &sys);
    assert_eq!(s.len(), 1);
    let a = s[0].0.action().unwrap();
    assert_eq!(a.prio_of(cpu()), 1);
    assert_eq!(a.prio_of(bus()), 2);
}

#[test]
fn fig3_driver_preempts_simple_on_the_bus() {
    // "However, the second action uses the same resource bus with a higher
    // priority of access and preempts the execution of Simple for one time
    // step."
    let mut env = Env::new();
    let (sys, _, _, _) = fig3(&mut env);
    let s1 = prioritized_steps(&env, &sys);
    let s2 = prioritized_steps(&env, &s1[0].1);
    // Simple cannot take its {(cpu,1),(bus,1)} step: the only surviving
    // quantum is Simple idling while the driver holds the bus.
    assert_eq!(s2.len(), 1);
    let a = s2[0].0.action().unwrap();
    assert!(a.uses_resource(bus()));
    assert_eq!(a.prio_of(bus()), 2);
    assert!(!a.uses_resource(cpu()));
}

#[test]
fn fig3_all_three_scope_exits_are_reachable() {
    // Exception, timeout and interrupt handler each announce themselves with
    // a dedicated resource; all three must appear somewhere in the reachable
    // prioritized transition system.
    let mut env = Env::new();
    let (sys, _, _, _) = fig3(&mut env);
    let ex = versa::explore(&env, &sys, &versa::Options::default());
    let mut found = [false; 3]; // int, exc, to
    for id in 0..ex.num_states() {
        let st = ex.state(versa::StateId(id as u32));
        for (l, _) in prioritized_steps(&env, st) {
            if let Some(a) = l.action() {
                found[0] |= a.uses_resource(Res::new("fig_int"));
                found[1] |= a.uses_resource(Res::new("fig_exc"));
                found[2] |= a.uses_resource(Res::new("fig_to"));
            }
        }
    }
    assert!(found[0], "interrupt handler reachable");
    assert!(found[1], "exception handler reachable");
    assert!(found[2], "timeout handler reachable");
}

#[test]
fn fig3_driver_alternatives_shape_simples_fate() {
    // At the driver's branch point (after two quanta), three futures coexist:
    // the driver holding the bus again (→ interrupt next), the driver
    // claiming the cpu (→ starvation → exception), and Simple giving up
    // right away through the exception event.
    let mut env = Env::new();
    let (sys, _, _, exception) = fig3(&mut env);
    let s = prioritized_steps(&env, &sys);
    let s = prioritized_steps(&env, &s[0].1);
    let s3 = prioritized_steps(&env, &s[0].1);
    let timed: Vec<_> = s3.iter().filter(|(l, _)| l.is_timed()).collect();
    assert_eq!(timed.len(), 2, "both driver branches available: {s3:?}");
    assert!(timed
        .iter()
        .any(|(l, _)| l.action().unwrap().prio_of(bus()) == 2));
    assert!(timed
        .iter()
        .any(|(l, _)| l.action().unwrap().prio_of(cpu()) == 2));
    assert!(
        s3.iter()
            .any(|(l, _)| matches!(l, Label::E { label, .. } if *label == exception)),
        "voluntary exception exit offered"
    );
}

#[test]
fn fig3_whole_composition_has_finite_state_space() {
    let mut env = Env::new();
    let (sys, _, _, _) = fig3(&mut env);
    let ex = versa::explore(&env, &sys, &versa::Options::default());
    assert!(ex.num_states() < 64);
    assert!(ex.stats.transitions >= ex.num_states() - 1);
}
