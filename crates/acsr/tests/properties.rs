//! Property-based tests of the ACSR semantic core.

use std::sync::Arc;

use acsr::prelude::*;
use acsr::GAction;
use proptest::prelude::*;

const RES_POOL: [&str; 4] = ["pr_cpu1", "pr_cpu2", "pr_bus", "pr_data"];

fn arb_gaction() -> impl Strategy<Value = GAction> {
    proptest::collection::btree_map(0usize..RES_POOL.len(), 0u32..5, 0..RES_POOL.len())
        .prop_map(|m| {
            let mut uses: Vec<(Res, u32)> = m
                .into_iter()
                .map(|(i, p)| (Res::new(RES_POOL[i]), p))
                .collect();
            uses.sort_unstable_by_key(|(r, _)| *r);
            GAction {
                uses: uses.into_boxed_slice(),
                tags: Box::new([]),
            }
        })
}

fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        arb_gaction().prop_map(|a| Label::A(Arc::new(a))),
        (0usize..3, any::<bool>(), 0u32..5).prop_map(|(i, send, prio)| Label::E {
            label: Symbol::new(["pe_a", "pe_b", "pe_c"][i]),
            dir: if send { Dir::Send } else { Dir::Recv },
            prio,
        }),
        (0u32..5).prop_map(|prio| Label::Tau { prio, via: None }),
    ]
}

/// A small ground process over the resource pool, with bounded depth.
fn arb_proc() -> impl Strategy<Value = P> {
    let leaf = prop_oneof![
        Just(nil()),
        arb_gaction().prop_map(|a| {
            let uses: Vec<(Res, Expr)> =
                a.uses.iter().map(|(r, p)| (*r, Expr::c(*p as i64))).collect();
            act(uses, nil())
        }),
        (0usize..3, any::<bool>(), 0u32..4).prop_map(|(i, send, prio)| {
            let sym = Symbol::new(["pp_x", "pp_y", "pp_z"][i]);
            if send {
                evt_send(sym, prio, nil())
            } else {
                evt_recv(sym, prio, nil())
            }
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(choice),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(par),
            (inner.clone(), 0i64..4).prop_map(|(p, t)| scope(
                p,
                TimeBound::Finite(Expr::c(t)),
                None,
                Some(nil()),
                None
            )),
            inner
                .clone()
                .prop_map(|p| restrict(p, [Symbol::new("pp_x")])),
            inner.prop_map(|p| close(p, [Res::new("pr_data")])),
        ]
    })
}

proptest! {
    #[test]
    fn preemption_is_irreflexive(l in arb_label()) {
        prop_assert!(!preempts(&l, &l));
    }

    #[test]
    fn preemption_is_antisymmetric(a in arb_label(), b in arb_label()) {
        prop_assert!(!(preempts(&a, &b) && preempts(&b, &a)));
    }

    #[test]
    fn preemption_is_transitive(a in arb_label(), b in arb_label(), c in arb_label()) {
        if preempts(&a, &b) && preempts(&b, &c) {
            prop_assert!(preempts(&a, &c), "{a:?} ≺ {b:?} ≺ {c:?} but not {a:?} ≺ {c:?}");
        }
    }

    #[test]
    fn idling_is_preempted_by_any_positive_action(a in arb_gaction()) {
        let idle = Label::A(Arc::new(GAction::idle()));
        let la = Label::A(Arc::new(a.clone()));
        let has_positive = a.uses.iter().any(|(_, p)| *p > 0);
        prop_assert_eq!(preempts(&idle, &la), has_positive);
    }

    #[test]
    fn merge_is_commutative(a in arb_gaction(), b in arb_gaction()) {
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        match (ab, ba) {
            (Some(x), Some(y)) => prop_assert_eq!(x.uses, y.uses),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric merge: {other:?}"),
        }
    }

    #[test]
    fn merge_is_associative_when_defined(
        a in arb_gaction(), b in arb_gaction(), c in arb_gaction()
    ) {
        let left = a.merge(&b).and_then(|ab| ab.merge(&c));
        let right = b.merge(&c).and_then(|bc| a.merge(&bc));
        match (left, right) {
            (Some(x), Some(y)) => prop_assert_eq!(x.uses, y.uses),
            (None, None) => {}
            other => prop_assert!(false, "non-associative merge: {other:?}"),
        }
    }

    #[test]
    fn prioritize_is_idempotent_and_contractive(p in arb_proc()) {
        let env = Env::new();
        let all = steps(&env, &p);
        let pri = prioritized_steps(&env, &p);
        prop_assert!(pri.len() <= all.len());
        // Every prioritized step is an unprioritized step.
        for s in &pri {
            prop_assert!(all.contains(s));
        }
        // Idempotence: filtering again changes nothing.
        let again = acsr::prio::prioritize(pri.clone());
        prop_assert_eq!(again, pri);
    }

    #[test]
    fn urgent_tau_excludes_timed_steps(p in arb_proc()) {
        let env = Env::new();
        let pri = prioritized_steps(&env, &p);
        let has_urgent_tau = pri.iter().any(|(l, _)| matches!(l, Label::Tau { prio, .. } if *prio > 0));
        if has_urgent_tau {
            prop_assert!(pri.iter().all(|(l, _)| !l.is_timed()));
        }
    }

    #[test]
    fn steps_are_deterministic(p in arb_proc()) {
        let env = Env::new();
        prop_assert_eq!(steps(&env, &p), steps(&env, &p));
    }

    #[test]
    fn par_timed_steps_use_disjointly_merged_resources(p in arb_proc(), q in arb_proc()) {
        let env = Env::new();
        let composed = par([p.clone(), q.clone()]);
        for (l, _) in steps(&env, &composed) {
            if let Some(a) = l.action() {
                // Sorted and duplicate-free by construction.
                for w in a.uses.windows(2) {
                    prop_assert!(w[0].0 < w[1].0);
                }
            }
        }
    }

    #[test]
    fn walk_states_are_reachable_by_exploration(p in arb_proc(), seed in 0u64..1000) {
        let env = Env::new();
        let walk = versa::random_walk(&env, &p, 16, seed);
        let ex = versa::explore(&env, &p, &versa::Options::default());
        for st in &walk.states {
            let found = (0..ex.num_states())
                .any(|i| ex.state(versa::StateId(i as u32)) == st);
            prop_assert!(found, "walk visited a state exploration missed");
        }
    }

    #[test]
    fn subst_is_idempotent_on_ground_terms(p in arb_proc()) {
        // arb_proc generates ground terms; substituting with no arguments
        // must be the identity up to structural equality.
        let once = acsr::term::subst(&p, &[]).unwrap();
        let twice = acsr::term::subst(&once, &[]).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(steps(&Env::new(), &p), steps(&Env::new(), &once));
    }
}

#[test]
fn independent_processes_multiply_states() {
    // Two independent cyclic processes with coprime cycle lengths: the
    // product exploration has exactly len1 × len2 states.
    let mut env = Env::new();
    let mk = |env: &mut Env, name: &str, res: &str, len: i64| -> P {
        let d = env.declare(name, 1);
        env.set_body(
            d,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(len - 1)),
                    act([(Res::new(res), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(len - 1)),
                    act([(Res::new(res), 1)], invoke(d, [Expr::c(0)])),
                ),
            ]),
        );
        invoke(d, [Expr::c(0)])
    };
    let a = mk(&mut env, "IndA", "pr_cpu1", 3);
    let b = mk(&mut env, "IndB", "pr_cpu2", 5);
    let ex = versa::explore(&env, &par([a, b]), &versa::Options::default());
    assert_eq!(ex.num_states(), 15);
}
