//! Property-based tests of the ACSR semantic core.
//!
//! Randomized terms, labels, and actions come from the workspace's vendored
//! [`det`] harness (`det_prop!` runs 64 seeded cases per property by default;
//! failures print a `DET_PROP_SEED` that reproduces the exact case).

use std::collections::BTreeMap;
use std::sync::Arc;

use acsr::prelude::*;
use acsr::GAction;
use det::det_prop;
use det::prop::uints;
use det::DetRng;

const RES_POOL: [&str; 4] = ["pr_cpu1", "pr_cpu2", "pr_bus", "pr_data"];

fn arb_gaction(rng: &mut DetRng) -> GAction {
    let size = rng.range_usize(0..RES_POOL.len());
    let mut m = BTreeMap::new();
    for _ in 0..size {
        let i = rng.range_usize(0..RES_POOL.len());
        let p = rng.range_u64(0..5) as u32;
        m.insert(i, p);
    }
    let mut uses: Vec<(Res, u32)> = m
        .into_iter()
        .map(|(i, p)| (Res::new(RES_POOL[i]), p))
        .collect();
    uses.sort_unstable_by_key(|(r, _)| *r);
    GAction {
        uses: uses.into_boxed_slice(),
        tags: Box::new([]),
    }
}

fn arb_label(rng: &mut DetRng) -> Label {
    match rng.range_u64(0..3) {
        0 => Label::A(Arc::new(arb_gaction(rng))),
        1 => Label::E {
            label: Symbol::new(*rng.pick(&["pe_a", "pe_b", "pe_c"])),
            dir: if rng.next_bool() { Dir::Send } else { Dir::Recv },
            prio: rng.range_u64(0..5) as u32,
        },
        _ => Label::Tau {
            prio: rng.range_u64(0..5) as u32,
            via: None,
        },
    }
}

fn arb_leaf(rng: &mut DetRng) -> P {
    match rng.range_u64(0..3) {
        0 => nil(),
        1 => {
            let a = arb_gaction(rng);
            let uses: Vec<(Res, Expr)> = a
                .uses
                .iter()
                .map(|(r, p)| (*r, Expr::c(*p as i64)))
                .collect();
            act(uses, nil())
        }
        _ => {
            let sym = Symbol::new(*rng.pick(&["pp_x", "pp_y", "pp_z"]));
            let prio = rng.range_u64(0..4) as u32;
            if rng.next_bool() {
                evt_send(sym, prio, nil())
            } else {
                evt_recv(sym, prio, nil())
            }
        }
    }
}

fn arb_proc_depth(rng: &mut DetRng, depth: usize) -> P {
    if depth == 0 {
        return arb_leaf(rng);
    }
    match rng.range_u64(0..6) {
        0 => arb_leaf(rng),
        1 => {
            let n = rng.range_usize(1..4);
            choice((0..n).map(|_| arb_proc_depth(rng, depth - 1)).collect::<Vec<_>>())
        }
        2 => {
            let n = rng.range_usize(1..3);
            par((0..n).map(|_| arb_proc_depth(rng, depth - 1)).collect::<Vec<_>>())
        }
        3 => {
            let p = arb_proc_depth(rng, depth - 1);
            let t = rng.range_i64(0..4);
            scope(p, TimeBound::Finite(Expr::c(t)), None, Some(nil()), None)
        }
        4 => restrict(arb_proc_depth(rng, depth - 1), [Symbol::new("pp_x")]),
        _ => close(arb_proc_depth(rng, depth - 1), [Res::new("pr_data")]),
    }
}

/// A small ground process over the resource pool, with bounded depth.
fn arb_proc(rng: &mut DetRng) -> P {
    arb_proc_depth(rng, 3)
}

det_prop! {
    fn preemption_is_irreflexive(l in arb_label) {
        assert!(!preempts(&l, &l));
    }

    fn preemption_is_antisymmetric(a in arb_label, b in arb_label) {
        assert!(!(preempts(&a, &b) && preempts(&b, &a)));
    }

    fn preemption_is_transitive(a in arb_label, b in arb_label, c in arb_label) {
        if preempts(&a, &b) && preempts(&b, &c) {
            assert!(preempts(&a, &c), "{a:?} ≺ {b:?} ≺ {c:?} but not {a:?} ≺ {c:?}");
        }
    }

    fn idling_is_preempted_by_any_positive_action(a in arb_gaction) {
        let idle = Label::A(Arc::new(GAction::idle()));
        let la = Label::A(Arc::new(a.clone()));
        let has_positive = a.uses.iter().any(|(_, p)| *p > 0);
        assert_eq!(preempts(&idle, &la), has_positive);
    }

    fn merge_is_commutative(a in arb_gaction, b in arb_gaction) {
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        match (ab, ba) {
            (Some(x), Some(y)) => assert_eq!(x.uses, y.uses),
            (None, None) => {}
            other => panic!("asymmetric merge: {other:?}"),
        }
    }

    fn merge_is_associative_when_defined(
        a in arb_gaction, b in arb_gaction, c in arb_gaction
    ) {
        let left = a.merge(&b).and_then(|ab| ab.merge(&c));
        let right = b.merge(&c).and_then(|bc| a.merge(&bc));
        match (left, right) {
            (Some(x), Some(y)) => assert_eq!(x.uses, y.uses),
            (None, None) => {}
            other => panic!("non-associative merge: {other:?}"),
        }
    }

    fn prioritize_is_idempotent_and_contractive(p in arb_proc) {
        let env = Env::new();
        let all = steps(&env, &p);
        let pri = prioritized_steps(&env, &p);
        assert!(pri.len() <= all.len());
        // Every prioritized step is an unprioritized step.
        for s in &pri {
            assert!(all.contains(s));
        }
        // Idempotence: filtering again changes nothing.
        let again = acsr::prio::prioritize(pri.clone());
        assert_eq!(again, pri);
    }

    fn urgent_tau_excludes_timed_steps(p in arb_proc) {
        let env = Env::new();
        let pri = prioritized_steps(&env, &p);
        let has_urgent_tau = pri.iter().any(|(l, _)| matches!(l, Label::Tau { prio, .. } if *prio > 0));
        if has_urgent_tau {
            assert!(pri.iter().all(|(l, _)| !l.is_timed()));
        }
    }

    fn steps_are_deterministic(p in arb_proc) {
        let env = Env::new();
        assert_eq!(steps(&env, &p), steps(&env, &p));
    }

    fn par_timed_steps_use_disjointly_merged_resources(p in arb_proc, q in arb_proc) {
        let env = Env::new();
        let composed = par([p.clone(), q.clone()]);
        for (l, _) in steps(&env, &composed) {
            if let Some(a) = l.action() {
                // Sorted and duplicate-free by construction.
                for w in a.uses.windows(2) {
                    assert!(w[0].0 < w[1].0);
                }
            }
        }
    }

    fn walk_states_are_reachable_by_exploration(p in arb_proc, seed in uints(0..1000)) {
        let env = Env::new();
        let walk = versa::random_walk(&env, &p, 16, seed);
        let ex = versa::explore(&env, &p, &versa::Options::default());
        for st in &walk.states {
            let found = (0..ex.num_states())
                .any(|i| ex.state(versa::StateId(i as u32)) == st);
            assert!(found, "walk visited a state exploration missed");
        }
    }

    fn subst_is_idempotent_on_ground_terms(p in arb_proc) {
        // arb_proc generates ground terms; substituting with no arguments
        // must be the identity up to structural equality.
        let once = acsr::term::subst(&p, &[]).unwrap();
        let twice = acsr::term::subst(&once, &[]).unwrap();
        assert_eq!(&once, &twice);
        assert_eq!(steps(&Env::new(), &p), steps(&Env::new(), &once));
    }
}

#[test]
fn independent_processes_multiply_states() {
    // Two independent cyclic processes with coprime cycle lengths: the
    // product exploration has exactly len1 × len2 states.
    let mut env = Env::new();
    let mk = |env: &mut Env, name: &str, res: &str, len: i64| -> P {
        let d = env.declare(name, 1);
        env.set_body(
            d,
            choice([
                guard(
                    BExpr::lt(Expr::p(0), Expr::c(len - 1)),
                    act([(Res::new(res), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
                ),
                guard(
                    BExpr::eq(Expr::p(0), Expr::c(len - 1)),
                    act([(Res::new(res), 1)], invoke(d, [Expr::c(0)])),
                ),
            ]),
        );
        invoke(d, [Expr::c(0)])
    };
    let a = mk(&mut env, "IndA", "pr_cpu1", 3);
    let b = mk(&mut env, "IndB", "pr_cpu2", 5);
    let ex = versa::explore(&env, &par([a, b]), &versa::Options::default());
    assert_eq!(ex.num_states(), 15);
}
