//! Property-based regression guard for the O(1)-equality claim of the term
//! store: interning must distinguish structurally-distinct terms even when
//! every digest collides. The store's [`TermStore::with_digest_mask`] hook
//! and [`HashedP::with_digest`] force collisions deliberately; under any
//! mask, id equality must coincide exactly with deep structural equality,
//! and the memoized step relation must be unchanged.
//!
//! Randomized terms come from the workspace's vendored [`det`] harness
//! (`det_prop!` runs 64 seeded cases per property by default; failures print
//! a `DET_PROP_SEED` that reproduces the exact case).

use std::sync::Arc;

use acsr::prelude::*;
use acsr::{HashedP, MemoConfig, StepSession, TermStore};
use det::det_prop;
use det::DetRng;

const RES_POOL: [&str; 3] = ["ic_cpu", "ic_bus", "ic_data"];

fn arb_leaf(rng: &mut DetRng) -> P {
    match rng.range_u64(0..3) {
        0 => nil(),
        1 => {
            let r = Res::new(*rng.pick(&RES_POOL));
            act([(r, rng.range_i64(0..4))], nil())
        }
        _ => {
            let sym = Symbol::new(*rng.pick(&["ie_x", "ie_y", "ie_z"]));
            let prio = rng.range_u64(0..4) as u32;
            if rng.next_bool() {
                evt_send(sym, prio, nil())
            } else {
                evt_recv(sym, prio, nil())
            }
        }
    }
}

fn arb_proc_depth(rng: &mut DetRng, depth: usize) -> P {
    if depth == 0 {
        return arb_leaf(rng);
    }
    match rng.range_u64(0..6) {
        0 => arb_leaf(rng),
        1 => {
            let n = rng.range_usize(1..4);
            choice((0..n).map(|_| arb_proc_depth(rng, depth - 1)).collect::<Vec<_>>())
        }
        2 => {
            let n = rng.range_usize(1..3);
            par((0..n).map(|_| arb_proc_depth(rng, depth - 1)).collect::<Vec<_>>())
        }
        3 => {
            let p = arb_proc_depth(rng, depth - 1);
            let t = rng.range_i64(0..4);
            scope(p, TimeBound::Finite(Expr::c(t)), None, Some(nil()), None)
        }
        4 => restrict(arb_proc_depth(rng, depth - 1), [Symbol::new("ie_x")]),
        _ => close(arb_proc_depth(rng, depth - 1), [Res::new("ic_data")]),
    }
}

/// A small ground process over the resource pool, with bounded depth.
fn arb_proc(rng: &mut DetRng) -> P {
    arb_proc_depth(rng, 3)
}

det_prop! {
    fn forced_digest_collisions_never_merge_distinct_structures(
        a in arb_proc, b in arb_proc
    ) {
        // Under every mask — including mask 0, which collapses *all* digests
        // into one bucket — two terms share an id iff they are structurally
        // equal, exactly as in the unmasked store.
        let structurally_equal = a == b;
        for mask in [0u64, 1, 0xFF, u64::MAX] {
            let store = TermStore::with_digest_mask(mask);
            let ia = store.intern(&a);
            let ib = store.intern(&b);
            assert_eq!(
                ia.id() == ib.id(),
                structurally_equal,
                "mask={mask:#x}: id equality diverged from structural equality\n a={a:?}\n b={b:?}"
            );
            assert_eq!(ia.digest(), ia.digest() & mask, "digest escaped the mask");
        }
    }

    fn forced_hashedp_collisions_fall_back_to_deep_compare(
        a in arb_proc, b in arb_proc
    ) {
        // The pre-interning keys must stay sound under the same attack: a
        // forced digest collision may only slow `HashedP` down (deep
        // compare), never change its equality verdict.
        let ha = HashedP::with_digest(a.clone(), 42);
        let hb = HashedP::with_digest(b.clone(), 42);
        assert_eq!(ha == hb, a == b);
    }

    fn collision_heavy_store_preserves_the_step_relation(p in arb_proc) {
        // A mask-0 store drives every insert through the bucket-scan slow
        // path; the memoized session over it must still reproduce the legacy
        // step relation label for label, successor for successor.
        let env = Env::new();
        let legacy = steps(&env, &p);
        let store = Arc::new(TermStore::with_digest_mask(0));
        let session = StepSession::new(&env, store, MemoConfig::default());
        let interned = session.steps(&session.intern(&p));
        assert_eq!(legacy.len(), interned.len(), "step count for {p:?}");
        for ((ll, lp), (il, ip)) in legacy.iter().zip(&interned) {
            assert_eq!(ll, il, "label for {p:?}");
            assert_eq!(lp, ip.term(), "successor for {p:?}");
        }
    }
}
