//! Algebraic laws of the ACSR operators, checked at the level of one-step
//! derivations and of explored state spaces. These are the standard process-
//! algebraic sanity laws; a translation bug that broke one of them would
//! invalidate the §5 reduction of schedulability to deadlock detection.

use std::collections::HashMap;

use acsr::prelude::*;

fn cpu() -> Res {
    Res::new("law_cpu")
}
fn bus() -> Res {
    Res::new("law_bus")
}

/// Multiset of labels offered by a term.
fn label_bag(env: &Env, p: &P) -> HashMap<Label, usize> {
    let mut bag = HashMap::new();
    for (l, _) in steps(env, p) {
        *bag.entry(l).or_insert(0) += 1;
    }
    bag
}

/// A small zoo of distinct ground processes.
fn zoo() -> Vec<P> {
    let e = Symbol::new("law_e");
    vec![
        nil(),
        act([(cpu(), 1)], nil()),
        act([(bus(), 2)], act([(cpu(), 1)], nil())),
        evt_send(e, 1, nil()),
        evt_recv(e, 2, act([(cpu(), 1)], nil())),
        choice([
            act([(cpu(), 3)], nil()),
            act([] as [(Res, i32); 0], nil()),
        ]),
        tau(1, None, nil()),
    ]
}

#[test]
fn choice_is_commutative_on_labels() {
    let env = Env::new();
    for a in zoo() {
        for b in zoo() {
            let ab = label_bag(&env, &choice([a.clone(), b.clone()]));
            let ba = label_bag(&env, &choice([b.clone(), a.clone()]));
            assert_eq!(ab, ba, "{a:?} + {b:?}");
        }
    }
}

#[test]
fn choice_is_associative_on_labels() {
    let env = Env::new();
    let z = zoo();
    for a in &z[..4] {
        for b in &z[..4] {
            for c in &z[..4] {
                let left = label_bag(
                    &env,
                    &choice([choice([a.clone(), b.clone()]), c.clone()]),
                );
                let right = label_bag(
                    &env,
                    &choice([a.clone(), choice([b.clone(), c.clone()])]),
                );
                assert_eq!(left, right);
            }
        }
    }
}

#[test]
fn choice_with_nil_is_identity_on_labels() {
    let env = Env::new();
    for a in zoo() {
        assert_eq!(
            label_bag(&env, &a),
            label_bag(&env, &choice([a.clone(), nil()]))
        );
    }
}

#[test]
fn par_is_commutative_on_labels() {
    let env = Env::new();
    for a in zoo() {
        for b in zoo() {
            let ab = label_bag(&env, &par([a.clone(), b.clone()]));
            let ba = label_bag(&env, &par([b.clone(), a.clone()]));
            assert_eq!(ab, ba, "{a:?} ∥ {b:?}");
        }
    }
}

#[test]
fn par_is_commutative_on_state_counts() {
    // Stronger than labels: the explored spaces are isomorphic, so state and
    // transition counts coincide.
    let env = Env::new();
    for a in zoo() {
        for b in zoo() {
            let ab = versa::explore(&env, &par([a.clone(), b.clone()]), &versa::Options::default());
            let ba = versa::explore(&env, &par([b.clone(), a.clone()]), &versa::Options::default());
            assert_eq!(ab.num_states(), ba.num_states());
            assert_eq!(ab.stats.transitions, ba.stats.transitions);
            assert_eq!(ab.deadlocks.len(), ba.deadlocks.len());
        }
    }
}

#[test]
fn par_nesting_does_not_change_timed_behaviour() {
    // ((a ∥ b) ∥ c) and (a ∥ b ∥ c) offer the same timed labels (event
    // interleavings coincide too for these event-free components).
    let env = Env::new();
    let a = act([(cpu(), 1)], nil());
    let b = act([(bus(), 1)], nil());
    let c = act([(Res::new("law_r3"), 1)], nil());
    let nested = par([par([a.clone(), b.clone()]), c.clone()]);
    let flat = par([a, b, c]);
    assert_eq!(label_bag(&env, &nested), label_bag(&env, &flat));
}

#[test]
fn restriction_distributes_over_non_restricted_labels() {
    let env = Env::new();
    let e = Symbol::new("law_hidden");
    let f = Symbol::new("law_visible");
    let p = choice([
        evt_send(e, 1, nil()),
        evt_send(f, 1, nil()),
        act([(cpu(), 1)], nil()),
    ]);
    let restricted = restrict(p.clone(), [e]);
    let bag = label_bag(&env, &restricted);
    assert_eq!(bag.len(), 2);
    assert!(bag
        .keys()
        .all(|l| !matches!(l, Label::E { label, .. } if *label == e)));
}

#[test]
fn restriction_is_idempotent() {
    let env = Env::new();
    let e = Symbol::new("law_hidden2");
    let p = choice([evt_send(e, 1, nil()), act([(cpu(), 1)], nil())]);
    let once = restrict(p.clone(), [e]);
    let twice = restrict(once.clone(), [e]);
    assert_eq!(label_bag(&env, &once), label_bag(&env, &twice));
}

#[test]
fn closure_is_idempotent_on_labels() {
    let env = Env::new();
    let p = choice([
        act([(cpu(), 1)], nil()),
        act([] as [(Res, i32); 0], nil()),
    ]);
    let once = close(p.clone(), [cpu(), bus()]);
    let twice = close(once.clone(), [cpu(), bus()]);
    assert_eq!(label_bag(&env, &once), label_bag(&env, &twice));
}

#[test]
fn closure_makes_idling_claim_owned_resources() {
    let env = Env::new();
    let p = act([] as [(Res, i32); 0], nil());
    let closed = close(p, [cpu()]);
    let s = steps(&env, &closed);
    assert_eq!(s.len(), 1);
    let a = s[0].0.action().unwrap();
    assert!(a.uses_resource(cpu()));
    assert_eq!(a.prio_of(cpu()), 0);
}

#[test]
fn closure_prevents_contention_on_owned_resources() {
    // A closed idler occupies its resource at priority 0: another process
    // needing that resource cannot take a joint step with it.
    let env = Env::new();
    let idler = {
        let mut env2 = Env::new();
        let _ = &mut env2;
        // inline loop via a fresh env is awkward; a 2-step idler suffices.
        act([] as [(Res, i32); 0], act([] as [(Res, i32); 0], nil()))
    };
    let closed = close(idler, [cpu()]);
    let worker = act([(cpu(), 5)], nil());
    let sys = par([closed, worker]);
    // No joint timed step exists (cpu used by both sides).
    assert!(steps(&env, &sys).is_empty());
}

#[test]
fn scope_with_infinite_bound_is_transparent_for_actions() {
    let env = Env::new();
    let p = act([(cpu(), 1)], act([(bus(), 1)], nil()));
    let scoped = scope(p.clone(), TimeBound::Infinite, None, None, None);
    // Same labels step by step.
    let s1 = steps(&env, &p);
    let s2 = steps(&env, &scoped);
    assert_eq!(s1.len(), s2.len());
    assert_eq!(s1[0].0, s2[0].0);
    let s1 = steps(&env, &s1[0].1);
    let s2 = steps(&env, &s2[0].1);
    assert_eq!(s1[0].0, s2[0].0);
}

#[test]
fn nested_scopes_decrement_independently() {
    let env = Env::new();
    // Outer times out after 3, inner after 1; inner's timeout continuation
    // idles, so after 1 quantum the inner is gone and after 3 the outer fires.
    let marker = Res::new("law_marker");
    let inner = scope(
        act([] as [(Res, i32); 0], act([] as [(Res, i32); 0], nil())),
        TimeBound::Finite(Expr::c(1)),
        None,
        Some(act([] as [(Res, i32); 0], act([] as [(Res, i32); 0], nil()))),
        None,
    );
    let outer = scope(
        inner,
        TimeBound::Finite(Expr::c(3)),
        None,
        Some(act([(marker, 1)], nil())),
        None,
    );
    // 1 quantum: inner expires; 2 more: outer expires; then the marker fires.
    let mut cur = outer;
    for _ in 0..3 {
        let s = steps(&env, &cur);
        assert_eq!(s.len(), 1, "{cur:?}");
        assert!(s[0].0.is_timed());
        cur = s[0].1.clone();
    }
    let s = steps(&env, &cur);
    assert!(s[0].0.action().unwrap().uses_resource(marker));
}

#[test]
fn prioritized_is_a_subrelation_of_unprioritized_everywhere() {
    // Over a whole explored space, every prioritized transition is an
    // unprioritized one (spot-checked per state).
    let mut env = Env::new();
    let d = env.declare("LawLoop", 1);
    env.set_body(
        d,
        choice([
            guard(
                BExpr::lt(Expr::p(0), Expr::c(4)),
                act([(cpu(), 1)], invoke(d, [Expr::p(0).add(Expr::c(1))])),
            ),
            guard(
                BExpr::eq(Expr::p(0), Expr::c(4)),
                act([(bus(), 1)], invoke(d, [Expr::c(0)])),
            ),
            act([] as [(Res, i32); 0], invoke(d, [Expr::p(0)])),
        ]),
    );
    let p = invoke(d, [Expr::c(0)]);
    let ex = versa::explore(&env, &p, &versa::Options::default());
    for i in 0..ex.num_states() {
        let st = ex.state(versa::StateId(i as u32));
        let all = steps(&env, st);
        for s in prioritized_steps(&env, st) {
            assert!(all.contains(&s));
        }
    }
}
