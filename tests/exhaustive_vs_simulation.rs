//! Experiment Q4 — what exhaustive exploration catches and simulation
//! misses (§6 of the paper):
//!
//! > We believe that exploring the state space of a formal executable model
//! > offers exhaustive analysis of all possible behaviors, which is very
//! > important if there is much uncertainty in the model behavior.
//!
//! The witness is a **phase-collision anomaly**:
//!
//! * `producer` (cpu1): periodic, period 4 ms, execution time **1..3 ms**,
//!   raises an event at completion;
//! * `handler` (cpu2, low priority): sporadic (separation 2 ms), execution
//!   1 ms, deadline **1 ms** — it must run in the very quantum after its
//!   dispatch;
//! * `monitor` (cpu2, high priority): periodic, period 6 ms, execution 1 ms —
//!   it owns cpu2 during quanta `[6k, 6k+1)`.
//!
//! The handler is dispatched at the producer's completion instant
//! `4k + c_k`. That instant collides with the monitor (`≡ 0 mod 6`) iff
//! `c_k = 2` at a position `k ≡ 1 (mod 3)` — an *interior* point of the
//! execution-time range. Consequently:
//!
//! * the all-WCET behaviour (`c = 3`) never collides — a WCET simulation run
//!   reports success;
//! * the all-BCET behaviour (`c = 1`) never collides either;
//! * the exhaustive exploration of the range `[1, 3]` finds the collision
//!   and names the handler in the raised scenario.

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions, ViolationKind};

/// Build the witness with the given producer execution range (ms).
fn witness(bcet_ms: i64, wcet_ms: i64) -> InstanceModel {
    let pkg = PackageBuilder::new("Anomaly")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "HPF"))
        .thread("Producer", |t| {
            t.out_event_port("evt")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(bcet_ms), TimeVal::ms(wcet_ms)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
                .prop_int(names::PRIORITY, 5)
        })
        .thread("Handler", |t| {
            t.in_event_port("trigger")
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(2)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(1)))
                .prop_int(names::PRIORITY, 2)
        })
        .thread("Monitor", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(6)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(6)))
                .prop_int(names::PRIORITY, 9)
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("producer", Category::Thread, "Producer")
                .sub("handler", Category::Thread, "Handler")
                .sub("monitor", Category::Thread, "Monitor")
                .connect("evt_conn", "producer.evt", "handler.trigger")
                .bind_processor("producer", "cpu1")
                .bind_processor("handler", "cpu2")
                .bind_processor("monitor", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

#[test]
fn exhaustive_exploration_finds_the_collision() {
    let m = witness(1, 3);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(!v.schedulable(), "the interior execution time collides");
    let sc = v.scenario().unwrap();
    assert!(
        sc.violations
            .iter()
            .any(|vk| matches!(vk, ViolationKind::DeadlineMiss { thread } if thread == "handler")),
        "violations: {:?}",
        sc.violations
    );
    // The shortest counterexample: producer completes at t = 6 (c₁ = 2),
    // handler dispatched under the monitor's quantum, misses at t = 7.
    assert_eq!(sc.at_quantum, 7, "scenario:\n{}", sc.render());
}

#[test]
fn wcet_only_behaviour_is_clean() {
    // The deterministic all-WCET model — the behaviour a WCET simulation run
    // (or a WCET-only analysis) examines — has no failure anywhere in its
    // state space. Dispatches land at 4k + 3 ≢ 0 (mod 6).
    let m = witness(3, 3);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn bcet_only_behaviour_is_clean() {
    // Dispatches at 4k + 1 ≢ 0 (mod 6).
    let m = witness(1, 1);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn the_interior_point_is_the_culprit() {
    // Pin the producer to exactly 2 ms: dispatch at 4k + 2 hits the monitor
    // whenever k ≡ 1 (mod 3) — this *deterministic* behaviour always fails,
    // yet neither corner-case simulation would ever execute it.
    let m = witness(2, 2);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(!v.schedulable());
}

#[test]
fn some_random_walks_miss_what_exploration_always_finds() {
    // Random walks over the *same* nondeterministic model are single
    // simulation runs: each resolves the execution-time choice by coin flip.
    // Over a short horizon some walks stumble on the collision and others
    // don't — the §6 argument in one test.
    let m = witness(1, 3);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let mut found = 0;
    let mut clean = 0;
    for seed in 0..40 {
        let w = versa::random_walk(&tm.env, &tm.initial, 30, seed);
        if w.deadlocked {
            found += 1;
        } else {
            clean += 1;
        }
    }
    assert!(
        clean > 0,
        "at least one simulation run reports no failure ({found} of 40 found it)"
    );
    assert!(
        found > 0,
        "with 40 seeds, some run should stumble on the collision"
    );
}

#[test]
fn monitor_and_producer_always_meet_their_own_deadlines() {
    // The failure is confined to the handler: no scenario blames the others.
    let m = witness(1, 3);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    let sc = v.scenario().unwrap();
    for vk in &sc.violations {
        if let ViolationKind::DeadlineMiss { thread } = vk {
            assert_eq!(thread, "handler");
        }
    }
}
