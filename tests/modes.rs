//! Extension experiment — multi-modal models (§2 of the paper; its
//! translation omits them, §4: "quite involved"). Our bounded encoding:
//! root-level modes, thread gating through dispatcher activate/deactivate
//! handshakes at dispatch boundaries, and completion-raised trigger events.
//!
//! The scenario: a monitor (own processor) raises an `alarm` at completion,
//! switching the system from `nominal` into `degraded`, which activates a
//! `recovery` thread on the worker processor. If recovery's demand fits, the
//! system stays schedulable across the switch; if it overloads the worker
//! processor, the analysis finds the post-switch deadline miss — with the
//! mode events visible in the raised timeline.

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::{Category, EndpointRef, ModeTransition};
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions, ViolationKind};

/// `recovery_wcet_ms`: execution time of the mode-gated recovery thread.
/// `oscillate`: also add the degraded → nominal transition.
fn moded_model(recovery_wcet_ms: i64, oscillate: bool) -> InstanceModel {
    let mut pkg = PackageBuilder::new("Moded")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "DMS"))
        .thread("Monitor", |t| {
            t.out_event_port("alarm")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(8)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(8)))
        })
        .thread("Base", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(2), TimeVal::ms(2)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
        })
        .thread("Recovery", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(
                        TimeVal::ms(recovery_wcet_ms),
                        TimeVal::ms(recovery_wcet_ms),
                    ),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("mon", Category::Thread, "Monitor")
                .sub("base", Category::Thread, "Base")
                .sub("recovery", Category::Thread, "Recovery")
                .bind_processor("mon", "cpu1")
                .bind_processor("base", "cpu2")
                .bind_processor("recovery", "cpu2")
                .mode("nominal", true)
                .mode("degraded", false)
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    // The builder has no mode-gating helpers; patch the declarative model
    // directly: gate `recovery` and add the transition(s).
    let imp = pkg
        .impls
        .iter_mut()
        .find(|i| i.name == "Top.impl")
        .unwrap();
    imp.subcomponents
        .iter_mut()
        .find(|s| s.name == "recovery")
        .unwrap()
        .in_modes = vec!["degraded".into()];
    imp.mode_transitions.push(ModeTransition {
        src: "nominal".into(),
        trigger: EndpointRef::sub("mon", "alarm"),
        dst: "degraded".into(),
    });
    if oscillate {
        imp.mode_transitions.push(ModeTransition {
            src: "degraded".into(),
            trigger: EndpointRef::sub("mon", "alarm"),
            dst: "nominal".into(),
        });
    }
    instantiate(&pkg, "Top.impl").unwrap()
}

fn opts() -> TranslateOptions {
    TranslateOptions {
        enable_modes: true,
        ..Default::default()
    }
}

#[test]
fn moded_models_are_rejected_without_the_extension() {
    let m = moded_model(1, false);
    let err = translate(&m, &TranslateOptions::default()).unwrap_err();
    assert!(matches!(err, aadl2acsr::TranslateError::Validation(_)));
}

#[test]
fn mode_manager_appears_in_the_inventory() {
    let m = moded_model(1, false);
    let tm = translate(&m, &opts()).unwrap();
    assert_eq!(tm.inventory.mode_managers, 1);
    assert_eq!(tm.inventory.threads, 3);
    assert!(tm
        .names
        .roles
        .contains(&aadl2acsr::ComponentRole::ModeManager));
}

#[test]
fn light_recovery_is_schedulable_across_the_switch() {
    // base (2/4) + recovery (1/4) = 0.75 on cpu2: fine in both modes.
    let m = moded_model(1, false);
    let v = analyze(&m, &opts(), &AnalysisOptions::exhaustive()).unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn heavy_recovery_misses_only_after_the_switch() {
    // base (2/4) + recovery (3/4) = 1.25 on cpu2: the degraded mode must
    // miss — but only after the monitor's first completion triggers it.
    let m = moded_model(3, false);
    let v = analyze(&m, &opts(), &AnalysisOptions::default()).unwrap();
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(sc.violations.iter().any(|vk| matches!(
        vk,
        ViolationKind::DeadlineMiss { thread } if thread == "base" || thread == "recovery"
    )));
    // The raised timeline shows the mode machinery in action.
    let text = sc.render();
    assert!(text.contains("mode transition #0 triggered"), "{text}");
    assert!(text.contains("activate recovery"), "{text}");
    // The switch happens at the monitor's completion (t = 1); nothing can go
    // wrong before it.
    assert!(sc.at_quantum >= 1);
}

#[test]
fn oscillating_modes_stay_live() {
    // nominal ⇄ degraded on every monitor completion, with a feasible
    // recovery load: the system cycles forever without deadlock.
    let m = moded_model(1, true);
    let v = analyze(&m, &opts(), &AnalysisOptions::exhaustive()).unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
    // Deactivation must actually happen somewhere in the state space: the
    // timeline machinery sees both activate and deactivate events. (Verified
    // indirectly: the exploration is finite, so the recovery thread cannot
    // stay active forever accumulating state.)
    assert!(!v.truncated());
}

#[test]
fn nested_modes_are_rejected() {
    // A child system with its own modes is outside the supported fragment.
    let pkg = PackageBuilder::new("Nested")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .periodic_thread(
            "T",
            TimeVal::ms(4),
            (TimeVal::ms(1), TimeVal::ms(1)),
            TimeVal::ms(4),
        )
        .system("Inner", |s| s)
        .implementation("Inner.impl", Category::System, |i| {
            i.mode("a", true).mode("b", false)
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("t", Category::Thread, "T")
                .sub("inner", Category::System, "Inner.impl")
                .bind_processor("t", "cpu")
                .mode("x", true)
                .mode("y", false)
        })
        .build();
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let err = translate(&m, &opts()).unwrap_err();
    match err {
        aadl2acsr::TranslateError::Unsupported(msg) => {
            assert!(msg.contains("root"), "{msg}")
        }
        // Validation still flags the inner moded component.
        aadl2acsr::TranslateError::Validation(errs) => {
            assert!(!errs.is_empty())
        }
        other => panic!("unexpected: {other:?}"),
    }
}
