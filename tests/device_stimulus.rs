//! Device stimulus generators: devices are legal ultimate sources of
//! semantic connections (§2 of the paper). A device with a `Period` property
//! gets a periodic generator; one without gets a *free* generator that may
//! raise its event at any instant — making the exploration exhaustive over
//! arrival patterns, the formal-methods counterpart of a sporadic
//! environment assumption.

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions, ViolationKind};

fn device_model(device_period: Option<i64>, queue_size: i64, overflow: &str) -> InstanceModel {
    let overflow = overflow.to_owned();
    let pkg = PackageBuilder::new("Dev")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .device("Sensor", move |d| {
            let d = d.out_event_port("ping");
            match device_period {
                Some(p) => d.prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(p))),
                None => d,
            }
        })
        .thread("Handler", move |t| {
            t.in_event_port("ping_in")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(queue_size))
                .feature_prop(
                    names::OVERFLOW_HANDLING_PROTOCOL,
                    PropertyValue::Enum(overflow.clone()),
                )
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(2)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("sensor", Category::Device, "Sensor")
                .sub("handler", Category::Thread, "Handler")
                .connect("ping_conn", "sensor.ping", "handler.ping_in")
                .bind_processor("handler", "cpu")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

#[test]
fn periodic_device_generates_a_generator() {
    let m = device_model(Some(8), 1, "DropNewest");
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    assert_eq!(tm.inventory.device_gens, 1);
    assert_eq!(tm.inventory.queues, 1);
}

#[test]
fn periodic_arrivals_slower_than_separation_are_clean() {
    // Device every 8 ms, separation 4 ms: never queued past capacity, the
    // handler (1 ms ≤ 2 ms deadline, alone on its cpu) always meets it.
    let m = device_model(Some(8), 1, "Error");
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn free_device_explores_all_arrival_patterns() {
    // No Period: the generator may fire at any instant. With a dropping
    // queue the system absorbs any pattern…
    let m = device_model(None, 1, "DropNewest");
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn free_device_can_overflow_an_error_queue() {
    // …but under the Error protocol there exists an arrival pattern (a burst)
    // that overflows any finite queue — found by the exhaustive exploration.
    for size in [1, 3] {
        let m = device_model(None, size, "Error");
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(!v.schedulable(), "size {size}");
        let sc = v.scenario().unwrap();
        assert!(sc
            .violations
            .iter()
            .any(|vk| matches!(vk, ViolationKind::QueueOverflow { .. })));
    }
}

#[test]
fn burst_overflow_happens_instantly_with_queue_one() {
    // Two immediate raises overflow a 1-slot queue before any time passes.
    let m = device_model(None, 1, "Error");
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    let sc = v.scenario().unwrap();
    assert_eq!(sc.at_quantum, 0, "scenario:\n{}", sc.render());
}
