//! Experiment on the §4.4 event-send refinement:
//!
//! > Since many events can be raised during the execution of a thread, and
//! > each such event can cause a dispatch of another thread, analysis results
//! > can be very conservative. […] a common behavior of a periodic thread is
//! > to send data at the end of its computation period. This is the default
//! > treatment of data event connections in our translation.
//!
//! `SendPattern::AtCompletion` (the default) raises each event exactly once,
//! at completion; `SendPattern::Anytime` adds the raise-at-any-time self-loop
//! the paper describes for unrefined threads. The tests pin down the
//! conservatism: under `Anytime`, a 1-slot `Error` queue can always be
//! overflowed (two raises in a row), while the refined default only enqueues
//! once per dispatch and stays clean.

use aadl::examples::producer_handler;
use aadl::instance::instantiate;
use aadl2acsr::{analyze, AnalysisOptions, SendPattern, TranslateOptions, ViolationKind};

fn verdict(overflow: &str, pattern: SendPattern) -> aadl2acsr::AnalysisOutcome {
    let pkg = producer_handler(1, overflow);
    let m = instantiate(&pkg, "Top.impl").unwrap();
    analyze(
        &m,
        &TranslateOptions {
            send_pattern: pattern,
            ..Default::default()
        },
        &AnalysisOptions::default(),
    )
    .unwrap()
}

#[test]
fn at_completion_is_clean() {
    // One event per 20 ms period, separation 20 ms: the queue never overflows
    // and the handler always meets its deadline.
    let v = verdict("Error", SendPattern::AtCompletion);
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn anytime_is_conservative_overflowing_the_error_queue() {
    // The unrefined thread may raise the event at every instant while
    // computing: two raises inside one separation window overflow the 1-slot
    // queue — the "very conservative" outcome the paper warns about.
    let v = verdict("Error", SendPattern::Anytime);
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(sc
        .violations
        .iter()
        .any(|vk| matches!(vk, ViolationKind::QueueOverflow { .. })));
}

#[test]
fn anytime_with_dropping_queue_stays_live() {
    // Dropping surplus events absorbs the conservatism: no deadlock, but the
    // state space is larger than the refined default's.
    let drop_any = verdict("DropNewest", SendPattern::Anytime);
    assert!(drop_any.schedulable(), "stats: {:?}", drop_any.stats());
    let exhaustive_any = analyze(
        &instantiate(&producer_handler(1, "DropNewest"), "Top.impl").unwrap(),
        &TranslateOptions {
            send_pattern: SendPattern::Anytime,
            ..Default::default()
        },
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    let exhaustive_default = analyze(
        &instantiate(&producer_handler(1, "DropNewest"), "Top.impl").unwrap(),
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(exhaustive_any.schedulable() && exhaustive_default.schedulable());
    assert!(
        exhaustive_any.stats().states >= exhaustive_default.stats().states,
        "anytime {} vs default {}",
        exhaustive_any.stats().states,
        exhaustive_default.stats().states
    );
}
