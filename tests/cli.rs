//! Integration tests of the `aadlsched` command-line tool — the OSATE-plugin
//! equivalent (§5): exit codes, verdicts, the instance tree and the raised
//! scenario on stdout.

use std::process::Command;

fn aadlsched(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_aadlsched"))
        .args(args)
        .output()
        .expect("aadlsched runs")
}

fn write_model(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("aadlsched_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const OK_MODEL: &str = r#"
package Ok
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;
  thread T
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms .. 2 ms;
      Compute_Deadline => 10 ms;
  end T;
  system Top
  end Top;
  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      t: thread T;
    properties
      Actual_Processor_Binding => reference (cpu) applies to t;
  end Top.impl;
end Ok;
"#;

const BAD_MODEL: &str = r#"
package Bad
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;
  thread T
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 8 ms .. 8 ms;
      Compute_Deadline => 10 ms;
  end T;
  system Top
  end Top;
  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      t1: thread T;
      t2: thread T;
    properties
      Actual_Processor_Binding => reference (cpu) applies to t1, t2;
  end Top.impl;
end Bad;
"#;

/// A critical section longer than the thread's best-case execution time —
/// the well-formedness check rejects the `Critical_Section_Execution_Time`
/// association on the connection (line 29 of this source).
const BAD_CS_MODEL: &str = r#"package BadCs
public
  processor cpu_t
    properties
      Scheduling_Protocol => HPF;
  end cpu_t;
  data store
    properties
      Concurrency_Control_Protocol => Priority_Ceiling;
  end store;
  thread T
    features
      d: requires data access;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms .. 2 ms;
      Compute_Deadline => 10 ms;
      Priority => 1;
  end T;
  system Top
  end Top;
  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      s: data store;
      t: thread T;
    connections
      a1: data access s -> t.d { Critical_Section_Execution_Time => 5 ms; };
    properties
      Actual_Processor_Binding => reference (cpu) applies to t;
  end Top.impl;
end BadCs;
"#;

#[test]
fn schedulable_model_exits_zero() {
    let path = write_model("ok.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--exhaustive"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VERDICT: schedulable"), "{stdout}");
}

#[test]
fn unschedulable_model_exits_one_with_scenario() {
    let path = write_model("bad.aadl", BAD_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VERDICT: NOT schedulable"), "{stdout}");
    assert!(stdout.contains("VIOLATION"), "{stdout}");
    assert!(stdout.contains("DEADLOCK"), "{stdout}");
}

#[test]
fn omitted_root_auto_selects_the_top_level_system() {
    // Works both with a trailing flag and with no extra arguments at all.
    let path = write_model("ok_default_root.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "--exhaustive"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("root system: Top.impl (auto-selected)"),
        "{stdout}"
    );
    assert!(stdout.contains("VERDICT: schedulable"), "{stdout}");

    let out = aadlsched(&[path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn omitted_root_picks_the_unreferenced_impl_among_several() {
    // The bundled cruise-control model declares three system implementations;
    // only CruiseControl.impl is not instantiated by another one.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/models/cruise_control.aadl"
    );
    let out = aadlsched(&[path]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("root system: CruiseControl.impl (auto-selected)"),
        "{stdout}"
    );
}

#[test]
fn tree_flag_prints_the_instance_tree() {
    let path = write_model("ok_tree.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--tree"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("t : thread (T)"), "{stdout}");
    assert!(stdout.contains("-> cpu"), "{stdout}");
}

#[test]
fn acsr_flag_prints_definitions() {
    let path = write_model("ok_acsr.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--acsr"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("AwaitDispatch_t"), "{stdout}");
    assert!(stdout.contains("Dispatcher_t"), "{stdout}");
    assert!(stdout.contains("Compute_t"), "{stdout}");
}

#[test]
fn parse_errors_exit_two() {
    let path = write_model("broken.aadl", "package Broken public gadget X end");
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_exits_two() {
    let out = aadlsched(&["/nonexistent/nope.aadl", "Top.impl"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_exits_two_with_usage() {
    let path = write_model("ok_flag.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn quantum_override_is_applied() {
    let path = write_model("ok_q.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--quantum", "1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quantum = 1000 µs"), "{stdout}");
}

#[test]
fn exit_codes_cover_all_outcomes() {
    // 0 = schedulable, 1 = deadline miss, 2 = usage/input error,
    // 3 = unknown (state budget exhausted).
    let ok = write_model("codes_ok.aadl", OK_MODEL);
    assert_eq!(
        aadlsched(&[ok.to_str().unwrap(), "Top.impl"]).status.code(),
        Some(0)
    );
    let bad = write_model("codes_bad.aadl", BAD_MODEL);
    assert_eq!(
        aadlsched(&[bad.to_str().unwrap(), "Top.impl"]).status.code(),
        Some(1)
    );
    assert_eq!(aadlsched(&["/nonexistent/nope.aadl"]).status.code(), Some(2));
    let out = aadlsched(&[ok.to_str().unwrap(), "Top.impl", "--max-states", "3"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("VERDICT: unknown"));
}

#[test]
fn shards_flag_never_changes_the_outcome() {
    // The visited-set shard count is a concurrency knob: any value must
    // yield the same verdict and the same exploration statistics line.
    let bad = write_model("shards_bad.aadl", BAD_MODEL);
    let path = bad.to_str().unwrap();
    let base = aadlsched(&[path, "Top.impl", "--exhaustive"]);
    assert_eq!(base.status.code(), Some(1));
    let base_line = String::from_utf8_lossy(&base.stdout)
        .lines()
        .find(|l| l.starts_with("exploration:"))
        .unwrap()
        .split(" in ") // strip the wall-clock tail
        .next()
        .unwrap()
        .to_string();
    for extra in [
        &["--threads", "4", "--shards", "1"][..],
        &["--threads", "4", "--shards", "16"][..],
        &["--threads", "8"][..], // auto shards
    ] {
        let mut args = vec![path, "Top.impl", "--exhaustive"];
        args.extend_from_slice(extra);
        let out = aadlsched(&args);
        assert_eq!(out.status.code(), Some(1), "{extra:?}");
        let line = String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("exploration:"))
            .unwrap()
            .split(" in ")
            .next()
            .unwrap()
            .to_string();
        assert_eq!(line, base_line, "{extra:?}");
    }
}

#[test]
fn metrics_flag_writes_a_schema_versioned_report() {
    let path = write_model("metrics.aadl", OK_MODEL);
    let report_path = std::env::temp_dir().join("aadlsched_cli_tests/metrics.json");
    let _ = std::fs::remove_file(&report_path);
    let out = aadlsched(&[
        path.to_str().unwrap(),
        "Top.impl",
        "--exhaustive",
        "--metrics",
        report_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let report = std::fs::read_to_string(&report_path).unwrap();
    for key in [
        "\"schema\": \"aadlsched-metrics\"",
        "\"version\": 6",
        "\"run_id\"",
        "\"tool\": \"aadlsched\"",
        "\"model\"",
        "\"translation\"",
        "\"exploration\"",
        "\"verdict\"",
        "\"spans\"",
        "\"name\": \"translate\"",
        "\"name\": \"explore\"",
        "\"name\": \"explore.level\"",
        "\"counters\"",
        "\"histograms\"",
        "\"translate.skeleton_size\"",
        "\"peak_frontier\"",
    ] {
        assert!(report.contains(key), "missing {key} in {report}");
    }
}

#[test]
fn metrics_report_is_reproducible_under_the_fake_clock() {
    let path = write_model("metrics_det.aadl", OK_MODEL);
    let run = |name: &str| {
        let report_path = std::env::temp_dir().join(format!("aadlsched_cli_tests/{name}"));
        let out = Command::new(env!("CARGO_BIN_EXE_aadlsched"))
            .args([
                path.to_str().unwrap(),
                "Top.impl",
                "--exhaustive",
                "--metrics",
                report_path.to_str().unwrap(),
            ])
            .env("AADLSCHED_FAKE_CLOCK", "1000")
            .output()
            .expect("aadlsched runs");
        assert!(out.status.success(), "{out:?}");
        std::fs::read_to_string(&report_path).unwrap()
    };
    let first = run("det1.json");
    let second = run("det2.json");
    assert_eq!(first, second, "fake-clock reports must be byte-identical");
    // The run id hashes the inputs, not the clock — stable across runs.
    assert!(first.contains("\"run_id\""));
}

#[test]
fn trace_events_flag_writes_json_lines() {
    let path = write_model("trace.aadl", OK_MODEL);
    let trace_path = std::env::temp_dir().join("aadlsched_cli_tests/trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let out = aadlsched(&[
        path.to_str().unwrap(),
        "Top.impl",
        "--exhaustive",
        "--trace-events",
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stream = std::fs::read_to_string(&trace_path).unwrap();
    assert!(stream.lines().count() > 2, "{stream}");
    for line in stream.lines() {
        assert!(line.starts_with("{\"type\":\"span\"") || line.starts_with("{\"type\":\"event\""));
    }
    assert!(stream.contains("\"name\":\"verdict\""), "{stream}");
}

#[test]
fn progress_flag_emits_deterministic_stderr_lines() {
    // The cruise-control exhaustive exploration reaches 256 states; with
    // doubling thresholds from 64 that is exactly the 64/128/256 crossings.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/models/cruise_control.aadl"
    );
    let out = aadlsched(&[path, "--exhaustive", "--progress"]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("progress: "))
        .collect();
    assert_eq!(lines.len(), 3, "{stderr}");
    assert!(lines[0].starts_with("progress: 64 states"), "{stderr}");
    assert!(lines[2].starts_with("progress: 256 states"), "{stderr}");
}

#[test]
fn protocol_flag_switches_the_inversion_verdict() {
    // The bundled inversion model misses under its declared None_Specified
    // protocol; --protocol swaps in PCP or PIP without editing the model.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/models/inversion.aadl");
    let none = aadlsched(&[path]);
    assert_eq!(none.status.code(), Some(1), "{none:?}");
    let stdout = String::from_utf8_lossy(&none.stdout);
    assert!(stdout.contains("blocked on `shared`"), "{stdout}");

    for flag in ["pcp", "pip", "Priority_Ceiling"] {
        let out = aadlsched(&[path, "--protocol", flag]);
        assert!(out.status.success(), "--protocol {flag}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("forced by --protocol"), "{stdout}");
        assert!(stdout.contains("VERDICT: schedulable"), "{stdout}");
    }
}

#[test]
fn bad_protocol_value_exits_two_with_usage() {
    let path = write_model("ok_proto.aadl", OK_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--protocol", "fifo"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown protocol `fifo`"), "{stderr}");
}

#[test]
fn validation_failure_names_the_property_and_its_source_span() {
    let path = write_model("bad_cs.aadl", BAD_CS_MODEL);
    let out = aadlsched(&[path.to_str().unwrap(), "Top.impl"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("translation error"), "{stderr}");
    // The offending property is named, and the message points into the
    // source text: `<file>:29:<col>` — the connection property association.
    assert!(stderr.contains("Critical_Section_Execution_Time"), "{stderr}");
    assert!(stderr.contains("bad_cs.aadl:29:"), "{stderr}");
}

#[test]
fn zones_flag_matches_concrete_on_the_longperiod_model() {
    // The bundled long-hyperperiod model (co-prime periods 17/19/23/29 ms,
    // hyperperiod 215441 quanta) is the zone-mode showcase: both engines
    // agree on the verdict, and the pinned state counts document the >10×
    // compression EXPERIMENTS.md Q13 measures. The counts are exact —
    // both engines are deterministic — so any drift in either engine
    // (or in the translation) shows up here.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/models/longperiod.aadl"
    );
    let concrete = aadlsched(&[path, "--exhaustive"]);
    assert!(concrete.status.success(), "{concrete:?}");
    let stdout = String::from_utf8_lossy(&concrete.stdout);
    assert!(stdout.contains("VERDICT: schedulable"), "{stdout}");
    assert!(stdout.contains("exploration: 306015 states"), "{stdout}");

    let zones = aadlsched(&[path, "--exhaustive", "--zones"]);
    assert!(zones.status.success(), "{zones:?}");
    let stdout = String::from_utf8_lossy(&zones.stdout);
    assert!(stdout.contains("VERDICT: schedulable"), "{stdout}");
    assert!(stdout.contains("exploration: 25094 states"), "{stdout}");
}

#[test]
fn zone_advance_and_cap_flags_never_change_the_verdict() {
    let path = write_model("ok_zoneflags.aadl", OK_MODEL);
    let base = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--zones"]);
    assert!(base.status.success(), "{base:?}");
    let base_verdict = String::from_utf8_lossy(&base.stdout)
        .lines()
        .find(|l| l.contains("VERDICT"))
        .unwrap()
        .to_string();
    for extra in [
        &["--zone-advance", "replay"][..],
        &["--zone-advance", "closed"][..],
        &["--zone-cap", "1"][..],
        &["--zone-cap", "3"][..],
    ] {
        let mut args = vec![path.to_str().unwrap(), "Top.impl", "--zones"];
        args.extend_from_slice(extra);
        let out = aadlsched(&args);
        assert!(out.status.success(), "{extra:?}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(&base_verdict), "{extra:?}: {stdout}");
    }
    // Bad values are usage errors.
    let bad = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--zone-advance", "magic"]);
    assert_eq!(bad.status.code(), Some(2));
    let bad = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--zone-cap", "0"]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn dot_with_zones_warns_that_zones_are_ignored() {
    let path = write_model("ok_dot_zones.aadl", OK_MODEL);
    let dot = std::env::temp_dir().join("aadlsched_cli_tests/ok_zones.dot");
    let _ = std::fs::remove_file(&dot);
    let out = aadlsched(&[
        path.to_str().unwrap(),
        "Top.impl",
        "--zones",
        "--dot",
        dot.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--zones is ignored"),
        "expected an explicit warning on stderr, got: {stderr}"
    );
    // The export still happens — on the concrete engine.
    let contents = std::fs::read_to_string(&dot).unwrap();
    assert!(contents.starts_with("digraph lts {"), "{contents}");
    // Without --dot there is no warning.
    let quiet = aadlsched(&[path.to_str().unwrap(), "Top.impl", "--zones"]);
    assert!(quiet.status.success());
    assert!(
        !String::from_utf8_lossy(&quiet.stderr).contains("ignored"),
        "no warning expected without --dot"
    );
}

#[test]
fn dot_export_writes_a_file() {
    let path = write_model("ok_dot.aadl", OK_MODEL);
    let dot = std::env::temp_dir().join("aadlsched_cli_tests/ok.dot");
    let _ = std::fs::remove_file(&dot);
    let out = aadlsched(&[
        path.to_str().unwrap(),
        "Top.impl",
        "--dot",
        dot.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let contents = std::fs::read_to_string(&dot).unwrap();
    assert!(contents.starts_with("digraph lts {"), "{contents}");
}
