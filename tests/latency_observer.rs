//! Experiment Q6 — end-to-end latency observers (§5 of the paper).
//!
//! A two-hop data flow across the bus: `sensor` (cpu1) → `control` (cpu2) →
//! `actuator` (cpu2). The observer measures from the completion of `sensor`
//! to the completion of `actuator`; the model deadlocks iff the latency bound
//! is below what the pipeline can achieve.

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, AnalysisOptions, LatencyObserver, TranslateOptions, ViolationKind};

fn pipeline() -> InstanceModel {
    let periodic = |period: i64, cmin: i64, cmax: i64| {
        move |t: aadl::builder::TypeBuilder| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(period)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(cmin), TimeVal::ms(cmax)),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(period)),
                )
        }
    };
    let pkg = PackageBuilder::new("Pipeline")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .bus("net")
        .thread("Sensor", |t| periodic(8, 1, 2)(t.out_data_port("reading")))
        .thread("Control", |t| {
            periodic(8, 2, 2)(t.in_data_port("reading").out_data_port("cmd"))
        })
        .thread("Actuator", |t| periodic(8, 1, 1)(t.in_data_port("cmd")))
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("b", Category::Bus, "net")
                .sub("sensor", Category::Thread, "Sensor")
                .sub("control", Category::Thread, "Control")
                .sub("actuator", Category::Thread, "Actuator")
                .connect("c1", "sensor.reading", "control.reading")
                .bind_bus("b")
                .connect("c2", "control.cmd", "actuator.cmd")
                .bind_processor("sensor", "cpu1")
                .bind_processor("control", "cpu2")
                .bind_processor("actuator", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

fn verdict_with_bound(bound_ms: i64) -> aadl2acsr::AnalysisOutcome {
    let m = pipeline();
    let from = m.find("sensor").unwrap();
    let to = m.find("actuator").unwrap();
    analyze(
        &m,
        &TranslateOptions {
            observers: vec![LatencyObserver {
                from,
                to,
                bound: TimeVal::ms(bound_ms),
            }],
            ..Default::default()
        },
        &AnalysisOptions::default(),
    )
    .unwrap()
}

#[test]
fn pipeline_without_observer_is_schedulable() {
    let m = pipeline();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn generous_latency_bound_passes() {
    // The worst behaviour is cross-frame: the actuator may complete *before*
    // the sensor of the same frame (its data is one frame old), so the
    // observed flow only ends at the next actuator completion — up to
    // t = 8 + 3 with the observer started at t = 1, i.e. 10 ms.
    let v = verdict_with_bound(10);
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn impossible_latency_bound_fails_with_a_latency_violation() {
    // The actuator can complete at most ~1 quantum after the sensor (both
    // dispatched together), but a 1 ms bound cannot cover the control hop in
    // every behaviour.
    let v = verdict_with_bound(1);
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(
        sc.violations
            .iter()
            .any(|vk| matches!(vk, ViolationKind::LatencyExceeded { observer: 0 })),
        "violations: {:?}",
        sc.violations
    );
}

#[test]
fn the_latency_frontier_is_monotone() {
    // Increasing bounds flip the verdict exactly once.
    let mut last = false;
    let mut flips = 0;
    for bound in 1..=12 {
        let ok = verdict_with_bound(bound).schedulable();
        if ok != last {
            flips += 1;
            last = ok;
        }
    }
    assert!(last, "the largest bound passes");
    assert_eq!(flips, 1, "single pass/fail frontier");
}

#[test]
fn observer_inventory_is_reported() {
    let m = pipeline();
    let from = m.find("sensor").unwrap();
    let to = m.find("actuator").unwrap();
    let tm = aadl2acsr::translate(
        &m,
        &TranslateOptions {
            observers: vec![LatencyObserver {
                from,
                to,
                bound: TimeVal::ms(8),
            }],
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(tm.inventory.observers, 1);
    assert_eq!(tm.inventory.threads, 3);
    // 3 skeletons + 3 dispatchers + 1 observer (data connections ⇒ no queues).
    assert_eq!(tm.names.roles.len(), 7);
}
