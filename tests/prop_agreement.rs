//! Property-based verdict agreement (experiment Q2 as a property):
//! for synchronous periodic task sets with fixed execution times and
//! constrained deadlines, the exhaustive ACSR analysis must agree with the
//! exact classical analyses on *every* generated instance.
//!
//! Randomized task sets come from the workspace's vendored [`det`] harness
//! (`det_prop!` runs 64 seeded cases per property by default; failures print
//! a `DET_PROP_SEED` that reproduces the exact case).

use aadl::instance::instantiate;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use det::det_prop;
use det::prop::uints;
use det::DetRng;
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::{dm_schedulable, rm_schedulable};
use sched_baselines::taskset::taskset_to_package;
use sched_baselines::types::{Task, TaskSet};

/// Small bounded task sets: 2 tasks, periods from a tiny pool, so each
/// exploration finishes in milliseconds and the harness can run dozens of
/// cases.
fn arb_taskset(rng: &mut DetRng) -> TaskSet {
    let tasks = (0..2)
        .map(|_| {
            let period = *rng.pick(&[4u64, 5, 6, 8]);
            let c = rng.range_u64(1..5);
            Task::new(0, period, c.min(period))
        })
        .collect();
    TaskSet::new(tasks)
}

fn acsr_verdict(ts: &TaskSet, protocol: &str) -> bool {
    let pkg = taskset_to_package(ts, protocol);
    let m = instantiate(&pkg, "Top.impl").unwrap();
    analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap()
    .schedulable()
}

det_prop! {
    fn acsr_rms_agrees_with_exact_rta(ts in arb_taskset) {
        assert_eq!(acsr_verdict(&ts, "RMS"), rm_schedulable(&ts), "{:?}", ts);
    }

    fn acsr_edf_agrees_with_processor_demand(ts in arb_taskset) {
        assert_eq!(acsr_verdict(&ts, "EDF"), edf_schedulable(&ts), "{:?}", ts);
    }

    fn acsr_dms_agrees_with_exact_rta_on_constrained_deadlines(
        ts in arb_taskset, d1 in uints(0..3), d2 in uints(0..3)
    ) {
        let mut ts = ts;
        // Shrink deadlines (still ≥ wcet) to make DM non-trivial.
        let shrink = [d1, d2];
        for (t, s) in ts.tasks.iter_mut().zip(shrink) {
            t.deadline = (t.period - s.min(t.period - 1)).max(t.wcet);
        }
        assert_eq!(acsr_verdict(&ts, "DMS"), dm_schedulable(&ts), "{:?}", ts);
    }

    fn edf_dominates_rms_in_acsr_too(ts in arb_taskset) {
        // EDF optimality: anything the ACSR RMS analysis accepts, the ACSR
        // EDF analysis must accept as well.
        if acsr_verdict(&ts, "RMS") {
            assert!(acsr_verdict(&ts, "EDF"), "{:?}", ts);
        }
    }
}
