//! Property-based verdict agreement for the concurrency-control subsystem:
//! randomized HPF task sets with one shared resource, judged three ways —
//! the blocking-aware response-time analysis, the locking simulator, and the
//! exhaustive ACSR exploration of the translated AADL model.
//!
//! Two kinds of property:
//!
//! * **Exact agreement** with the simulator: for synchronous release, fixed
//!   execution times and distinct priorities every scheduling and lock-
//!   acquisition race is resolved deterministically on both sides, so the
//!   one-run simulation and the exhaustive exploration see the *same*
//!   behaviour and must return the same verdict, protocol by protocol.
//! * **Implication** from the RTA: with blocking the critical-instant bound
//!   is sufficient but not necessary (it charges every job the worst
//!   lower-priority section, a pattern the synchronous release need not
//!   produce), so the classical test may reject sets the exhaustive analysis
//!   proves schedulable — but never the other way around.
//!
//! `det_prop!` runs 64 seeded cases per property; failures print a
//! `DET_PROP_SEED` that reproduces the exact case.

use aadl::instance::instantiate;
use aadl::properties::ConcurrencyControlProtocol;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use det::det_prop;
use det::DetRng;
use sched_baselines::rta::rta_schedulable_blocking;
use sched_baselines::simulator::{simulate_locking, ExecModel, Policy};
use sched_baselines::taskset::taskset_to_package_locking;
use sched_baselines::types::{LockProtocol, Task, TaskSet};

/// Three HPF tasks with distinct priorities, fixed execution times and
/// implicit deadlines; two of them share resource 0 with a critical section
/// of `1..=wcet` quanta (so the section always fits inside a job, as the
/// translation's well-formedness check requires).
fn arb_locking_taskset(rng: &mut DetRng) -> TaskSet {
    let orders: [[u32; 3]; 6] = [
        [9, 5, 3],
        [9, 3, 5],
        [5, 9, 3],
        [5, 3, 9],
        [3, 9, 5],
        [3, 5, 9],
    ];
    let prios = *rng.pick(&orders);
    let pairs: [[usize; 2]; 3] = [[0, 1], [0, 2], [1, 2]];
    let sharing = *rng.pick(&pairs);
    let mut tasks: Vec<Task> = (0..3)
        .map(|i| {
            let period = *rng.pick(&[4u64, 5, 8, 10]);
            let c = rng.range_u64(1..4).min(period);
            let mut t = Task::new(0, period, c);
            t.priority = Some(prios[i]);
            t
        })
        .collect();
    for &i in &sharing {
        let len = rng.range_u64(1..=tasks[i].wcet);
        tasks[i] = tasks[i].clone().with_cs(0, len);
    }
    TaskSet::new(tasks)
}

/// Priority order (highest first) for the RTA.
fn hpf_order(ts: &TaskSet) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ts.tasks.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ts.tasks[i].priority.unwrap_or(0)));
    order
}

fn acsr_verdict(ts: &TaskSet, ccp: ConcurrencyControlProtocol) -> bool {
    let pkg = taskset_to_package_locking(ts, "HPF", ccp);
    let m = instantiate(&pkg, "Top.impl").unwrap();
    analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap()
    .schedulable()
}

fn sim_verdict(ts: &TaskSet, protocol: LockProtocol) -> bool {
    simulate_locking(ts, Policy::Hpf, ExecModel::Wcet, ts.hyperperiod(), protocol).ok()
}

det_prop! {
    fn acsr_pcp_agrees_with_the_locking_simulation(ts in arb_locking_taskset) {
        assert_eq!(
            acsr_verdict(&ts, ConcurrencyControlProtocol::PriorityCeiling),
            sim_verdict(&ts, LockProtocol::Ceiling),
            "{:?}", ts
        );
    }

    fn acsr_pip_agrees_with_the_locking_simulation(ts in arb_locking_taskset) {
        assert_eq!(
            acsr_verdict(&ts, ConcurrencyControlProtocol::PriorityInheritance),
            sim_verdict(&ts, LockProtocol::Inheritance),
            "{:?}", ts
        );
    }

    fn acsr_plain_mutex_agrees_with_the_locking_simulation(ts in arb_locking_taskset) {
        assert_eq!(
            acsr_verdict(&ts, ConcurrencyControlProtocol::NoneSpecified),
            sim_verdict(&ts, LockProtocol::None),
            "{:?}", ts
        );
    }

    fn blocking_rta_is_sufficient_for_acsr_pcp(ts in arb_locking_taskset) {
        if rta_schedulable_blocking(&ts, &hpf_order(&ts), LockProtocol::Ceiling) {
            assert!(
                acsr_verdict(&ts, ConcurrencyControlProtocol::PriorityCeiling),
                "RTA certified an ACSR-unschedulable set: {:?}", ts
            );
        }
    }
}
