//! Experiment F1 — the cruise-control system of Fig. 1, end to end.
//!
//! Reproduces the paper's §4.1 account of the example: the translation yields
//! six thread processes and six dispatchers with no queues; the analysis
//! verdict is produced per the §5 pipeline; and the overloaded variant's
//! failing scenario is raised back to AADL terms.

use aadl::examples::{cruise_control, cruise_control_model, cruise_control_overloaded};
use aadl::instance::instantiate;
use aadl::properties::TimeVal;
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions, ViolationKind};

#[test]
fn translation_inventory_matches_section_4_1() {
    let m = cruise_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    assert_eq!(tm.inventory.threads, 6, "six ACSR thread processes");
    assert_eq!(tm.inventory.dispatchers, 6, "six dispatcher processes");
    assert_eq!(tm.inventory.queues, 0, "all connections are data connections");
}

#[test]
fn nominal_system_is_schedulable_and_fully_explored() {
    let m = cruise_control_model();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable());
    assert!(!v.truncated());
    assert!(v.scenario().is_none());
    // The composed state space is non-trivial but finite.
    assert!(v.stats().states > 100, "states: {}", v.stats().states);
}

#[test]
fn overloaded_ccl_processor_fails_with_a_raised_scenario() {
    let pkg = cruise_control_overloaded();
    let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(sc.violations.iter().any(|vk| matches!(
        vk,
        ViolationKind::DeadlineMiss { thread } if thread.starts_with("ccl.")
    )));
    let text = sc.render();
    assert!(text.contains("VIOLATION"));
    assert!(text.contains("DEADLOCK"));
}

#[test]
fn hci_processor_alone_is_unaffected_by_the_ccl_overload() {
    // The overload is confined to the CCL processor: the HCI threads never
    // appear as deadline-missing.
    let pkg = cruise_control_overloaded();
    let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    let sc = v.scenario().unwrap();
    assert!(sc.violations.iter().all(|vk| match vk {
        ViolationKind::DeadlineMiss { thread } => !thread.starts_with("hci."),
        _ => true,
    }));
}

#[test]
fn verdicts_agree_across_schedulers_on_the_nominal_system() {
    // The nominal system is comfortably schedulable under every policy
    // encoding of §5.
    for protocol in ["RMS", "DMS", "EDF"] {
        let pkg = aadl::examples::cruise_control_scheduled(protocol);
        let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
        let v = analyze(
            &m,
            &TranslateOptions::default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(v.schedulable(), "{protocol} should schedule the nominal system");
    }
}

#[test]
fn textual_model_analyzes_identically_to_the_built_one() {
    // Render the package to AADL text, re-parse, re-instantiate, re-analyze:
    // the whole front end round-trips.
    let pkg = cruise_control();
    let text = aadl::pretty::render_package(&pkg);
    let reparsed = aadl::parser::parse_package(&text).unwrap();
    let m1 = cruise_control_model();
    let m2 = instantiate(&reparsed, "CruiseControl.impl").unwrap();
    let v1 = analyze(
        &m1,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    let v2 = analyze(
        &m2,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert_eq!(v1.schedulable(), v2.schedulable());
    assert_eq!(v1.stats().states, v2.stats().states);
}

#[test]
fn coarser_quantum_stays_schedulable_here_with_fewer_states() {
    // Q1 companion: the 10 ms quantum rounds conservatively yet this system
    // remains schedulable, at a fraction of the state count.
    let m = cruise_control_model();
    let fine = analyze(
        &m,
        &TranslateOptions::default(), // 5 ms GCD quantum
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    let coarse = analyze(
        &m,
        &TranslateOptions {
            quantum: Some(TimeVal::ms(10)),
            ..Default::default()
        },
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(fine.schedulable() && coarse.schedulable());
    assert!(
        coarse.stats().states < fine.stats().states,
        "coarse {} vs fine {}",
        coarse.stats().states,
        fine.stats().states
    );
}
