//! Extension experiment — shared data via access connections: the `R` set of
//! Fig. 5 of the paper, under the §4.1 quantum-exclusive semantics ("access
//! to shared data is modeled as taking the whole quantum, since only one
//! thread can gain access to it during the quantum").
//!
//! The paper's translation omits access connections (§4: they require
//! "encoding of concurrency control protocols"); this is the implementation
//! of the hook its Fig. 5 leaves open. The headline effect is **remote
//! blocking**: a thread on its own processor can miss a deadline because a
//! thread on *another* processor holds the shared data during some quanta.

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions, ViolationKind};

/// Two threads on different processors sharing a data component.
/// `T_high` (cpu1): period 12, exec 2, deadline 12 — enough headroom to
/// absorb any blocking (worst response 2 + 5 = 7). `T_low` (cpu2): period
/// 10, exec 5, deadline `low_deadline_ms`. Without sharing, `T_low` alone
/// responds in 5 ms; with sharing it can lose up to 2 quanta per `T_high`
/// activation, for a worst response of 7 ms.
fn shared_model(low_deadline_ms: i64, share: bool) -> InstanceModel {
    let pkg = PackageBuilder::new("Shared")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .component("store", Category::Data, |d| d)
        .thread("THigh", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(12)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(2), TimeVal::ms(2)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(12)))
        })
        .thread("TLow", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(10)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(5), TimeVal::ms(5)),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(low_deadline_ms)),
                )
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            let mut i = i
                .sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("shared", Category::Data, "store")
                .sub("t_high", Category::Thread, "THigh")
                .sub("t_low", Category::Thread, "TLow")
                .bind_processor("t_high", "cpu1")
                .bind_processor("t_low", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                );
            if share {
                i = i
                    .connect_data_access("a1", "shared", "t_high")
                    .connect_data_access("a2", "shared", "t_low");
            }
            i
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

#[test]
fn access_connections_resolve() {
    let m = shared_model(6, true);
    assert_eq!(m.accesses.len(), 2);
    let low = m.find("t_low").unwrap();
    let accs = m.accesses_of(low);
    assert_eq!(accs.len(), 1);
    assert_eq!(m.component(accs[0].data).name, "shared");
}

#[test]
fn without_sharing_the_tight_deadline_holds() {
    let m = shared_model(6, false);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "each thread alone on its processor");
}

#[test]
fn remote_blocking_breaks_the_tight_deadline() {
    // With the shared store, T_low can lose the 2 quanta in which T_high
    // computes: worst response 5 + 2 = 7 > 6.
    let m = shared_model(6, true);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(sc.violations.iter().any(|vk| matches!(
        vk,
        ViolationKind::DeadlineMiss { thread } if thread == "t_low"
    )));
    // The raised timeline shows T_low preempted while T_high runs — the
    // remote-blocking quantum made visible.
    assert!(sc.timeline.iter().any(|row| {
        row.activities
            .iter()
            .any(|(p, a)| p == "t_low" && *a == aadl2acsr::diagnose::Activity::Preempted)
            && row
                .activities
                .iter()
                .any(|(p, _)| p == "t_high")
    }));
}

#[test]
fn a_relaxed_deadline_absorbs_the_blocking() {
    // Worst-case response 5 + 2 = 7 ≤ 8: schedulable even with sharing.
    let m = shared_model(8, true);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn same_processor_sharers_do_not_deadlock() {
    // On one processor the cpu already serializes the sharers; claiming R
    // only while computing keeps the composition live.
    let pkg = PackageBuilder::new("SameCpu")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .component("store", Category::Data, |d| d)
        .periodic_thread(
            "T1",
            TimeVal::ms(10),
            (TimeVal::ms(2), TimeVal::ms(2)),
            TimeVal::ms(10),
        )
        .periodic_thread(
            "T2",
            TimeVal::ms(20),
            (TimeVal::ms(4), TimeVal::ms(4)),
            TimeVal::ms(20),
        )
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("shared", Category::Data, "store")
                .sub("t1", Category::Thread, "T1")
                .sub("t2", Category::Thread, "T2")
                .bind_processor("t1", "cpu")
                .bind_processor("t2", "cpu")
                .connect_data_access("a1", "shared", "t1")
                .connect_data_access("a2", "shared", "t2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(2)),
                )
        })
        .build();
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn access_connections_parse_and_round_trip() {
    let src = r#"
package Acc
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;
  data store
  end store;
  thread T
    features
      d: requires data access;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms .. 2 ms;
      Compute_Deadline => 10 ms;
  end T;
  system Top
  end Top;
  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      shared: data store;
      t1: thread T;
    connections
      a1: data access shared -> t1.d;
    properties
      Actual_Processor_Binding => reference (cpu) applies to t1;
  end Top.impl;
end Acc;
"#;
    let pkg = aadl::parser::parse_package(src).unwrap();
    let text = aadl::pretty::render_package(&pkg);
    let reparsed = aadl::parser::parse_package(&text).unwrap();
    assert_eq!(pkg, reparsed);
    let m = instantiate(&pkg, "Top.impl").unwrap();
    assert_eq!(m.accesses.len(), 1);
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable());
}
