//! End-to-end regression on the flight-control model — the "everything at
//! once" system: device stimulus, sporadic and aperiodic dispatch, queues,
//! a bus-bound data path, cross-processor shared data, three processors.

use aadl::examples::flight_control_model;
use aadl2acsr::{analyze, translate, AnalysisOptions, ComponentRole, TranslateOptions};

#[test]
fn inventory_covers_every_process_kind() {
    let m = flight_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    assert_eq!(tm.inventory.threads, 6);
    assert_eq!(tm.inventory.dispatchers, 6);
    // Two queued connections: gps → nav_filter, autopilot → alert_mgr.
    assert_eq!(tm.inventory.queues, 2);
    assert_eq!(tm.inventory.device_gens, 1);
    assert!(tm
        .names
        .roles
        .iter()
        .any(|r| matches!(r, ComponentRole::DeviceGen(_))));
}

#[test]
fn the_system_is_schedulable_end_to_end() {
    let m = flight_control_model();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
    assert!(!v.truncated());
}

#[test]
fn exhaustive_sweep_is_finite_and_clean() {
    let m = flight_control_model();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
    // A real product space, but bounded.
    assert!(v.stats().states > 50, "states: {}", v.stats().states);
    assert!(v.stats().states < 2_000_000, "states: {}", v.stats().states);
}

#[test]
fn compact_mode_agrees() {
    let m = flight_control_model();
    let compact = analyze(
        &m,
        &TranslateOptions {
            compact: true,
            ..Default::default()
        },
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(compact.schedulable());
}

#[test]
fn parallel_exploration_matches_sequential() {
    let m = flight_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let seq = versa::explore(&tm.env, &tm.initial, &versa::Options::default());
    let par = versa::explore(
        &tm.env,
        &tm.initial,
        &versa::Options::default().with_threads(4),
    );
    assert_eq!(seq.num_states(), par.num_states());
    assert_eq!(seq.deadlocks, par.deadlocks);
}

#[test]
fn overloading_the_control_processor_is_caught() {
    // Stress variant: slow the autopilot down so control_cpu exceeds 1.
    let mut pkg = aadl::examples::flight_control();
    let ap = pkg
        .types
        .iter_mut()
        .find(|t| t.name == "Autopilot")
        .unwrap();
    for prop in &mut ap.properties {
        if prop.name == aadl::properties::names::COMPUTE_EXECUTION_TIME {
            prop.value = aadl::properties::PropertyValue::TimeRange(
                aadl::properties::TimeVal::ms(20),
                aadl::properties::TimeVal::ms(20),
            );
        }
    }
    let m = aadl::instance::instantiate(&pkg, "Top.impl").unwrap();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(sc.violations.iter().any(|vk| matches!(
        vk,
        aadl2acsr::ViolationKind::DeadlineMiss { thread }
            if thread == "autopilot" || thread == "servo_driver"
    )));
}
