//! Property-based equivalence of the interned engine and the pre-interning
//! baseline: hash-consing and successor memoization are *representation*
//! changes and must be invisible in results. For every generated task set the
//! shipped engine ([`versa::explore`], TermId-keyed visited set, memoized
//! [`acsr::StepSession`]) must agree **byte for byte** with the preserved
//! `HashedP` engine ([`versa::explore_hashed`]) on the state table, the
//! deadlock set, the transition/dedup counts, and the full shortest-deadlock
//! trace — sequentially and in parallel, with the memo on and off.
//!
//! Randomized task sets come from the workspace's vendored [`det`] harness
//! (`det_prop!` runs 64 seeded cases per property by default; failures print
//! a `DET_PROP_SEED` that reproduces the exact case).

use aadl::instance::instantiate;
use aadl2acsr::{translate, TranslateOptions};
use det::det_prop;
use det::DetRng;
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};
use versa::{explore, explore_hashed, Exploration, Options, StateId};

/// Bounded random specs: 2–4 tasks over a small period pool so the
/// exhaustive exploration stays test-sized, utilizations spanning clearly
/// schedulable to clearly overloaded (the overloaded ones are the valuable
/// cases — they deadlock, exercising the shortest-trace comparison).
fn arb_spec(rng: &mut DetRng) -> TaskSetSpec {
    TaskSetSpec {
        n: rng.range_usize(2..5),
        target_utilization: *rng.pick(&[0.4, 0.6, 0.8, 1.0]),
        periods: vec![4, 5, 8, 10],
        seed: rng.next_u64(),
    }
}

/// Full-structure comparison of an interned-engine run against the baseline.
fn assert_identical(base: &Exploration, new: &Exploration, ctx: &str) {
    assert_eq!(base.num_states(), new.num_states(), "num_states: {ctx}");
    assert_eq!(base.deadlocks, new.deadlocks, "deadlocks: {ctx}");
    assert_eq!(
        base.stats.transitions, new.stats.transitions,
        "transitions: {ctx}"
    );
    assert_eq!(
        base.stats.dedup_hits, new.stats.dedup_hits,
        "dedup_hits: {ctx}"
    );
    for i in 0..base.num_states() {
        let id = StateId(i as u32);
        assert_eq!(base.state(id), new.state(id), "state table at {i}: {ctx}");
    }
    match (base.first_deadlock_trace(), new.first_deadlock_trace()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.steps, b.steps, "shortest-deadlock trace: {ctx}");
        }
        (a, b) => panic!(
            "trace presence differs (baseline: {}, interned: {}): {ctx}",
            a.is_some(),
            b.is_some()
        ),
    }
}

det_prop! {
    fn interned_engine_matches_the_hashed_baseline(spec in arb_spec) {
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let base = explore_hashed(&tm.env, &tm.initial, &Options::default());
        for (threads, memo) in [(1usize, true), (1, false), (2, true), (8, true)] {
            let new = explore(
                &tm.env,
                &tm.initial,
                &Options::default().with_threads(threads).with_memo(memo),
            );
            let ctx = format!("threads={threads} memo={memo} {ts:?}");
            assert_identical(&base, &new, &ctx);
            if memo {
                assert!(new.stats.memo_hits > 0, "no memo hits: {ctx}");
            } else {
                assert_eq!(new.stats.memo_hits, 0, "memo off but hits: {ctx}");
            }
            assert!(new.stats.unique_subterms > 0, "empty store: {ctx}");
        }
    }

    fn interned_verdict_mode_matches_the_hashed_baseline(spec in arb_spec) {
        // stop_at_first_deadlock takes the early-exit path through the merge;
        // the first (shortest) counterexample must not depend on the state
        // representation either.
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let base = explore_hashed(&tm.env, &tm.initial, &Options::verdict());
        for threads in [1usize, 2, 8] {
            let new = explore(
                &tm.env,
                &tm.initial,
                &Options::verdict().with_threads(threads),
            );
            assert_identical(&base, &new, &format!("verdict threads={threads} {ts:?}"));
        }
    }
}
