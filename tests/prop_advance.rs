//! Property-based equivalence of the closed-form delay advance
//! ([`acsr::advance`]) and the per-quantum replay primitives
//! ([`acsr::zone`]): factoring states into shape + time vector and jumping
//! through cached derivatives is a *computation* change and must be
//! invisible in every result. Over random task sets × locking protocols
//! × random delay amounts, `advance::step_delay` must land on the **same
//! interned term** (id equality, not just digest) as `zone::step_delay`,
//! and `advance::delay_bound` must agree with `zone::delay_bound` —
//! including the saturate-at-cap behaviour on forced timed cycles.
//!
//! The exploration-level counterpart: closed-mode zone exploration must be
//! indistinguishable from replay-mode and from the concrete engine in
//! verdict, deadlock count, shortest-counterexample length, *and* the
//! re-expanded per-quantum counterexample timeline (state for state). The
//! per-edge cap is a granularity knob only: any cap produces the same
//! verdicts.
//!
//! `det_prop!` runs 64 seeded cases per property; failures print a
//! `DET_PROP_SEED` that reproduces the exact case.

use std::sync::Arc;

use aadl::instance::instantiate;
use aadl::properties::ConcurrencyControlProtocol;
use aadl2acsr::{translate, TranslateOptions};
use acsr::advance::{
    delay_bound as closed_delay_bound, step_delay as closed_step_delay,
};
use acsr::zone::{delay_bound as replay_delay_bound, step_delay as replay_step_delay};
use acsr::{AdvanceCache, MemoConfig, StepSession, TermStore};
use det::det_prop;
use det::DetRng;
use sched_baselines::taskset::{
    taskset_to_package, taskset_to_package_locking, uunifast, TaskSetSpec,
};
use sched_baselines::types::{Task, TaskSet};
use versa::{explore, Options, ZoneAdvance};

/// Bounded random specs: 2–4 tasks over a small period pool so the
/// exhaustive exploration stays test-sized, utilizations spanning clearly
/// schedulable to clearly overloaded.
fn arb_spec(rng: &mut DetRng) -> TaskSetSpec {
    TaskSetSpec {
        n: rng.range_usize(2..5),
        target_utilization: *rng.pick(&[0.4, 0.6, 0.8, 1.0]),
        periods: vec![4, 5, 8, 10],
        seed: rng.next_u64(),
    }
}

/// Three HPF tasks with distinct priorities and one shared resource (as in
/// `prop_zones.rs`) — lock traffic puts instantaneous steps and protocol
/// bookkeeping inside and around the forced timed intervals the advance
/// cache learns.
fn arb_locking_taskset(rng: &mut DetRng) -> TaskSet {
    let orders: [[u32; 3]; 6] = [
        [9, 5, 3],
        [9, 3, 5],
        [5, 9, 3],
        [5, 3, 9],
        [3, 9, 5],
        [3, 5, 9],
    ];
    let prios = *rng.pick(&orders);
    let pairs: [[usize; 2]; 3] = [[0, 1], [0, 2], [1, 2]];
    let sharing = *rng.pick(&pairs);
    let mut tasks: Vec<Task> = (0..3)
        .map(|i| {
            let period = *rng.pick(&[4u64, 5, 8, 10]);
            let c = rng.range_u64(1..4).min(period);
            let mut t = Task::new(0, period, c);
            t.priority = Some(prios[i]);
            t
        })
        .collect();
    for &i in &sharing {
        let len = rng.range_u64(1..=tasks[i].wcet);
        tasks[i] = tasks[i].clone().with_cs(0, len);
    }
    TaskSet::new(tasks)
}

/// Walk a model's deterministic prioritized-step sequence and, at every
/// state, pin the closed-form primitives against the replay primitives:
/// equal `delay_bound`, and for a random `d ≤ bound` an *interned-id equal*
/// `step_delay` target. The cache persists across the walk, so later visits
/// to a learned shape actually take the closed path, and full per-quantum
/// verification (on in debug builds, which is how tests run) replays every
/// closed span against the step relation.
fn pin_primitives(env: &acsr::Env, initial: &acsr::P, rng: &mut DetRng, ctx: &str) {
    const CAP: u64 = 32;
    let session = StepSession::new(env, Arc::new(TermStore::new()), MemoConfig::default());
    let cache = AdvanceCache::new();
    let mut p = initial.clone();
    let mut bounds_checked = 0u32;
    for _ in 0..400 {
        let t = session.intern(&p);
        let b_replay = replay_delay_bound(&session, &t, CAP);
        let b_closed = closed_delay_bound(&session, &cache, &t, CAP);
        assert_eq!(b_closed, b_replay, "delay_bound diverged: {ctx}");
        if b_replay > 0 {
            let d = rng.range_u64(0..=b_replay);
            let via_replay = replay_step_delay(&session, &t, d);
            let via_closed = closed_step_delay(&session, &cache, &t, d);
            match (&via_replay, &via_closed) {
                (Some(a), Some(b)) => assert_eq!(
                    a.id(),
                    b.id(),
                    "step_delay({d}) interned different terms: {ctx}"
                ),
                (None, None) => {}
                _ => panic!(
                    "step_delay({d}) presence differs (replay: {}, closed: {}): {ctx}",
                    via_replay.is_some(),
                    via_closed.is_some()
                ),
            }
            if b_replay < CAP {
                // Maximality transfers: one quantum past the bound is
                // refused by both implementations.
                assert!(
                    closed_step_delay(&session, &cache, &t, b_replay + 1).is_none(),
                    "closed step_delay({}) exceeded the bound: {ctx}",
                    b_replay + 1
                );
            }
            bounds_checked += 1;
        }
        let mut succs = acsr::prioritized_steps(env, &p);
        if succs.is_empty() {
            break;
        }
        p = succs.swap_remove(0).1;
    }
    assert!(bounds_checked > 0, "walk never entered a delay zone: {ctx}");
}

det_prop! {
    fn closed_form_step_delay_matches_replay_on_random_task_sets(spec in arb_spec) {
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let mut rng = DetRng::new(spec.seed ^ 0xadfa);
        pin_primitives(&tm.env, &tm.initial, &mut rng, &format!("{ts:?}"));
    }

    fn closed_form_step_delay_matches_replay_under_locking(ts in arb_locking_taskset) {
        for ccp in [
            ConcurrencyControlProtocol::NoneSpecified,
            ConcurrencyControlProtocol::PriorityInheritance,
            ConcurrencyControlProtocol::PriorityCeiling,
        ] {
            let pkg = taskset_to_package_locking(&ts, "HPF", ccp);
            let m = instantiate(&pkg, "Top.impl").unwrap();
            let tm = translate(&m, &TranslateOptions::default()).unwrap();
            let mut rng = DetRng::new(0xcc ^ ts.tasks.len() as u64);
            pin_primitives(&tm.env, &tm.initial, &mut rng, &format!("ccp={ccp:?} {ts:?}"));
        }
    }

    fn closed_replay_and_concrete_explorations_tell_one_story(spec in arb_spec) {
        // The three engines (concrete, zone/replay, zone/closed) must agree
        // on the verdict, the deadlock count, and — state for state — the
        // re-expanded shortest counterexample timeline.
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let concrete = explore(&tm.env, &tm.initial, &Options::default());
        let replay = explore(
            &tm.env,
            &tm.initial,
            &Options::default()
                .with_zones(true)
                .with_zone_advance(ZoneAdvance::Replay),
        );
        let closed = explore(
            &tm.env,
            &tm.initial,
            &Options::default().with_zones(true),
        );
        let ctx = format!("{ts:?}");
        assert_eq!(concrete.deadlocks.len(), replay.deadlocks.len(), "{ctx}");
        assert_eq!(concrete.deadlocks.len(), closed.deadlocks.len(), "{ctx}");
        let traces = [
            concrete.first_deadlock_trace(),
            replay.first_deadlock_trace(),
            closed.first_deadlock_trace(),
        ];
        match traces {
            [None, None, None] => {}
            [Some(c), Some(r), Some(z)] => {
                assert_eq!(c.len(), r.len(), "replay trace length: {ctx}");
                assert_eq!(c.len(), z.len(), "closed trace length: {ctx}");
                // Zone traces re-expand to per-quantum timelines; the closed
                // engine rebuilds span interiors syntactically, and every
                // state must be the concrete state at that instant.
                for i in 0..z.len() {
                    assert_eq!(
                        r.state_after(i),
                        z.state_after(i),
                        "closed/replay timeline diverged at step {i}: {ctx}"
                    );
                }
            }
            [c, r, z] => panic!(
                "trace presence differs (concrete: {}, replay: {}, closed: {}): {ctx}",
                c.is_some(),
                r.is_some(),
                z.is_some()
            ),
        }
    }

    fn zone_cap_is_granularity_only(spec in arb_spec) {
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let base = explore(&tm.env, &tm.initial, &Options::default().with_zones(true));
        for cap in [1usize, 5, 33] {
            for advance in [ZoneAdvance::Closed, ZoneAdvance::Replay] {
                let capped = explore(
                    &tm.env,
                    &tm.initial,
                    &Options::default()
                        .with_zones(true)
                        .with_zone_cap(cap)
                        .with_zone_advance(advance),
                );
                let ctx = format!("cap={cap} advance={advance} {ts:?}");
                assert_eq!(capped.deadlocks.len(), base.deadlocks.len(), "{ctx}");
                assert_eq!(
                    capped.first_deadlock_trace().map(|t| t.len()),
                    base.first_deadlock_trace().map(|t| t.len()),
                    "{ctx}"
                );
            }
        }
    }
}

/// The closed advance stops exactly at a release instant, never past it:
/// one task with period 5 and wcet 1 alternates a 1-quantum compute zone
/// and a 4-quantum idle zone whose end *is* the release boundary, and the
/// closed-form bound reproduces both widths along the whole periodic orbit.
#[test]
fn closed_advance_stops_exactly_at_the_release_instant() {
    let ts = TaskSet::new(vec![Task::new(0, 5, 1)]);
    let pkg = taskset_to_package(&ts, "RMS");
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let session = StepSession::new(&tm.env, Arc::new(TermStore::new()), MemoConfig::default());
    let cache = AdvanceCache::new();
    let mut t = session.intern(&tm.initial);
    let mut seen = std::collections::HashSet::new();
    let mut widths = Vec::new();
    while seen.insert(t.id()) {
        let d = closed_delay_bound(&session, &cache, &t, u64::MAX);
        assert_eq!(
            d,
            replay_delay_bound(&session, &t, u64::MAX),
            "bound diverged at zone {}",
            widths.len()
        );
        if d > 0 {
            widths.push(d);
            t = closed_step_delay(&session, &cache, &t, d).unwrap();
            continue;
        }
        let mut succs = acsr::prioritized_steps(&tm.env, t.term());
        if succs.is_empty() {
            break;
        }
        t = session.intern(&succs.swap_remove(0).1);
    }
    assert!(!widths.is_empty(), "single-task model produced no zones");
    // Periodic timeline: dispatch-τ, 1 compute quantum, completion-τ, 4 idle
    // quanta ending exactly at the release. Any other width would either
    // swallow the release or strand a forced quantum.
    for (i, d) in widths.iter().enumerate() {
        assert!(
            *d == 1 || *d == 4,
            "zone {i} has width {d}, expected the 1/4 alternation"
        );
    }
    assert!(widths.contains(&4), "idle zone never reached the release");
}

/// `d = 0` is the identity — same interned term back, no cache mutation
/// beyond what the bound probe itself learns.
#[test]
fn zero_delay_is_the_identity() {
    let ts = TaskSet::new(vec![Task::new(0, 4, 2)]);
    let pkg = taskset_to_package(&ts, "RMS");
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let session = StepSession::new(&tm.env, Arc::new(TermStore::new()), MemoConfig::default());
    let cache = AdvanceCache::new();
    let t = session.intern(&tm.initial);
    let back = closed_step_delay(&session, &cache, &t, 0).expect("d=0 always succeeds");
    assert_eq!(back.id(), t.id());
}

/// A timed self-loop has no linear derivative (the vector does not move):
/// the shape is poisoned to non-linear, every later advance is a counted
/// replay fallback, and the bound still saturates at the cap exactly like
/// the replay implementation.
#[test]
fn non_linear_shapes_fall_back_to_replay_and_are_counted() {
    use acsr::prelude::*;
    let mut env = Env::new();
    let d = env.declare("Idle", 0);
    env.set_body(d, act([] as [(Res, i32); 0], invoke(d, [])));
    let p = invoke(d, []);
    let session = StepSession::new(&env, Arc::new(TermStore::new()), MemoConfig::default());
    let cache = AdvanceCache::new();
    let t = session.intern(&p);
    const CAP: u64 = 19;
    let closed = closed_delay_bound(&session, &cache, &t, CAP);
    let replay = replay_delay_bound(&session, &t, CAP);
    assert_eq!(closed, replay, "cycle saturation diverged");
    assert_eq!(closed, CAP, "forced timed cycle must saturate the cap");
    // Drive it again so the poisoned entry is actually consulted.
    let _ = closed_delay_bound(&session, &cache, &t, CAP);
    let stats = cache.stats();
    assert_eq!(stats.closed_form_advances, 0, "a self-loop must never go closed");
    assert!(stats.replay_fallbacks >= 1, "fallbacks must be counted");
    assert!(stats.shapes_derived >= 1, "the poisoned shape counts as derived");
    assert!(stats.shape_cache >= 1);
}
