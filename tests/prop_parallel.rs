//! Property-based determinism of parallel exploration: the expand-and-intern
//! pipeline (sharded visited set, per-worker buffers, deterministic merge)
//! must be *invisible* in the results. For every generated task set the
//! sequential engine (`threads = 1`) and the parallel engine
//! (`threads ∈ {2, 8}`) must agree exactly on the number of interned states,
//! the deadlock set, the dedup-hit count, and the full shortest-deadlock
//! trace — label by label, state by state.
//!
//! Randomized task sets come from the workspace's vendored [`det`] harness
//! (`det_prop!` runs 64 seeded cases per property by default; failures print
//! a `DET_PROP_SEED` that reproduces the exact case).

use aadl::instance::instantiate;
use aadl2acsr::{translate, TranslateOptions};
use det::det_prop;
use det::DetRng;
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};
use versa::{explore, Exploration, Options, StateId};

/// Bounded random specs: 2–4 tasks over a small period pool so the
/// exhaustive exploration stays test-sized, utilizations spanning clearly
/// schedulable to clearly overloaded (the overloaded ones are the valuable
/// cases — they deadlock, exercising the shortest-trace comparison).
fn arb_spec(rng: &mut DetRng) -> TaskSetSpec {
    TaskSetSpec {
        n: rng.range_usize(2..5),
        target_utilization: *rng.pick(&[0.4, 0.6, 0.8, 1.0]),
        periods: vec![4, 5, 8, 10],
        seed: rng.next_u64(),
    }
}

/// Full-structure comparison of two explorations of the same model.
fn assert_identical(seq: &Exploration, par: &Exploration, ctx: &str) {
    assert_eq!(seq.num_states(), par.num_states(), "num_states: {ctx}");
    assert_eq!(seq.deadlocks, par.deadlocks, "deadlocks: {ctx}");
    assert_eq!(
        seq.stats.dedup_hits, par.stats.dedup_hits,
        "dedup_hits: {ctx}"
    );
    assert_eq!(
        seq.stats.transitions, par.stats.transitions,
        "transitions: {ctx}"
    );
    for i in 0..seq.num_states() {
        let id = StateId(i as u32);
        assert_eq!(seq.state(id), par.state(id), "state table at {i}: {ctx}");
    }
    match (seq.first_deadlock_trace(), par.first_deadlock_trace()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.steps, b.steps, "shortest-deadlock trace: {ctx}");
        }
        (a, b) => panic!(
            "trace presence differs (seq: {}, par: {}): {ctx}",
            a.is_some(),
            b.is_some()
        ),
    }
}

det_prop! {
    fn parallel_exploration_matches_sequential(spec in arb_spec) {
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let seq = explore(&tm.env, &tm.initial, &Options::default());
        for threads in [2usize, 8] {
            let par = explore(
                &tm.env,
                &tm.initial,
                &Options::default().with_threads(threads),
            );
            assert_identical(&seq, &par, &format!("threads={threads} {ts:?}"));
        }
    }

    fn verdict_mode_is_deterministic_in_parallel_too(spec in arb_spec) {
        // stop_at_first_deadlock takes the early-exit path through the merge;
        // the first (shortest) counterexample must not depend on threads.
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let seq = explore(&tm.env, &tm.initial, &Options::verdict());
        for threads in [2usize, 8] {
            let par = explore(
                &tm.env,
                &tm.initial,
                &Options::verdict().with_threads(threads),
            );
            assert_identical(&seq, &par, &format!("verdict threads={threads} {ts:?}"));
        }
    }
}
