//! Experiment Q5 — queue overflow handling (§4.4 of the paper).
//!
//! A periodic producer (period 4 ms) feeds a sporadic handler whose minimum
//! separation is 9 ms: events arrive faster than they can be consumed, so any
//! finite queue eventually overflows. Under the `Error` protocol the queue
//! process deadlocks the model and the diagnosis names the connection; under
//! `DropNewest` the surplus events are quietly dropped and the model stays
//! deadlock-free. Growing the queue postpones — but cannot prevent — the
//! `Error` overflow.

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions, ViolationKind};

fn overrun_model(queue_size: i64, overflow: &str) -> InstanceModel {
    let pkg = PackageBuilder::new("Overrun")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .thread("Producer", |t| {
            t.out_event_port("evt")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
        })
        .thread("Handler", |t| {
            t.in_event_port("trigger")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(queue_size))
                .feature_prop(
                    names::OVERFLOW_HANDLING_PROTOCOL,
                    PropertyValue::Enum(overflow.to_owned()),
                )
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(9)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(3)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("producer", Category::Thread, "Producer")
                .sub("handler", Category::Thread, "Handler")
                .connect("evt_conn", "producer.evt", "handler.trigger")
                .bind_processor("producer", "cpu1")
                .bind_processor("handler", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

fn verdict(queue_size: i64, overflow: &str) -> aadl2acsr::AnalysisOutcome {
    analyze(
        &overrun_model(queue_size, overflow),
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap()
}

#[test]
fn error_protocol_deadlocks_and_names_the_connection() {
    let v = verdict(1, "Error");
    assert!(!v.schedulable());
    let sc = v.scenario().unwrap();
    assert!(
        sc.violations
            .iter()
            .any(|vk| matches!(vk, ViolationKind::QueueOverflow { connection } if connection == "evt_conn")),
        "violations: {:?}",
        sc.violations
    );
    // Timeline mentions the queueing activity.
    let text = sc.render();
    assert!(text.contains("event queued on `evt_conn`"), "{text}");
}

#[test]
fn drop_newest_never_deadlocks() {
    let v = verdict(1, "DropNewest");
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}

#[test]
fn drop_oldest_behaves_like_drop_newest_in_the_counter_abstraction() {
    // §4.4: the counter does not model event identities, so both drop
    // protocols yield the same process.
    let v = verdict(1, "DropOldest");
    assert!(v.schedulable());
}

#[test]
fn larger_queues_postpone_the_overflow() {
    let t1 = verdict(1, "Error").scenario().unwrap().at_quantum;
    let t2 = verdict(2, "Error").scenario().unwrap().at_quantum;
    let t4 = verdict(4, "Error").scenario().unwrap().at_quantum;
    assert!(t1 < t2, "size 1 overflows at {t1}, size 2 at {t2}");
    assert!(t2 < t4, "size 2 overflows at {t2}, size 4 at {t4}");
}

#[test]
fn sufficient_service_rate_never_overflows() {
    // Slow the producer down below the handler's separation: stable queue.
    let pkg = PackageBuilder::new("Stable")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .thread("Producer", |t| {
            t.out_event_port("evt")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(10)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(10)))
        })
        .thread("Handler", |t| {
            t.in_event_port("trigger")
                .feature_prop(names::QUEUE_SIZE, PropertyValue::Int(1))
                .feature_prop(
                    names::OVERFLOW_HANDLING_PROTOCOL,
                    PropertyValue::Enum("Error".into()),
                )
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(9)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(3)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("producer", Category::Thread, "Producer")
                .sub("handler", Category::Thread, "Handler")
                .connect("evt_conn", "producer.evt", "handler.trigger")
                .bind_processor("producer", "cpu1")
                .bind_processor("handler", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    assert!(v.schedulable(), "stats: {:?}", v.stats());
}
