//! Golden test of the diagnose timeline (§5): the raised counterexample for
//! the bundled `examples/models/overloaded.aadl` model is a *shortest* trace
//! (BFS), so its rendering is fully deterministic — any change to the
//! exploration order, the trace raising, or the renderer must show up here
//! as a deliberate diff.

use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};

/// Both 8 ms/10 ms threads contend for one RMS processor (U = 1.6); with the
/// 2 ms derived quantum each needs 4 quanta before its 5-quantum deadline.
/// The shortest failing scenario has t1 run three quanta, t2 two — neither
/// completes, and both miss at quantum 5.
const GOLDEN_TIMELINE: &str = "\
VIOLATION: thread `t1` missed its deadline
VIOLATION: thread `t2` missed its deadline
failing scenario (5 quanta):
  t=0    ! dispatch t1
  t=0    ! dispatch t2
  t=0    | t1 runs, t2 preempted
  t=1    | t1 runs, t2 preempted
  t=2    | t1 runs, t2 preempted
  t=3    | t1 preempted, t2 runs
  t=4    | t1 preempted, t2 runs
  t=5    DEADLOCK
";

#[test]
fn overloaded_model_raises_the_golden_timeline() {
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/models/overloaded.aadl"
    ))
    .unwrap();
    let pkg = parse_package(&source).unwrap();
    let model = instantiate(&pkg, "Top.impl").unwrap();
    let verdict = analyze(
        &model,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(!verdict.schedulable());
    assert!(!verdict.truncated());
    let scenario = verdict.scenario().expect("a failing scenario");
    assert_eq!(scenario.at_quantum, 5);
    assert_eq!(scenario.render(), GOLDEN_TIMELINE);
}
