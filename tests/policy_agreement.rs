//! Experiment Q2 — verdict agreement between the paper's exhaustive ACSR
//! analysis and the classical baselines, over randomized task sets.
//!
//! For synchronous periodic task sets with fixed execution times and
//! constrained deadlines, the exhaustive exploration must agree *exactly*
//! with exact response-time analysis (fixed priorities) and with the
//! processor-demand criterion (EDF) — the translation is semantics-
//! preserving, and one quantum in the model is one time unit in the
//! analyses. The Cheddar-style WCET simulation over one hyperperiod must
//! agree as well for this deterministic fragment.

use aadl::instance::instantiate;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use sched_baselines::edf_demand::edf_schedulable;
use sched_baselines::rta::{dm_schedulable, rm_schedulable};
use sched_baselines::simulator::{simulate, ExecModel, Policy};
use sched_baselines::taskset::{taskset_to_package, uunifast, TaskSetSpec};
use sched_baselines::types::TaskSet;

fn acsr_verdict(ts: &TaskSet, protocol: &str) -> bool {
    let pkg = taskset_to_package(ts, protocol);
    let m = instantiate(&pkg, "Top.impl").unwrap();
    analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap()
    .schedulable()
}

fn random_sets(count: u64, target_u: f64) -> Vec<TaskSet> {
    (0..count)
        .map(|seed| {
            uunifast(&TaskSetSpec {
                n: 3,
                target_utilization: target_u,
                periods: vec![4, 5, 8, 10],
                seed,
            })
        })
        .collect()
}

#[test]
fn acsr_agrees_with_rta_under_rms() {
    let mut disagreements = Vec::new();
    for (i, ts) in random_sets(12, 0.85).into_iter().enumerate() {
        let exact = rm_schedulable(&ts);
        let acsr = acsr_verdict(&ts, "RMS");
        if exact != acsr {
            disagreements.push((i, ts, exact, acsr));
        }
    }
    assert!(disagreements.is_empty(), "{disagreements:?}");
}

#[test]
fn acsr_agrees_with_rta_under_dms() {
    for (i, mut ts) in random_sets(8, 0.8).into_iter().enumerate() {
        // Constrain deadlines below periods to make DM interesting.
        for t in &mut ts.tasks {
            t.deadline = (t.period * 3 / 4).max(t.wcet);
        }
        let exact = dm_schedulable(&ts);
        let acsr = acsr_verdict(&ts, "DMS");
        assert_eq!(exact, acsr, "set #{i}: {ts:?}");
    }
}

#[test]
fn acsr_agrees_with_processor_demand_under_edf() {
    for (i, ts) in random_sets(8, 0.95).into_iter().enumerate() {
        let exact = edf_schedulable(&ts);
        let acsr = acsr_verdict(&ts, "EDF");
        assert_eq!(exact, acsr, "set #{i}: {ts:?}");
    }
}

#[test]
fn acsr_agrees_with_wcet_simulation() {
    for (i, ts) in random_sets(10, 0.9).into_iter().enumerate() {
        let sim = simulate(&ts, Policy::Rm, ExecModel::Wcet, ts.hyperperiod()).ok();
        let acsr = acsr_verdict(&ts, "RMS");
        assert_eq!(sim, acsr, "set #{i}: {ts:?}");
    }
}

#[test]
fn rm_vs_edf_crossover_set() {
    // The classic separation witness: U = 1.0, non-harmonic — RM misses,
    // EDF meets. Both engines (analytical and exhaustive) agree on both.
    let ts = TaskSet::new(vec![
        sched_baselines::types::Task::new(0, 10, 5),
        sched_baselines::types::Task::new(0, 14, 7),
    ]);
    assert!(!rm_schedulable(&ts));
    assert!(edf_schedulable(&ts));
    assert!(!acsr_verdict(&ts, "RMS"));
    assert!(acsr_verdict(&ts, "EDF"));
}

#[test]
fn llf_schedules_the_crossover_set_too() {
    // LLF is also optimal on one processor.
    let ts = TaskSet::new(vec![
        sched_baselines::types::Task::new(0, 10, 5),
        sched_baselines::types::Task::new(0, 14, 7),
    ]);
    let sim = simulate(&ts, Policy::Llf, ExecModel::Wcet, ts.hyperperiod());
    assert!(sim.ok());
    assert!(acsr_verdict(&ts, "LLF"));
}

#[test]
fn hpf_misassignment_is_caught_by_both() {
    // Give the urgent task the *lower* explicit priority: both the simulator
    // and the exhaustive analysis must flag it; swapping priorities fixes it.
    let mut urgent = sched_baselines::types::Task::new(0, 10, 4).with_deadline(4);
    let mut relaxed = sched_baselines::types::Task::new(0, 10, 4);
    urgent.priority = Some(2);
    relaxed.priority = Some(9);
    let bad = TaskSet::new(vec![urgent.clone(), relaxed.clone()]);
    assert!(!simulate(&bad, Policy::Hpf, ExecModel::Wcet, bad.hyperperiod()).ok());
    assert!(!acsr_verdict(&bad, "HPF"));

    urgent.priority = Some(9);
    relaxed.priority = Some(2);
    let good = TaskSet::new(vec![urgent, relaxed]);
    assert!(simulate(&good, Policy::Hpf, ExecModel::Wcet, good.hyperperiod()).ok());
    assert!(acsr_verdict(&good, "HPF"));
}
