//! Long-horizon regression: the translated model must cycle cleanly across
//! many hyperperiods — dispatch counters, scope countdowns and queue levels
//! all return to their initial configuration, so the reachable state space is
//! a lasso whose loop re-enters previously seen states rather than growing.

use aadl::builder::PackageBuilder;
use aadl::instance::instantiate;
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{translate, TranslateOptions};
use versa::{explore, random_walk, Options};

fn three_thread_model() -> aadl::instance::InstanceModel {
    let pkg = PackageBuilder::new("Cycle")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .periodic_thread(
            "T1",
            TimeVal::ms(4),
            (TimeVal::ms(1), TimeVal::ms(1)),
            TimeVal::ms(4),
        )
        .periodic_thread(
            "T2",
            TimeVal::ms(6),
            (TimeVal::ms(2), TimeVal::ms(2)),
            TimeVal::ms(6),
        )
        .periodic_thread(
            "T3",
            TimeVal::ms(12),
            (TimeVal::ms(3), TimeVal::ms(3)),
            TimeVal::ms(12),
        )
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("t1", Category::Thread, "T1")
                .sub("t2", Category::Thread, "T2")
                .sub("t3", Category::Thread, "T3")
                .bind_processor("t1", "cpu")
                .bind_processor("t2", "cpu")
                .bind_processor("t3", "cpu")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

#[test]
fn the_state_space_is_a_closed_lasso() {
    // U = 0.25 + 0.333 + 0.25 ≈ 0.83, harmonic-ish (hyperperiod 12):
    // schedulable, and the full exploration terminates on a finite loop.
    let m = three_thread_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let ex = explore(&tm.env, &tm.initial, &Options::default());
    assert!(ex.deadlock_free(), "stats: {:?}", ex.stats);
    // More transitions than states ⇒ at least one back-edge (the lasso loop).
    assert!(ex.stats.transitions >= ex.num_states());
}

#[test]
fn very_long_walks_stay_within_the_explored_space() {
    // A 600-quantum walk (50 hyperperiods) never deadlocks and never leaves
    // the set of states exploration found.
    let m = three_thread_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let ex = explore(&tm.env, &tm.initial, &Options::default());
    for seed in [1u64, 17, 99] {
        let w = random_walk(&tm.env, &tm.initial, 2000, seed);
        assert!(!w.deadlocked, "seed {seed}");
        assert!(w.elapsed_quanta() >= 600, "seed {seed}: walk too short");
        // Spot-check membership of the final state.
        let last = w.final_state();
        let found = (0..ex.num_states())
            .any(|i| ex.state(versa::StateId(i as u32)) == last);
        assert!(found, "seed {seed}: walk escaped the explored space");
    }
}

#[test]
fn hyperperiod_structure_shows_in_the_level_count() {
    // BFS levels ≈ instantaneous layers + one per quantum of the transient +
    // loop; it must comfortably exceed the hyperperiod (12 quanta) and stay
    // finite.
    let m = three_thread_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let ex = explore(&tm.env, &tm.initial, &Options::default());
    assert!(ex.stats.levels > 12);
    assert!(ex.stats.levels < 200);
}
