//! Property-based equivalence of delay-zone exploration and the concrete
//! per-quantum engine: collapsing forced runs is a *traversal* change and
//! must be invisible in every analysis result. For every generated task set
//! the zone explorer ([`versa::explore`] with [`Options::with_zones`]) must
//! agree with the concrete engine on the verdict, the number of deadlocked
//! states (exhaustive mode), and the length of the shortest counterexample
//! trace — zone traces re-expand to the per-quantum timeline, so their step
//! counts are directly comparable. The *state table* is deliberately not
//! compared: zone exploration materializes only zone endpoints, so a smaller
//! table is the whole point (asserted as `zoned ≤ concrete`).
//!
//! Also here, because they share the generators:
//!
//! * the `acsr::stable` digest property for the zone primitives —
//!   [`acsr::step_delay`]`(d)` must reach exactly the term that `d` unit
//!   steps of the *bare* (un-interned, un-memoized) step relation reach;
//! * forced-boundary unit tests — a delay zone ends exactly at the next
//!   release instant, and no release (hence no preemption) can occur
//!   strictly inside one.
//!
//! `det_prop!` runs 64 seeded cases per property; failures print a
//! `DET_PROP_SEED` that reproduces the exact case.

use std::sync::Arc;

use aadl::instance::instantiate;
use aadl::properties::ConcurrencyControlProtocol;
use aadl2acsr::{translate, TranslateOptions};
use acsr::{delay_bound, stable_digest, step_delay, MemoConfig, StepSession, TermStore};
use det::det_prop;
use det::DetRng;
use sched_baselines::taskset::{
    taskset_to_package, taskset_to_package_locking, uunifast, TaskSetSpec,
};
use sched_baselines::types::{Task, TaskSet};
use versa::{explore, Exploration, Options, ZoneAdvance};

/// Bounded random specs: 2–4 tasks over a small period pool so the
/// exhaustive exploration stays test-sized, utilizations spanning clearly
/// schedulable to clearly overloaded (the overloaded ones deadlock,
/// exercising the counterexample-length comparison).
fn arb_spec(rng: &mut DetRng) -> TaskSetSpec {
    TaskSetSpec {
        n: rng.range_usize(2..5),
        target_utilization: *rng.pick(&[0.4, 0.6, 0.8, 1.0]),
        periods: vec![4, 5, 8, 10],
        seed: rng.next_u64(),
    }
}

/// Three HPF tasks with distinct priorities and one shared resource, as in
/// `prop_locking.rs` — lock acquire/release steps are instantaneous, so
/// these models exercise the zone boundary against the concurrency-control
/// subsystem, not just dispatches.
fn arb_locking_taskset(rng: &mut DetRng) -> TaskSet {
    let orders: [[u32; 3]; 6] = [
        [9, 5, 3],
        [9, 3, 5],
        [5, 9, 3],
        [5, 3, 9],
        [3, 9, 5],
        [3, 5, 9],
    ];
    let prios = *rng.pick(&orders);
    let pairs: [[usize; 2]; 3] = [[0, 1], [0, 2], [1, 2]];
    let sharing = *rng.pick(&pairs);
    let mut tasks: Vec<Task> = (0..3)
        .map(|i| {
            let period = *rng.pick(&[4u64, 5, 8, 10]);
            let c = rng.range_u64(1..4).min(period);
            let mut t = Task::new(0, period, c);
            t.priority = Some(prios[i]);
            t
        })
        .collect();
    for &i in &sharing {
        let len = rng.range_u64(1..=tasks[i].wcet);
        tasks[i] = tasks[i].clone().with_cs(0, len);
    }
    TaskSet::new(tasks)
}

/// What zone exploration must preserve. `exhaustive` selects whether both
/// runs enumerated every deadlock (then the counts must match exactly) or
/// stopped at the first one (then only presence and trace length compare).
fn assert_equivalent(concrete: &Exploration, zoned: &Exploration, exhaustive: bool, ctx: &str) {
    assert_eq!(
        concrete.deadlocks.is_empty(),
        zoned.deadlocks.is_empty(),
        "verdict: {ctx}"
    );
    if exhaustive {
        // Deadlocked states have out-degree zero, so they are always zone
        // endpoints and both engines materialize exactly the same set of
        // deadlocked terms.
        assert_eq!(
            concrete.deadlocks.len(),
            zoned.deadlocks.len(),
            "deadlock count: {ctx}"
        );
    }
    assert!(
        zoned.num_states() <= concrete.num_states(),
        "zone mode materialized more states ({} > {}): {ctx}",
        zoned.num_states(),
        concrete.num_states()
    );
    match (
        concrete.first_deadlock_trace(),
        zoned.first_deadlock_trace(),
    ) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            // Zone traces are re-expanded to the per-quantum timeline, and
            // the zone explorer orders its frontier by concrete depth, so
            // the shortest counterexamples have identical length (ties may
            // pick different, equally short paths).
            assert_eq!(
                a.steps.len(),
                b.steps.len(),
                "shortest-counterexample length: {ctx}"
            );
        }
        (a, b) => panic!(
            "trace presence differs (concrete: {}, zoned: {}): {ctx}",
            a.is_some(),
            b.is_some()
        ),
    }
}

/// The closed-form engine is a *server* for the same steps the replay
/// engine derives one quantum at a time, so the two zone engines must be
/// byte-identical, not merely equivalent: the same verdict, the same
/// deadlocked terms (compared by stable digest, order-insensitively — the
/// frontier is depth-ordered but intra-level discovery order is
/// engine-internal), and the same shortest-counterexample timeline, label
/// for label and state for state.
fn assert_byte_identical(env: &acsr::Env, closed: &Exploration, replay: &Exploration, ctx: &str) {
    let digests = |ex: &Exploration| {
        let mut d: Vec<u64> = ex
            .deadlocks
            .iter()
            .map(|&id| stable_digest(env, ex.state(id)))
            .collect();
        d.sort_unstable();
        d
    };
    assert_eq!(
        digests(closed),
        digests(replay),
        "deadlock term digests: {ctx}"
    );
    match (closed.first_deadlock_trace(), replay.first_deadlock_trace()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.render(env), b.render(env), "timeline text: {ctx}");
            let states = |t: &versa::Trace| -> Vec<u64> {
                t.iter().map(|(_, p)| stable_digest(env, p)).collect()
            };
            assert_eq!(states(&a), states(&b), "timeline states: {ctx}");
        }
        (a, b) => panic!(
            "trace presence differs (closed: {}, replay: {}): {ctx}",
            a.is_some(),
            b.is_some()
        ),
    }
}

det_prop! {
    fn zones_match_concrete_on_random_task_sets(spec in arb_spec) {
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let concrete = explore(&tm.env, &tm.initial, &Options::default());
        let mut by_advance = Vec::new();
        for advance in [ZoneAdvance::Closed, ZoneAdvance::Replay] {
            for threads in [1usize, 4] {
                let zoned = explore(
                    &tm.env,
                    &tm.initial,
                    &Options::default()
                        .with_zones(true)
                        .with_zone_advance(advance)
                        .with_threads(threads),
                );
                let ctx = format!("advance={advance} threads={threads} {ts:?}");
                assert_equivalent(&concrete, &zoned, true, &ctx);
                if threads == 1 {
                    by_advance.push(zoned);
                }
            }
        }
        let (closed, replay) = (&by_advance[0], &by_advance[1]);
        assert_byte_identical(&tm.env, closed, replay, &format!("{ts:?}"));
    }

    fn zones_match_concrete_in_verdict_mode(spec in arb_spec) {
        // stop_at_first_deadlock: the zone explorer must surface the same
        // first (shortest) counterexample the concrete engine finds.
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let concrete = explore(&tm.env, &tm.initial, &Options::verdict());
        for advance in [ZoneAdvance::Closed, ZoneAdvance::Replay] {
            for threads in [1usize, 4] {
                let zoned = explore(
                    &tm.env,
                    &tm.initial,
                    &Options::verdict()
                        .with_zones(true)
                        .with_zone_advance(advance)
                        .with_threads(threads),
                );
                let ctx = format!("verdict advance={advance} threads={threads} {ts:?}");
                assert_equivalent(&concrete, &zoned, false, &ctx);
            }
        }
    }

    fn zones_match_concrete_under_locking_protocols(ts in arb_locking_taskset) {
        // Lock acquires, releases and priority adjustments are forced
        // instantaneous steps inside `forced_run` chains — the protocols
        // must not perturb any verdict or counterexample length.
        for ccp in [
            ConcurrencyControlProtocol::NoneSpecified,
            ConcurrencyControlProtocol::PriorityInheritance,
            ConcurrencyControlProtocol::PriorityCeiling,
        ] {
            let pkg = taskset_to_package_locking(&ts, "HPF", ccp);
            let m = instantiate(&pkg, "Top.impl").unwrap();
            let tm = translate(&m, &TranslateOptions::default()).unwrap();
            let concrete = explore(&tm.env, &tm.initial, &Options::default());
            let mut by_advance = Vec::new();
            for advance in [ZoneAdvance::Closed, ZoneAdvance::Replay] {
                for threads in [1usize, 4] {
                    let zoned = explore(
                        &tm.env,
                        &tm.initial,
                        &Options::default()
                            .with_zones(true)
                            .with_zone_advance(advance)
                            .with_threads(threads),
                    );
                    let ctx = format!("ccp={ccp:?} advance={advance} threads={threads} {ts:?}");
                    assert_equivalent(&concrete, &zoned, true, &ctx);
                    if threads == 1 {
                        by_advance.push(zoned);
                    }
                }
            }
            let (closed, replay) = (&by_advance[0], &by_advance[1]);
            assert_byte_identical(&tm.env, closed, replay, &format!("ccp={ccp:?} {ts:?}"));
        }
    }

    fn bulk_delay_is_d_unit_steps(spec in arb_spec) {
        // The `acsr::stable` digest property: wherever `delay_bound` finds a
        // zone of width d along a concrete walk, `step_delay(d)` must land
        // on exactly the term that d unit steps of the *bare* step relation
        // (no interner, no memo) reach — same stable digest, same interned
        // identity — and d must be maximal: one more quantum is refused.
        let ts = uunifast(&spec);
        let pkg = taskset_to_package(&ts, "RMS");
        let m = instantiate(&pkg, "Top.impl").unwrap();
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let session = StepSession::new(
            &tm.env,
            Arc::new(TermStore::new()),
            MemoConfig::default(),
        );
        const CAP: u64 = 32;
        let mut p = tm.initial.clone();
        let mut zones_checked = 0u32;
        for _ in 0..400 {
            let t = session.intern(&p);
            let d = delay_bound(&session, &t, CAP);
            if d > 0 {
                let mut q = p.clone();
                for k in 0..d {
                    let succs = acsr::prioritized_steps(&tm.env, &q);
                    assert_eq!(
                        succs.len(),
                        1,
                        "state {k} quanta into a width-{d} zone is not forced: {ts:?}"
                    );
                    assert!(
                        succs[0].0.is_timed(),
                        "non-timed step {k} quanta into a width-{d} zone: {ts:?}"
                    );
                    q = succs[0].1.clone();
                }
                let bulk = step_delay(&session, &t, d)
                    .expect("delay_bound promised d forced timed quanta");
                assert_eq!(
                    stable_digest(&tm.env, &q),
                    stable_digest(&tm.env, bulk.term()),
                    "step_delay({d}) digest differs from {d} unit steps: {ts:?}"
                );
                assert_eq!(
                    bulk.id(),
                    session.intern(&q).id(),
                    "step_delay({d}) interned a different term: {ts:?}"
                );
                if d < CAP {
                    assert!(
                        step_delay(&session, &t, d + 1).is_none(),
                        "delay_bound said {d} but step_delay({}) succeeded: {ts:?}",
                        d + 1
                    );
                }
                zones_checked += 1;
            }
            let mut succs = acsr::prioritized_steps(&tm.env, &p);
            if succs.is_empty() {
                break;
            }
            p = succs.swap_remove(0).1;
        }
        assert!(zones_checked > 0, "walk never entered a delay zone: {ts:?}");
    }
}

/// Walk a model's deterministic prioritized-step sequence, jumping through
/// delay zones via [`step_delay`], until a term repeats (the model is
/// periodic). Returns `(zones, singleton_timed)` where `zones` is each
/// zone's `(entry_time, width)` in quanta since the walk began.
fn walk_zones(ts: &TaskSet) -> (Vec<(u64, u64)>, u64) {
    let pkg = taskset_to_package(ts, "RMS");
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let session = StepSession::new(&tm.env, Arc::new(TermStore::new()), MemoConfig::default());
    let mut t = session.intern(&tm.initial);
    let mut seen = std::collections::HashSet::new();
    let mut now = 0u64;
    let mut zones = Vec::new();
    let mut singleton_timed = 0u64;
    while seen.insert(t.id()) {
        let d = delay_bound(&session, &t, u64::MAX);
        if d > 0 {
            assert!(
                step_delay(&session, &t, d + 1).is_none(),
                "zone at t={now} is not maximal"
            );
            zones.push((now, d));
            now += d;
            t = step_delay(&session, &t, d).unwrap();
            continue;
        }
        let mut succs = acsr::prioritized_steps(&tm.env, t.term());
        if succs.is_empty() {
            break;
        }
        // At a simultaneous-release instant the dispatch τs interleave;
        // any one path through the diamond serves the boundary check.
        let (label, target) = succs.swap_remove(0);
        if label.is_timed() {
            singleton_timed += 1;
            now += 1;
        }
        t = session.intern(&target);
    }
    (zones, singleton_timed)
}

/// A zone ends exactly at the release boundary: one task with period 5 and
/// wcet 1 spends all five timed quanta of its period in forced runs, so the
/// zone widths collected over a cycle sum to a whole number of periods —
/// nothing is lost at the boundary, nothing leaks past it.
#[test]
fn delay_zones_cover_whole_periods_of_an_idle_task() {
    let ts = TaskSet::new(vec![Task::new(0, 5, 1)]);
    let (zones, singleton_timed) = walk_zones(&ts);
    assert!(!zones.is_empty(), "single-task model produced no zones");
    assert_eq!(singleton_timed, 0, "every timed quantum should be forced");
    let total: u64 = zones.iter().map(|&(_, d)| d).sum();
    assert!(total > 0 && total % 5 == 0, "zones cover {total} quanta");
    // The period's timeline is dispatch-τ, one compute quantum, completion-τ,
    // four idle quanta, release-τ — so the zones alternate between the lone
    // compute quantum (ended by the instantaneous completion) and the idle
    // stretch, which runs up to *exactly* the release boundary: a width of 5
    // would swallow the dispatch, a width of 3 would leave a forced quantum
    // on the floor.
    for &(entry, d) in &zones {
        match entry % 5 {
            0 => assert_eq!(d, 1, "compute zone at t={entry} has width {d}"),
            1 => {
                assert_eq!(d, 4, "idle zone at t={entry} has width {d}");
                assert_eq!((entry + d) % 5, 0, "idle zone misses the release");
            }
            _ => panic!("unexpected zone entry at t={entry} (width {d})"),
        }
    }
}

/// Preemption mid-zone is impossible by construction: with T1 = (period 4,
/// wcet 2) and T2 = (period 8, wcet 3), T1's release at t = 4 preempts T2
/// mid-job. No release instant (multiple of 4 or 8) may fall strictly
/// inside any zone — a release is an instantaneous prioritized alternative,
/// which ends the forced run *at* that instant, never past it.
#[test]
fn releases_never_fall_strictly_inside_a_zone() {
    let ts = TaskSet::new(vec![Task::new(0, 4, 2), Task::new(0, 8, 3)]);
    let (zones, _) = walk_zones(&ts);
    assert!(!zones.is_empty(), "preemption model produced no zones");
    for &(entry, d) in &zones {
        for period in [4u64, 8] {
            let r = (entry / period + 1) * period;
            assert!(
                r >= entry + d,
                "release at t={r} falls strictly inside zone [{entry}, {})",
                entry + d
            );
        }
    }
}
