//! Store-corruption properties: no on-disk artifact state — truncated,
//! bit-flipped, garbage-filled or version-skewed — may panic an analysis or
//! change its verdict. Corruption must degrade to miss-and-recompute, and a
//! read-write store must heal the damaged entry on the recompute
//! (`det_prop!` runs 64 seeded cases per property; failures print a
//! `DET_PROP_SEED` that reproduces the exact case).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aadl::instance::instantiate;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};
use det::det_prop;
use det::prop::uints;
use det::DetRng;
use sched_baselines::taskset::taskset_to_package;
use sched_baselines::types::{Task, TaskSet};

/// Small bounded task sets: 2 tasks, tiny period pool, so each exploration
/// finishes in milliseconds and the harness can run dozens of cases.
fn arb_taskset(rng: &mut DetRng) -> TaskSet {
    let tasks = (0..2)
        .map(|_| {
            let period = *rng.pick(&[4u64, 5, 6, 8]);
            let c = rng.range_u64(1..5);
            Task::new(0, period, c.min(period))
        })
        .collect();
    TaskSet::new(tasks)
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh store directory per case, so seeded cases never share state.
fn fresh_store() -> (std::path::PathBuf, Arc<cas::CasStore>) {
    let dir = std::env::temp_dir().join(format!(
        "prop-store-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(cas::CasStore::open(&dir, cas::Mode::ReadWrite).unwrap());
    (dir, store)
}

/// Everything a cached replay must reproduce exactly.
fn verdict(
    ts: &TaskSet,
    store: &Arc<cas::CasStore>,
    rec: &obs::Recorder,
) -> (bool, usize, usize, usize) {
    let pkg = taskset_to_package(ts, "RMS");
    let m = instantiate(&pkg, "Top.impl").unwrap();
    let mut aopts = AnalysisOptions::default();
    aopts.explore.cas = Some(store.clone());
    aopts.explore.obs = rec.clone();
    let v = analyze(&m, &TranslateOptions::default(), &aopts).unwrap();
    (
        v.schedulable(),
        v.stats().states,
        v.stats().transitions,
        v.stats().deadlocks,
    )
}

/// The store's entry files.
fn entries(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cas"))
        .collect();
    v.sort();
    v
}

det_prop! {
    fn corrupted_entries_never_change_the_verdict(
        ts in arb_taskset, mode in uints(0..3), at in uints(0..1_000_000)
    ) {
        let (dir, store) = fresh_store();
        let rec = obs::Recorder::enabled();
        let cold = verdict(&ts, &store, &rec);
        let files = entries(&dir);
        assert!(!files.is_empty(), "cold run must deposit an artifact");
        for path in &files {
            let mut bytes = std::fs::read(path).unwrap();
            match mode {
                // Truncate at a random point (possibly to empty).
                0 => bytes.truncate((at as usize) % bytes.len()),
                // Flip one random bit.
                1 => {
                    let i = (at as usize) % bytes.len();
                    bytes[i] ^= 1 << (at % 8);
                }
                // Replace with garbage of a random small length.
                _ => {
                    bytes = (0..(at % 64))
                        .map(|i| (at.wrapping_mul(31).wrapping_add(i)) as u8)
                        .collect();
                }
            }
            std::fs::write(path, &bytes).unwrap();
        }
        // The corrupted store must yield the exact cold-run verdict...
        let again = verdict(&ts, &store, &rec);
        assert_eq!(cold, again, "corruption changed the analysis: {ts:?}");
        // ...and the recompute heals the entry, so a third run replays it.
        let healed = verdict(&ts, &store, &rec);
        assert_eq!(cold, healed, "healed replay diverged: {ts:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An entry whose version header is from a different (newer or older) cas
/// release must invalidate cleanly: counted as `cas.invalidations`, verdict
/// recomputed identically, entry healed to the current version.
#[test]
fn version_header_mismatch_invalidates_cleanly() {
    let ts = TaskSet::new(vec![Task::new(0, 5, 2), Task::new(0, 8, 3)]);
    let (dir, store) = fresh_store();
    let rec = obs::Recorder::enabled();
    let cold = verdict(&ts, &store, &rec);
    // The entry layout is magic(8) + version(u32 LE) + …: skew the version.
    for path in entries(&dir) {
        let mut bytes = std::fs::read(&path).unwrap();
        let v = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(v, cas::ENTRY_VERSION);
        bytes[8..12].copy_from_slice(&(v + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
    }
    let invalidations_before = rec.counter("cas.invalidations").get();
    let again = verdict(&ts, &store, &rec);
    assert_eq!(cold, again, "version skew changed the analysis");
    assert!(
        rec.counter("cas.invalidations").get() > invalidations_before,
        "a version mismatch must be counted as an invalidation"
    );
    // Healed: the next run is a hit on a current-version entry.
    let hits_before = rec.counter("cas.hits").get();
    let healed = verdict(&ts, &store, &rec);
    assert_eq!(cold, healed);
    assert!(rec.counter("cas.hits").get() > hits_before);
    let _ = std::fs::remove_dir_all(&dir);
}
