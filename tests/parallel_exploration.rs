//! Experiment Q3 companion — the parallel frontier expansion must be
//! bit-for-bit equivalent to the sequential engine on real translated
//! models (the paper's §7 efficiency direction, implemented determinstically).

use aadl::examples::{cruise_control_model, cruise_control_overloaded};
use aadl::instance::instantiate;
use aadl2acsr::{translate, TranslateOptions};
use versa::{explore, Options};

#[test]
fn parallel_matches_sequential_on_cruise_control() {
    let m = cruise_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let seq = explore(&tm.env, &tm.initial, &Options::default());
    let par = explore(&tm.env, &tm.initial, &Options::default().with_threads(4));
    assert_eq!(seq.num_states(), par.num_states());
    assert_eq!(seq.stats.transitions, par.stats.transitions);
    assert_eq!(seq.deadlocks, par.deadlocks);
}

#[test]
fn parallel_finds_the_same_shortest_counterexample() {
    let pkg = cruise_control_overloaded();
    let m = instantiate(&pkg, "CruiseControl.impl").unwrap();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let seq = explore(&tm.env, &tm.initial, &Options::verdict());
    let par = explore(&tm.env, &tm.initial, &Options::verdict().with_threads(4));
    let ts = seq.first_deadlock_trace().unwrap();
    let tp = par.first_deadlock_trace().unwrap();
    assert_eq!(ts.len(), tp.len());
    assert_eq!(
        ts.steps.iter().map(|(l, _)| l).collect::<Vec<_>>(),
        tp.steps.iter().map(|(l, _)| l).collect::<Vec<_>>()
    );
}

/// Parse a bundled example model from disk and instantiate `root`.
fn bundled_model(file: &str, root: &str) -> aadl::instance::InstanceModel {
    let path = format!("{}/examples/models/{file}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let pkg = aadl::parser::parse_package(&source).unwrap();
    instantiate(&pkg, root).unwrap()
}

#[test]
fn parallel_matches_sequential_on_bundled_models_from_disk() {
    // Regression for the std::thread::scope engine: identical reachable-state
    // counts and deadlock verdicts on both bundled .aadl files, parsed from
    // disk exactly as the CLI would.
    for (file, root) in [
        ("cruise_control.aadl", "CruiseControl.impl"),
        ("flight_control.aadl", "Top.impl"),
    ] {
        let m = bundled_model(file, root);
        let tm = translate(&m, &TranslateOptions::default()).unwrap();
        let seq = explore(&tm.env, &tm.initial, &Options::default());
        let par = explore(&tm.env, &tm.initial, &Options::default().with_threads(4));
        assert_eq!(seq.num_states(), par.num_states(), "{file}: state counts");
        assert_eq!(
            seq.deadlocks, par.deadlocks,
            "{file}: deadlock verdicts differ"
        );
        assert_eq!(
            seq.deadlock_free(),
            par.deadlock_free(),
            "{file}: schedulability verdicts differ"
        );
    }
}

#[test]
fn thread_count_does_not_change_stats() {
    let m = cruise_control_model();
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let baseline = explore(&tm.env, &tm.initial, &Options::default());
    for threads in [2, 3, 8] {
        let ex = explore(
            &tm.env,
            &tm.initial,
            &Options::default().with_threads(threads),
        );
        assert_eq!(ex.num_states(), baseline.num_states(), "threads={threads}");
        assert_eq!(ex.stats.levels, baseline.stats.levels, "threads={threads}");
    }
}
