//! End-to-end tests of the concurrency-control subsystem on the bundled
//! `examples/models/inversion.aadl` — the classic three-thread priority
//! inversion. Under `None_Specified` the medium thread preempts the
//! lock-holding low thread while the high thread is blocked, and the high
//! thread misses its 3 ms deadline; under `Priority_Ceiling` or
//! `Priority_Inheritance` the holder is elevated and every deadline is met.

use aadl::instance::{instantiate, InstanceModel};
use aadl::parser::parse_package;
use aadl::properties::ConcurrencyControlProtocol;
use aadl2acsr::diagnose::Activity;
use aadl2acsr::{analyze, AnalysisOptions, AnalysisOutcome, TranslateOptions};

fn inversion_model() -> InstanceModel {
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/models/inversion.aadl"
    ))
    .unwrap();
    let pkg = parse_package(&source).unwrap();
    instantiate(&pkg, "Top.impl").unwrap()
}

fn analyze_with(protocol: Option<ConcurrencyControlProtocol>) -> AnalysisOutcome {
    analyze(
        &inversion_model(),
        &TranslateOptions {
            protocol_override: protocol,
            ..Default::default()
        },
        &AnalysisOptions::default(),
    )
    .unwrap()
}

/// The golden inversion timeline: deterministic because every scheduling
/// race in the model is resolved by the prioritized transition relation —
/// distinct HPF priorities on the processor, and lock acquisition arbitrated
/// at base priority. The inversion is visible verbatim: at t=8 the
/// re-dispatched `h` blocks on the store while `m` (which never touches it)
/// preempts the lock-holding `l` for three quanta, pushing `h` past its 3 ms
/// deadline.
const GOLDEN_TIMELINE: &str = "\
VIOLATION: thread `h` missed its deadline
failing scenario (11 quanta):
  t=0    ! dispatch h
  t=0    ! dispatch m
  t=0    ! dispatch l
  t=0    | h runs (cs of `shared`), m preempted, l blocked on `shared` by `h`
  t=1    | h runs (final), m preempted, l blocked on `shared`
  t=2    ! h completes
  t=2    | m runs, l blocked on `shared`
  t=3    | m runs, l blocked on `shared`
  t=4    | m runs (final), l blocked on `shared`
  t=5    ! m completes
  t=5    | l runs (cs of `shared`)
  t=6    | l runs (cs of `shared`)
  t=7    | l runs (cs of `shared`)
  t=8    ! dispatch h
  t=8    ! dispatch m
  t=8    | h blocked on `shared` by `l`, m runs, l preempted holding `shared`
  t=9    | h blocked on `shared` by `l`, m runs, l preempted holding `shared`
  t=10   | h blocked on `shared` by `l`, m runs (final), l preempted holding `shared`
  t=11   ! m completes
  t=11   DEADLOCK
";

#[test]
fn none_specified_suffers_the_inversion() {
    let v = analyze_with(None);
    assert!(!v.truncated());
    assert!(!v.schedulable(), "inversion must break the deadline");
    let sc = v.scenario().expect("a failing scenario");
    assert_eq!(sc.at_quantum, 11);
    assert_eq!(sc.render(), GOLDEN_TIMELINE);
}

#[test]
fn priority_ceiling_rescues_the_high_thread() {
    let v = analyze_with(Some(ConcurrencyControlProtocol::PriorityCeiling));
    assert!(!v.truncated());
    assert!(
        v.schedulable(),
        "PCP bounds blocking to one critical section: {:?}",
        v.scenario().map(|s| s.render())
    );
}

#[test]
fn priority_inheritance_rescues_the_high_thread() {
    let v = analyze_with(Some(ConcurrencyControlProtocol::PriorityInheritance));
    assert!(!v.truncated());
    assert!(
        v.schedulable(),
        "PIP elevates the holder while h is blocked: {:?}",
        v.scenario().map(|s| s.render())
    );
}

#[test]
fn blocked_activity_names_the_holder() {
    let v = analyze_with(None);
    let sc = v.scenario().expect("a failing scenario");
    assert!(
        sc.timeline.iter().any(|row| row.activities.iter().any(
            |(p, a)| p == "h"
                && matches!(a, Activity::Blocked { on, by: Some(holder) }
                    if on == "shared" && holder == "l")
        )),
        "timeline:\n{}",
        sc.render()
    );
}
