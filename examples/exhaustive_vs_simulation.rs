//! Experiment Q4 — exhaustive exploration vs simulation (§6 of the paper).
//!
//! The phase-collision witness (see `tests/exhaustive_vs_simulation.rs` for
//! the arithmetic): a producer with execution-time range 1..3 ms feeds a
//! sporadic handler whose 1 ms deadline collides with a high-priority
//! monitor thread **only** when the producer finishes in exactly 2 ms at the
//! right phase. WCET-only and BCET-only analyses are clean; random
//! simulation runs mostly miss the failure; the exhaustive exploration finds
//! it every time and raises the scenario.
//!
//! ```sh
//! cargo run --release --example exhaustive_vs_simulation
//! ```

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};

fn witness(bcet_ms: i64, wcet_ms: i64) -> InstanceModel {
    let pkg = PackageBuilder::new("Anomaly")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "HPF"))
        .thread("Producer", |t| {
            t.out_event_port("evt")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(bcet_ms), TimeVal::ms(wcet_ms)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
                .prop_int(names::PRIORITY, 5)
        })
        .thread("Handler", |t| {
            t.in_event_port("trigger")
                .prop_enum(names::DISPATCH_PROTOCOL, "Sporadic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(2)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(1)))
                .prop_int(names::PRIORITY, 2)
        })
        .thread("Monitor", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(6)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(6)))
                .prop_int(names::PRIORITY, 9)
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("producer", Category::Thread, "Producer")
                .sub("handler", Category::Thread, "Handler")
                .sub("monitor", Category::Thread, "Monitor")
                .connect("evt_conn", "producer.evt", "handler.trigger")
                .bind_processor("producer", "cpu1")
                .bind_processor("handler", "cpu2")
                .bind_processor("monitor", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

fn main() {
    println!("witness: producer(P=4, C=1..3) → sporadic handler(D=1) on a cpu shared");
    println!("with monitor(P=6, C=1, higher priority); collision iff C = 2 at phase 1 mod 3\n");

    // Corner-case analyses (what a WCET / BCET simulation examines).
    for (b, w, label) in [(3, 3, "all-WCET"), (1, 1, "all-BCET"), (2, 2, "interior C=2")] {
        let v = analyze(
            &witness(b, w),
            &TranslateOptions::default(),
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        println!(
            "{label:>14}: schedulable = {:<5} ({} states)",
            v.schedulable(), v.stats().states
        );
    }

    // Random simulation runs of the true (nondeterministic) model.
    let m = witness(1, 3);
    let tm = translate(&m, &TranslateOptions::default()).unwrap();
    let runs = 100;
    let mut found = 0;
    for seed in 0..runs {
        if versa::random_walk(&tm.env, &tm.initial, 30, seed).deadlocked {
            found += 1;
        }
    }
    println!(
        "\n{runs} random simulation runs (30 quanta each): {found} found the violation, {} did not",
        runs - found
    );

    // The exhaustive verdict.
    let v = analyze(
        &m,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    println!(
        "exhaustive exploration: schedulable = {} — found after {} states\n",
        v.schedulable(), v.stats().states
    );
    if let Some(sc) = &v.scenario() {
        println!("{}", sc.render());
    }
}
