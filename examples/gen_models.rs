//! Regenerate the sample `.aadl` files under `examples/models/` from the
//! canned library models (`cargo run --example gen_models`).
fn main() {
    for (pkg, file) in [
        (aadl::examples::cruise_control(), "cruise_control.aadl"),
        (aadl::examples::producer_handler(2, "Error"), "producer_handler.aadl"),
        (aadl::examples::flight_control(), "flight_control.aadl"),
    ] {
        let path = format!("examples/models/{file}");
        std::fs::write(&path, aadl::pretty::render_package(&pkg)).unwrap();
        println!("wrote {path}");
    }
}
