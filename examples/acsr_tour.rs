//! Experiments F2/F3 — a tour of ACSR with the paper's running example
//! (Figs. 2 and 3): computation and communication steps, resource contention,
//! idling, temporal scopes, parallel composition and preemption.
//!
//! ```sh
//! cargo run --example acsr_tour
//! ```

use acsr::prelude::*;

fn main() {
    let cpu = Res::new("cpu");
    let bus = Res::new("bus");
    let done = Symbol::new("done");

    // ------------------------------------------------------------- Fig. 2a
    let mut env = Env::new();
    let simple = env.declare("Simple", 0);
    env.set_body(
        simple,
        act(
            [(cpu, 1)],
            act([(cpu, 1), (bus, 1)], evt_send(done, 1, invoke(simple, []))),
        ),
    );
    println!("== Fig. 2a: Simple ==");
    let p = invoke(simple, []);
    walk_and_print(&env, &p, 4);

    // A competitor holding the bus forever: Simple (without idling) deadlocks.
    let hog = env.declare("BusHog", 0);
    env.set_body(hog, act([(bus, 2)], invoke(hog, [])));
    let sys = par([invoke(simple, []), invoke(hog, [])]);
    let ex = versa::explore(&env, &sys, &versa::Options::default());
    println!(
        "\nSimple ∥ BusHog (no idling): deadlocks = {} after {} quantum",
        ex.deadlocks.len(),
        ex.first_deadlock_trace().map(|t| t.elapsed_quanta()).unwrap_or(0)
    );

    // ------------------------------------------------------------- Fig. 2b
    let s0 = env.declare("SimpleIdle0", 0);
    let s1 = env.declare("SimpleIdle1", 0);
    env.set_body(
        s0,
        choice([
            act([(cpu, 1)], invoke(s1, [])),
            act([] as [(Res, i32); 0], invoke(s0, [])),
        ]),
    );
    env.set_body(
        s1,
        choice([
            act([(cpu, 1), (bus, 1)], evt_send(done, 1, invoke(s0, []))),
            act([] as [(Res, i32); 0], invoke(s1, [])),
        ]),
    );
    let sys = par([invoke(s0, []), invoke(hog, [])]);
    let ex = versa::explore(&env, &sys, &versa::Options::default());
    println!(
        "Simple ∥ BusHog (with idling, Fig. 2b): deadlock-free = {} ({} states)",
        ex.deadlock_free(),
        ex.num_states()
    );

    // ------------------------------------------------------------- Fig. 3
    println!("\n== Fig. 3: temporal scope with exception / timeout / interrupt ==");
    let interrupt = Symbol::new("interrupt");
    let scoped = scope(
        invoke(s0, []),
        TimeBound::Finite(Expr::c(6)),
        Some((done, act([(Res::new("exception_handler"), 2)], nil()))),
        Some(act([(Res::new("timeout_handler"), 2)], nil())),
        Some(evt_recv(
            interrupt,
            1,
            act([(Res::new("interrupt_handler"), 2)], nil()),
        )),
    );
    // Driver: one shared quantum, one bus-preemption quantum, then interrupt.
    let idle = env.declare("DriverIdle", 0);
    env.set_body(idle, act([] as [(Res, i32); 0], invoke(idle, [])));
    let driver = act(
        [(bus, 2)],
        act([(bus, 2)], evt_send(interrupt, 1, invoke(idle, []))),
    );
    let sys = restrict(par([scoped, driver]), [interrupt]);
    walk_and_print(&env, &sys, 6);

    // LTS export for inspection.
    let opts = versa::Options {
        collect_lts: true,
        ..Default::default()
    };
    let ex = versa::explore(&env, &sys, &opts);
    println!(
        "\nfull prioritized LTS: {} states, {} transitions (dot output below)",
        ex.num_states(),
        ex.lts.as_ref().unwrap().num_transitions()
    );
    println!("{}", ex.lts.as_ref().unwrap().to_dot(&env));
}

/// Take up to `n` prioritized steps (first choice each time), printing them.
fn walk_and_print(env: &Env, p: &P, n: usize) {
    let mut cur = p.clone();
    println!("  start: {}", env.display_proc(&cur));
    for i in 0..n {
        let steps = prioritized_steps(env, &cur);
        if steps.is_empty() {
            println!("  step {i}: DEADLOCK");
            return;
        }
        let (label, next) = steps[0].clone();
        println!(
            "  step {i}: {}   [{} alternative(s)]",
            env.display_label(&label),
            steps.len()
        );
        cur = next;
    }
}
