//! Extension experiment X2 — multi-modal AADL models.
//!
//! The paper leaves mode handling out of its translation (§4: "quite
//! involved"); this example exercises our bounded encoding: a monitor thread
//! raises an alarm that switches the system from `nominal` into `degraded`,
//! activating a recovery thread. With a feasible recovery load the system is
//! schedulable across the switch; with an overloading one the analysis finds
//! the post-switch deadline miss, with the mode machinery visible in the
//! raised timeline.
//!
//! ```sh
//! cargo run --release --example modes
//! ```

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::{Category, EndpointRef, ModeTransition};
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};

fn moded_model(recovery_wcet_ms: i64) -> InstanceModel {
    let mut pkg = PackageBuilder::new("Moded")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "DMS"))
        .thread("Monitor", |t| {
            t.out_event_port("alarm")
                .prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(8)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(1), TimeVal::ms(1)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(8)))
        })
        .thread("Base", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(2), TimeVal::ms(2)),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
        })
        .thread("Recovery", |t| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(4)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(
                        TimeVal::ms(recovery_wcet_ms),
                        TimeVal::ms(recovery_wcet_ms),
                    ),
                )
                .prop(names::COMPUTE_DEADLINE, PropertyValue::Time(TimeVal::ms(4)))
        })
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("mon", Category::Thread, "Monitor")
                .sub("base", Category::Thread, "Base")
                .sub("recovery", Category::Thread, "Recovery")
                .bind_processor("mon", "cpu1")
                .bind_processor("base", "cpu2")
                .bind_processor("recovery", "cpu2")
                .mode("nominal", true)
                .mode("degraded", false)
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    let imp = pkg
        .impls
        .iter_mut()
        .find(|i| i.name == "Top.impl")
        .unwrap();
    imp.subcomponents
        .iter_mut()
        .find(|s| s.name == "recovery")
        .unwrap()
        .in_modes = vec!["degraded".into()];
    imp.mode_transitions.push(ModeTransition {
        src: "nominal".into(),
        trigger: EndpointRef::sub("mon", "alarm"),
        dst: "degraded".into(),
    });
    instantiate(&pkg, "Top.impl").unwrap()
}

fn main() {
    let opts = TranslateOptions {
        enable_modes: true,
        ..Default::default()
    };

    println!("modes: nominal (recovery inactive) → degraded on mon.alarm\n");
    for (wcet, label) in [(1, "feasible recovery (1 ms / 4 ms)"), (3, "overloading recovery (3 ms / 4 ms)")] {
        let m = moded_model(wcet);
        let v = analyze(&m, &opts, &AnalysisOptions::default()).unwrap();
        println!(
            "{label}: schedulable = {} ({} states, {:?})",
            v.schedulable(), v.stats().states, v.stats().duration
        );
        if let Some(sc) = &v.scenario() {
            println!("\n{}", sc.render());
        }
    }
}
