//! Experiment F1 — the cruise-control system of Fig. 1 of the paper.
//!
//! Reproduces the §4.1 account: the translation yields six thread processes,
//! six dispatchers and no queues; the nominal system is schedulable on both
//! processors; an overloaded variant of the `CruiseControlLaws` subsystem
//! misses a deadline and the failing scenario is raised back to AADL terms.
//!
//! ```sh
//! cargo run --release --example cruise_control
//! ```

use aadl::examples::{cruise_control_model, cruise_control_overloaded};
use aadl::instance::instantiate;
use aadl2acsr::{analyze, translate, AnalysisOptions, TranslateOptions};

fn main() {
    // ---------------------------------------------------------------- nominal
    let model = cruise_control_model();
    println!("== Fig. 1: cruise control ==");
    println!(
        "instance model: {} components ({} threads, {} processors, {} bus)",
        model.num_components(),
        model.threads().count(),
        model.processors().count(),
        model.buses().count()
    );
    for conn in &model.connections {
        let src = model.component(conn.src.0);
        let dst = model.component(conn.dst.0);
        let bus = if conn.buses.is_empty() {
            String::new()
        } else {
            format!(
                "  [bus: {}]",
                conn.buses
                    .iter()
                    .map(|b| model.component(*b).name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        println!(
            "  semantic connection {}: {} -> {}{bus}",
            conn.name,
            src.display_path(),
            dst.display_path()
        );
    }

    let tm = translate(&model, &TranslateOptions::default()).unwrap();
    println!(
        "\ntranslation (§4.1): {} thread processes, {} dispatchers, {} queues, quantum {} ms",
        tm.inventory.threads,
        tm.inventory.dispatchers,
        tm.inventory.queues,
        tm.quantum_ps / 1_000_000_000
    );

    let v = analyze(
        &model,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .unwrap();
    println!(
        "nominal system: schedulable = {} ({} states, {} transitions, {:?})",
        v.schedulable(), v.stats().states, v.stats().transitions, v.stats().duration
    );

    // -------------------------------------------------------------- overloaded
    println!("\n== overloaded CruiseControlLaws (utilization 1.2) ==");
    let pkg = cruise_control_overloaded();
    let model = instantiate(&pkg, "CruiseControl.impl").unwrap();
    let v = analyze(
        &model,
        &TranslateOptions::default(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    println!(
        "schedulable = {} ({} states explored before the first deadlock)",
        v.schedulable(), v.stats().states
    );
    if let Some(scenario) = &v.scenario() {
        println!("\n{}", scenario.render());
    }
}
