//! Experiment Q6 — end-to-end latency observers (§5 of the paper): sweep the
//! latency bound of a two-hop data flow across the bus and print the
//! pass/fail frontier.
//!
//! ```sh
//! cargo run --release --example latency
//! ```

use aadl::builder::PackageBuilder;
use aadl::instance::{instantiate, InstanceModel};
use aadl::model::Category;
use aadl::properties::{names, PropertyValue, TimeVal};
use aadl2acsr::{analyze, AnalysisOptions, LatencyObserver, TranslateOptions};

fn pipeline() -> InstanceModel {
    let periodic = |period: i64, cmin: i64, cmax: i64| {
        move |t: aadl::builder::TypeBuilder| {
            t.prop_enum(names::DISPATCH_PROTOCOL, "Periodic")
                .prop(names::PERIOD, PropertyValue::Time(TimeVal::ms(period)))
                .prop(
                    names::COMPUTE_EXECUTION_TIME,
                    PropertyValue::TimeRange(TimeVal::ms(cmin), TimeVal::ms(cmax)),
                )
                .prop(
                    names::COMPUTE_DEADLINE,
                    PropertyValue::Time(TimeVal::ms(period)),
                )
        }
    };
    let pkg = PackageBuilder::new("Pipeline")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .bus("net")
        .thread("Sensor", |t| periodic(8, 1, 2)(t.out_data_port("reading")))
        .thread("Control", |t| {
            periodic(8, 2, 2)(t.in_data_port("reading").out_data_port("cmd"))
        })
        .thread("Actuator", |t| periodic(8, 1, 1)(t.in_data_port("cmd")))
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu1", Category::Processor, "cpu_t")
                .sub("cpu2", Category::Processor, "cpu_t")
                .sub("b", Category::Bus, "net")
                .sub("sensor", Category::Thread, "Sensor")
                .sub("control", Category::Thread, "Control")
                .sub("actuator", Category::Thread, "Actuator")
                .connect("c1", "sensor.reading", "control.reading")
                .bind_bus("b")
                .connect("c2", "control.cmd", "actuator.cmd")
                .bind_processor("sensor", "cpu1")
                .bind_processor("control", "cpu2")
                .bind_processor("actuator", "cpu2")
                .prop(
                    names::SCHEDULING_QUANTUM,
                    PropertyValue::Time(TimeVal::ms(1)),
                )
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

fn main() {
    let m = pipeline();
    let from = m.find("sensor").unwrap();
    let to = m.find("actuator").unwrap();
    println!("flow: sensor (cpu1) ──bus──▶ control (cpu2) ──▶ actuator (cpu2), frame 8 ms\n");
    println!("{:>8} {:>13} {:>10} {:>12}", "bound", "holds", "states", "time");
    for bound in 1..=12 {
        let v = analyze(
            &m,
            &TranslateOptions {
                observers: vec![LatencyObserver {
                    from,
                    to,
                    bound: TimeVal::ms(bound),
                }],
                ..Default::default()
            },
            &AnalysisOptions::default(),
        )
        .unwrap();
        println!(
            "{:>6}ms {:>13} {:>10} {:>12?}",
            bound, v.schedulable(), v.stats().states, v.stats().duration
        );
    }
    println!("\nThe frontier marks the worst-case end-to-end latency the pipeline can");
    println!("exhibit, including the cross-frame behaviour where the actuator samples");
    println!("one-frame-old data (the pipelining caveat the paper notes in §5).");
}
