//! Experiment Q1 — the precision / state-space trade-off of §4.1:
//!
//! > Precision of the timing analysis can be improved by making scheduling
//! > quanta smaller, which tends to increase the size of the state space
//! > that needs to be explored.
//!
//! Analyses the same two-thread system under quanta of 4, 2 and 1 ms and
//! prints the verdict, state count and wall time per quantum. The system is
//! chosen so that the conservative rounding at the coarse quantum produces a
//! *false* "unschedulable" report that the fine quantum refutes — and the
//! state count grows as the quantum shrinks.
//!
//! ```sh
//! cargo run --release --example quantum_tradeoff
//! ```

use aadl::builder::PackageBuilder;
use aadl::instance::instantiate;
use aadl::model::Category;
use aadl::properties::{names, TimeVal};
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};

fn model() -> aadl::instance::InstanceModel {
    // T1: P = 8 ms, C = 3 ms; T2: P = 12 ms, C = 5 ms. Exact RM response of
    // T2: 5 + 2·3 = 11 ≤ 12 — schedulable. At a 4 ms quantum the WCETs round
    // up to 1 and 2 quanta (= 4 and 8 ms): response 8 + 2·4 = 16 > 12 —
    // falsely reported unschedulable.
    let pkg = PackageBuilder::new("Tradeoff")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .periodic_thread(
            "T1",
            TimeVal::ms(8),
            (TimeVal::ms(3), TimeVal::ms(3)),
            TimeVal::ms(8),
        )
        .periodic_thread(
            "T2",
            TimeVal::ms(12),
            (TimeVal::ms(5), TimeVal::ms(5)),
            TimeVal::ms(12),
        )
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("t1", Category::Thread, "T1")
                .sub("t2", Category::Thread, "T2")
                .bind_processor("t1", "cpu")
                .bind_processor("t2", "cpu")
        })
        .build();
    instantiate(&pkg, "Top.impl").unwrap()
}

fn main() {
    let m = model();
    println!("T1 = (P 8 ms, C 3 ms), T2 = (P 12 ms, C 5 ms) under RMS");
    println!("exact RM response times: R1 = 3, R2 = 11 ≤ 12 — schedulable\n");
    println!("{:>10} {:>13} {:>10} {:>13} {:>12}", "quantum", "schedulable", "states", "transitions", "time");
    for q in [4, 2, 1] {
        let v = analyze(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(q)),
                ..Default::default()
            },
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        println!(
            "{:>8}ms {:>13} {:>10} {:>13} {:>12?}",
            q, v.schedulable(), v.stats().states, v.stats().transitions, v.stats().duration
        );
    }
    println!(
        "\nThe 4 ms quantum over-approximates the execution times (3→4, 5→8 ms)\n\
         and falsely reports a deadline violation; refining the quantum recovers\n\
         the exact verdict at the cost of a larger state space (§4.1).\n"
    );

    // Second sweep: a system schedulable at every quantum, isolating the
    // pure state-space growth as the quantum shrinks.
    let pkg = PackageBuilder::new("Growth")
        .processor("cpu_t", |p| p.prop_enum(names::SCHEDULING_PROTOCOL, "RMS"))
        .periodic_thread(
            "T1",
            TimeVal::ms(8),
            (TimeVal::ms(2), TimeVal::ms(2)),
            TimeVal::ms(8),
        )
        .periodic_thread(
            "T2",
            TimeVal::ms(16),
            (TimeVal::ms(4), TimeVal::ms(4)),
            TimeVal::ms(16),
        )
        .system("Top", |s| s)
        .implementation("Top.impl", Category::System, |i| {
            i.sub("cpu", Category::Processor, "cpu_t")
                .sub("t1", Category::Thread, "T1")
                .sub("t2", Category::Thread, "T2")
                .bind_processor("t1", "cpu")
                .bind_processor("t2", "cpu")
        })
        .build();
    let m = instantiate(&pkg, "Top.impl").unwrap();
    println!("state-space growth on an always-schedulable system (T1 = (8, 2), T2 = (16, 4)):");
    println!("{:>10} {:>13} {:>10} {:>13} {:>12}", "quantum", "schedulable", "states", "transitions", "time");
    for q in [4, 2, 1] {
        let v = analyze(
            &m,
            &TranslateOptions {
                quantum: Some(TimeVal::ms(q)),
                ..Default::default()
            },
            &AnalysisOptions::exhaustive(),
        )
        .unwrap();
        println!(
            "{:>8}ms {:>13} {:>10} {:>13} {:>12?}",
            q, v.schedulable(), v.stats().states, v.stats().transitions, v.stats().duration
        );
    }
}
