//! Quickstart: parse an AADL model from text, analyze its schedulability,
//! and print the verdict (with an AADL-level failing scenario if any).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl2acsr::{analyze, AnalysisOptions, TranslateOptions};

const MODEL: &str = r#"
package Quickstart
public
  processor cpu_t
    properties
      Scheduling_Protocol => RMS;
  end cpu_t;

  thread Sensor
    features
      reading: out data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms .. 4 ms;
      Compute_Deadline => 10 ms;
  end Sensor;

  thread Filter
    features
      reading: in data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 20 ms;
      Compute_Execution_Time => 6 ms .. 8 ms;
      Compute_Deadline => 20 ms;
  end Filter;

  system Top
  end Top;

  system implementation Top.impl
    subcomponents
      cpu: processor cpu_t;
      sensor: thread Sensor;
      filter: thread Filter;
    connections
      c1: port sensor.reading -> filter.reading;
    properties
      Actual_Processor_Binding => reference (cpu) applies to sensor, filter;
      Scheduling_Quantum => 2 ms;
  end Top.impl;
end Quickstart;
"#;

fn main() {
    let pkg = parse_package(MODEL).expect("the model parses");
    let model = instantiate(&pkg, "Top.impl").expect("the model instantiates");

    println!("instance model: {} components, {} semantic connection(s)",
        model.num_components(),
        model.connections.len());

    let verdict = analyze(
        &model,
        &TranslateOptions::default(),
        &AnalysisOptions::exhaustive(),
    )
    .expect("the model translates");

    println!(
        "explored {} states / {} transitions in {:?}",
        verdict.stats().states, verdict.stats().transitions, verdict.stats().duration
    );
    if verdict.schedulable() {
        println!("VERDICT: schedulable — every thread meets its deadline in every behaviour");
    } else {
        println!("VERDICT: NOT schedulable");
        if let Some(scenario) = &verdict.scenario() {
            println!("{}", scenario.render());
        }
    }
}
