#!/usr/bin/env bash
# The full local gate, in the order a reviewer would run it:
#
#   1. tier-1: release build + the whole test suite (ROADMAP.md)
#   2. the pinned-timeline gates: the golden diagnose trace and the
#      concurrency-control inversion timeline, named explicitly so a drift
#      in either renders as its own CI line, not a needle in the full suite
#   3. the bench harness in smoke mode, three times — with the successor
#      memo disabled, then at 1 and at 4 exploration workers — with diffs
#      over the verdict lines: the engine is deterministic in the thread
#      count and the memo is a pure cache, so any difference is a
#      regression in the parallel dedup path or the memoized step relation
#      (the last run also refreshes BENCH_exploration.json, which is
#      committed)
#   4. the hermetic-build audit (path-only deps, pinned dependency graph,
#      obs dependency-free, `cargo doc` with warnings denied — see
#      tools/check_hermetic.sh)
#
# Run from anywhere:
#
#   tools/ci.sh
#
# Exit code 0 = everything green.

set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== golden timelines: diagnose + inversion =="
cargo test -q --test golden_diagnose --test inversion

echo "== bench harness (smoke): verdicts must agree across workers and memo =="
mkdir -p target/ci
# Verdict lines only, wall-clock fields stripped: everything else must be
# byte-identical between a sequential and a parallel run, and between a
# memoized and an unmemoized run. The --no-memo run goes first so the
# committed BENCH_exploration.json reflects the shipped default.
extract_verdicts() {
  grep -E "schedulable|VERDICT" | sed -E 's/ time=[^ ]*//'
}
cargo run --release -q -p bench --bin harness -- --smoke --threads 1 --no-memo \
  | extract_verdicts > target/ci/verdicts-nomemo.txt
cargo run --release -q -p bench --bin harness -- --smoke --threads 1 \
  | extract_verdicts > target/ci/verdicts-t1.txt
cargo run --release -q -p bench --bin harness -- --smoke --threads 4 \
  | extract_verdicts > target/ci/verdicts-t4.txt
diff -u target/ci/verdicts-t1.txt target/ci/verdicts-t4.txt
echo "verdicts identical across worker counts"
diff -u target/ci/verdicts-t1.txt target/ci/verdicts-nomemo.txt
echo "verdicts identical with the successor memo disabled"

echo "== hermetic audit =="
tools/check_hermetic.sh

echo "ci: OK"
