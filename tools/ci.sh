#!/usr/bin/env bash
# The full local gate, in the order a reviewer would run it:
#
#   1. tier-1: release build + the whole test suite (ROADMAP.md)
#   2. the hermetic-build audit (path-only deps, obs dependency-free,
#      `cargo doc` with warnings denied — see tools/check_hermetic.sh)
#
# Run from anywhere:
#
#   tools/ci.sh
#
# Exit code 0 = everything green.

set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== hermetic audit =="
tools/check_hermetic.sh

echo "ci: OK"
