#!/usr/bin/env bash
# The full local gate, in the order a reviewer would run it:
#
#   1. tier-1: release build + the root test suite (ROADMAP.md), then the
#      member crates' own suites (`--workspace --exclude aadl-sched`)
#   2. the pinned-timeline gates: the golden diagnose trace and the
#      concurrency-control inversion timeline, named explicitly so a drift
#      in either renders as its own CI line, not a needle in the full suite
#   3. the artifact-store A/B: the smoke harness twice against one fresh
#      `--store` directory — verdict lines must be byte-identical cold vs
#      warm, and the second run must demonstrably serve its Q12 cold pass
#      from the store the first run deposited (cas.hits >= 1)
#   4. the bench harness in smoke mode, three times — with the successor
#      memo disabled, then at 1 and at 4 exploration workers — with diffs
#      over the verdict lines: the engine is deterministic in the thread
#      count and the memo is a pure cache, so any difference is a
#      regression in the parallel dedup path or the memoized step relation
#      (the last run also refreshes BENCH_exploration.json, which is
#      committed — deliberately after the store stage, so the committed
#      report's `cas` section reflects a fresh cold/warm A/B)
#   5. the zone smoke: every bundled model analyzed with `--exhaustive`,
#      with `--exhaustive --zones` (closed-form advance, the default) and
#      with `--exhaustive --zones --zone-advance replay` — exit codes and
#      verdict lines must be byte-identical across all three (delay-zone
#      exploration is a traversal change, never a verdict change, and the
#      closed-form advance is a serving change, never a traversal change),
#      and the long-hyperperiod model must demonstrably collapse quanta
#      (`zone.quanta_collapsed` >= 1) and serve them closed-form
#      (`zone.closed_form_advances` >= 1) in its `--metrics` report
#   6. the daemon smoke: start `aadlschedd`, analyze all four bundled
#      models through `aadlschedc` and diff the exit codes against the
#      `aadlsched` CLI (the two front ends must agree verdict-for-verdict),
#      check that a duplicate request is served from the result cache,
#      assert the live `stats` snapshot parses with monotone request_wall
#      quantiles, then drain gracefully (daemon must exit 0 and write a
#      fleet report carrying the flight-recorder window)
#   7. the hermetic-build audit (path-only deps, pinned dependency graph,
#      obs dependency-free, `cargo doc` with warnings denied — see
#      tools/check_hermetic.sh)
#
# Run from anywhere:
#
#   tools/ci.sh
#
# Exit code 0 = everything green.

set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace crates: cargo test -q --workspace --exclude aadl-sched =="
# The root manifest is a package, so plain `cargo test` covers only the
# root crate; this line runs every member crate's own suites (acsr
# interning props, versa, obs, the served daemon + PROTOCOL.md replay
# tests, ...) without repeating the root tests.
cargo test -q --workspace --exclude aadl-sched

echo "== golden timelines: diagnose + inversion =="
cargo test -q --test golden_diagnose --test inversion

mkdir -p target/ci
# Verdict lines only, wall-clock fields stripped: everything else must be
# byte-identical between runs that are allowed to differ only in timing.
extract_verdicts() {
  grep -E "schedulable|VERDICT" | sed -E 's/ time=[^ ]*//'
}

echo "== artifact store: cold vs warm verdicts must be byte-identical =="
rm -rf target/ci/cas
cargo run --release -q -p bench --bin harness -- --smoke --store target/ci/cas \
  | extract_verdicts > target/ci/verdicts-cold.txt
cargo run --release -q -p bench --bin harness -- --smoke --store target/ci/cas \
  > target/ci/harness-warm.txt
extract_verdicts < target/ci/harness-warm.txt > target/ci/verdicts-warm.txt
diff -u target/ci/verdicts-cold.txt target/ci/verdicts-warm.txt
echo "artifact store: verdicts identical cold vs warm"
# The second run must have served its Q12 cold pass from the store the
# first run deposited: its cold-pass counter line reports hits, and the
# refreshed BENCH report carries the cas section.
cold_hits="$(sed -n 's/^cold pass: hits=\([0-9]*\).*/\1/p' target/ci/harness-warm.txt)"
if [ "${cold_hits:-0}" -lt 1 ]; then
  echo "artifact store: second run did not hit the store (cold-pass hits=${cold_hits:-absent})"
  exit 1
fi
if ! grep -q '"cas"' BENCH_exploration.json; then
  echo "artifact store: BENCH_exploration.json lost its cas section"
  exit 1
fi
echo "artifact store: second run served $cold_hits artifact(s) from the store"

echo "== bench harness (smoke): verdicts must agree across workers and memo =="
# The --no-memo run goes first so the committed BENCH_exploration.json
# reflects the shipped default (the final --threads 4 run).
cargo run --release -q -p bench --bin harness -- --smoke --threads 1 --no-memo \
  | extract_verdicts > target/ci/verdicts-nomemo.txt
cargo run --release -q -p bench --bin harness -- --smoke --threads 1 \
  | extract_verdicts > target/ci/verdicts-t1.txt
cargo run --release -q -p bench --bin harness -- --smoke --threads 4 \
  | extract_verdicts > target/ci/verdicts-t4.txt
diff -u target/ci/verdicts-t1.txt target/ci/verdicts-t4.txt
echo "verdicts identical across worker counts"
diff -u target/ci/verdicts-t1.txt target/ci/verdicts-nomemo.txt
echo "verdicts identical with the successor memo disabled"

echo "== zone smoke: --zones verdicts must match the concrete engine =="
# Every bundled model, three engines: concrete, closed-form zones (the
# default) and replay zones (--zone-advance replay). Exit codes and
# verdict lines must be byte-identical across all three (state counts
# intentionally differ — zone mode materializes fewer, which the
# longperiod run below proves is actually happening via the
# zone.quanta_collapsed counter; that the closed-form path is actually
# serving, not silently falling back to replay, is proved the same way
# via zone.closed_form_advances).
for model in cruise_control flight_control inversion overloaded producer_handler longperiod; do
  zone_flags="--exhaustive --zones"
  if [ "$model" = longperiod ]; then
    zone_flags="$zone_flags --metrics target/ci/zones-metrics.json"
  fi
  concrete_code=0
  target/release/aadlsched "examples/models/$model.aadl" --exhaustive \
    > target/ci/zone-concrete.txt || concrete_code=$?
  zones_code=0
  target/release/aadlsched "examples/models/$model.aadl" $zone_flags \
    > target/ci/zone-zoned.txt || zones_code=$?
  replay_code=0
  target/release/aadlsched "examples/models/$model.aadl" --exhaustive --zones \
    --zone-advance replay > target/ci/zone-replay.txt || replay_code=$?
  if [ "$concrete_code" -ne "$zones_code" ] || [ "$concrete_code" -ne "$replay_code" ]; then
    echo "zone smoke: $model: exit codes differ (concrete $concrete_code, closed $zones_code, replay $replay_code)"
    exit 1
  fi
  if ! diff -u <(extract_verdicts < target/ci/zone-concrete.txt) \
               <(extract_verdicts < target/ci/zone-zoned.txt); then
    echo "zone smoke: $model: verdict lines differ (concrete vs closed-form zones)"
    exit 1
  fi
  if ! diff -u <(extract_verdicts < target/ci/zone-replay.txt) \
               <(extract_verdicts < target/ci/zone-zoned.txt); then
    echo "zone smoke: $model: verdict lines differ (replay vs closed-form zones)"
    exit 1
  fi
  echo "zone smoke: $model: verdicts agree across all three engines (exit $concrete_code)"
done
collapsed="$(grep -o '"zone.quanta_collapsed": [0-9]*' target/ci/zones-metrics.json \
  | grep -o '[0-9]*$')"
if [ "${collapsed:-0}" -lt 1 ]; then
  echo "zone smoke: longperiod collapsed no quanta (zone.quanta_collapsed=${collapsed:-absent})"
  exit 1
fi
closed_advances="$(grep -o '"zone.closed_form_advances": [0-9]*' target/ci/zones-metrics.json \
  | grep -o '[0-9]*$')"
if [ "${closed_advances:-0}" -lt 1 ]; then
  echo "zone smoke: longperiod served no closed-form advances (zone.closed_form_advances=${closed_advances:-absent})"
  exit 1
fi
echo "zone smoke: longperiod collapsed $collapsed quanta ($closed_advances closed-form advances)"

echo "== daemon smoke: aadlschedd verdicts must match the CLI =="
# Stage 1 built the workspace binaries; run them directly so the smoke
# stage measures the daemon, not cargo.
cargo build --release -q -p served
daemon_log=target/ci/aadlschedd.log
target/release/aadlschedd --addr 127.0.0.1:0 --metrics target/ci/fleet.json \
  > "$daemon_log" &
daemon_pid=$!
# Readiness line: "aadlschedd listening on 127.0.0.1:<port>".
addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^aadlschedd listening on //p' "$daemon_log")"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "daemon smoke: aadlschedd did not print its readiness line"
  exit 1
fi
for model in cruise_control flight_control inversion overloaded; do
  cli_code=0
  target/release/aadlsched "examples/models/$model.aadl" --exhaustive \
    > /dev/null || cli_code=$?
  daemon_code=0
  target/release/aadlschedc --addr "$addr" \
    analyze "examples/models/$model.aadl" --exhaustive \
    > /dev/null || daemon_code=$?
  if [ "$cli_code" -ne "$daemon_code" ]; then
    echo "daemon smoke: $model: CLI exit $cli_code != daemon exit $daemon_code"
    exit 1
  fi
  echo "daemon smoke: $model: verdicts agree (exit $cli_code)"
done
# The four analyses above populated the result cache; a duplicate request
# must be answered from it, and the fleet counter must show the hit.
if ! target/release/aadlschedc --addr "$addr" \
    analyze examples/models/cruise_control.aadl --exhaustive \
    | grep -q '"cached":true'; then
  echo "daemon smoke: duplicate request was not served from the result cache"
  exit 1
fi
hits="$(target/release/aadlschedc --addr "$addr" metrics \
  | grep -o '"served.cache_hits":[0-9]*' | cut -d: -f2)"
if [ "${hits:-0}" -lt 1 ]; then
  echo "daemon smoke: served.cache_hits is ${hits:-absent}, expected >= 1"
  exit 1
fi
# Live introspection: `stats` must answer with exit 0 and parseable
# request_wall quantile estimates, and those estimates must be monotone
# (p50 <= p90 <= p99 — the HistogramSnapshot::quantile contract).
stats_line="$(target/release/aadlschedc --addr "$addr" stats)"
wall="$(printf '%s' "$stats_line" | grep -o '"served.request_wall":{[^}]*')"
p50="$(printf '%s' "$wall" | grep -o '"p50":[0-9]*' | cut -d: -f2)"
p90="$(printf '%s' "$wall" | grep -o '"p90":[0-9]*' | cut -d: -f2)"
p99="$(printf '%s' "$wall" | grep -o '"p99":[0-9]*' | cut -d: -f2)"
if [ -z "${p50:-}" ] || [ -z "${p90:-}" ] || [ -z "${p99:-}" ]; then
  echo "daemon smoke: stats did not carry request_wall p50/p90/p99"
  exit 1
fi
if [ "$p50" -gt "$p90" ] || [ "$p90" -gt "$p99" ]; then
  echo "daemon smoke: request_wall quantiles not monotone: $p50/$p90/$p99"
  exit 1
fi
echo "daemon smoke: stats quantiles monotone (p50=$p50 p90=$p90 p99=$p99 ns)"
target/release/aadlschedc --addr "$addr" health --summary > /dev/null
target/release/aadlschedc --addr "$addr" shutdown > /dev/null
if ! wait "$daemon_pid"; then
  echo "daemon smoke: aadlschedd did not exit 0 on graceful drain"
  exit 1
fi
if [ ! -s target/ci/fleet.json ]; then
  echo "daemon smoke: fleet metrics report was not written"
  exit 1
fi
# The drain must carry the flight-recorder window into the fleet report:
# the five analyze requests above each left an event with an outcome.
if ! grep -q '"flight"' target/ci/fleet.json \
    || ! grep -q '"outcome"' target/ci/fleet.json; then
  echo "daemon smoke: flight recorder window missing from the fleet report"
  exit 1
fi
echo "daemon smoke: cache hit observed, graceful drain, fleet report carries the flight window"

echo "== hermetic audit =="
tools/check_hermetic.sh

echo "ci: OK"
