#!/usr/bin/env bash
# Hermetic-build gate (see DESIGN.md, "Determinism & vendored utilities").
#
# Enforces the workspace invariant that every dependency is a `path`
# dependency inside this repository — no crates.io registry, no git
# dependencies, no network — and that the public API documentation builds
# cleanly. Run from anywhere:
#
#   tools/check_hermetic.sh
#
# Exit code 0 = hermetic and documented; non-zero otherwise.

set -u
cd "$(dirname "$0")/.."

fail=0

# 1. Every [dependencies]/[dev-dependencies]/[workspace.dependencies] entry in
#    every Cargo.toml must be a path dependency (or a profile/package key).
#    A registry dependency looks like `name = "1.2"` or
#    `name = { version = ... }`; a git dependency has `git = ...`.
edges_file="$(mktemp)"
trap 'rm -f "$edges_file"' EXIT
for manifest in Cargo.toml crates/*/Cargo.toml; do
    in_deps=0
    section=""
    lineno=0
    while IFS= read -r line; do
        lineno=$((lineno + 1))
        # Strip comments and surrounding whitespace.
        stripped="${line%%#*}"
        stripped="$(printf '%s' "$stripped" | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//')"
        [ -z "$stripped" ] && continue
        case "$stripped" in
            \[*dependencies\]|\[workspace.dependencies\])
                in_deps=1
                section="${stripped#\[}"
                section="${section%\]}"
                continue
                ;;
            \[*\])
                in_deps=0
                continue
                ;;
        esac
        [ "$in_deps" -eq 1 ] || continue
        key="${stripped%%=*}"
        key="$(printf '%s' "$key" | sed -e 's/[[:space:]]*$//')"
        echo "$manifest $section ${key%.workspace}" >> "$edges_file"
        # `name.workspace = true` — inherited from the (audited) workspace table.
        case "$key" in
            *.workspace) continue ;;
        esac
        # Split `name = value` and classify the value.
        value="${stripped#*=}"
        value="$(printf '%s' "$value" | sed -e 's/^[[:space:]]*//')"
        case "$value" in
            \"*)
                # `name = "1.2"` — a bare version string is a registry dep.
                echo "HERMETIC VIOLATION: $manifest:$lineno: registry dependency: $stripped"
                fail=1
                ;;
            *git*=*)
                echo "HERMETIC VIOLATION: $manifest:$lineno: git dependency: $stripped"
                fail=1
                ;;
            *version*=*)
                echo "HERMETIC VIOLATION: $manifest:$lineno: registry (version) dependency: $stripped"
                fail=1
                ;;
            *path*=*|*workspace*=*)
                : # path or workspace-inherited (the workspace table is checked too)
                ;;
            *)
                echo "HERMETIC VIOLATION: $manifest:$lineno: unrecognized dependency form: $stripped"
                fail=1
                ;;
        esac
    done < "$manifest"
done

if [ "$fail" -ne 0 ]; then
    echo "check_hermetic: dependency audit FAILED"
    exit 1
fi
echo "check_hermetic: all Cargo.toml dependencies are path-only"

# 1a. The dependency graph itself is pinned: every `[dependencies]` /
#     `[dev-dependencies]` / `[workspace.dependencies]` entry in every
#     manifest must appear in the baseline below. Adding a dependency —
#     even a path-only, workspace-internal one — is a deliberate act that
#     must update this list in the same change, so a PR can never grow the
#     graph silently.
baseline_file="$(mktemp)"
sorted_edges_file="$(mktemp)"
trap 'rm -f "$edges_file" "$baseline_file" "$sorted_edges_file"' EXIT
cat > "$baseline_file" <<'EOF'
Cargo.toml dependencies aadl
Cargo.toml dependencies aadl2acsr
Cargo.toml dependencies acsr
Cargo.toml dependencies cas
Cargo.toml dependencies obs
Cargo.toml dependencies sched-baselines
Cargo.toml dependencies versa
Cargo.toml dev-dependencies det
Cargo.toml workspace.dependencies aadl
Cargo.toml workspace.dependencies aadl2acsr
Cargo.toml workspace.dependencies acsr
Cargo.toml workspace.dependencies cas
Cargo.toml workspace.dependencies det
Cargo.toml workspace.dependencies obs
Cargo.toml workspace.dependencies sched-baselines
Cargo.toml workspace.dependencies versa
crates/aadl/Cargo.toml dev-dependencies det
crates/acsr/Cargo.toml dev-dependencies det
crates/acsr/Cargo.toml dev-dependencies versa
crates/baselines/Cargo.toml dependencies aadl
crates/baselines/Cargo.toml dependencies det
crates/bench/Cargo.toml dependencies aadl
crates/bench/Cargo.toml dependencies aadl2acsr
crates/bench/Cargo.toml dependencies acsr
crates/bench/Cargo.toml dependencies cas
crates/bench/Cargo.toml dependencies det
crates/bench/Cargo.toml dependencies obs
crates/bench/Cargo.toml dependencies sched-baselines
crates/bench/Cargo.toml dependencies versa
crates/core/Cargo.toml dependencies aadl
crates/served/Cargo.toml dependencies aadl
crates/served/Cargo.toml dependencies aadl2acsr
crates/served/Cargo.toml dependencies acsr
crates/served/Cargo.toml dependencies cas
crates/served/Cargo.toml dependencies obs
crates/served/Cargo.toml dependencies versa
crates/core/Cargo.toml dependencies acsr
crates/core/Cargo.toml dependencies obs
crates/core/Cargo.toml dependencies versa
crates/versa/Cargo.toml dependencies acsr
crates/versa/Cargo.toml dependencies cas
crates/versa/Cargo.toml dependencies det
crates/versa/Cargo.toml dependencies obs
EOF
LC_ALL=C sort -o "$baseline_file" "$baseline_file"
LC_ALL=C sort -u "$edges_file" > "$sorted_edges_file"
if ! diff -u "$baseline_file" "$sorted_edges_file" > /dev/null; then
    echo "HERMETIC VIOLATION: the dependency graph changed (manifest section name):"
    diff -u "$baseline_file" "$sorted_edges_file" | grep '^[+-][^+-]' || true
    echo "check_hermetic: update the baseline in tools/check_hermetic.sh if this is intentional"
    exit 1
fi
echo "check_hermetic: dependency graph matches the pinned baseline"

# 1b. The observability crate must stay entirely std-only: an EMPTY
#     [dependencies] section. Instrumentation sits on the hot exploration
#     path of every other crate, so it must never pull anything in —
#     not even workspace-internal crates (which would invert the
#     dependency direction and invite cycles).
obs_deps="$(awk '/^\[dependencies\]/{flag=1; next} /^\[/{flag=0} flag' crates/obs/Cargo.toml \
    | sed -e 's/#.*//' -e '/^[[:space:]]*$/d')"
if [ -n "$obs_deps" ]; then
    echo "HERMETIC VIOLATION: crates/obs must have zero dependencies, found:"
    echo "$obs_deps"
    exit 1
fi
echo "check_hermetic: crates/obs is dependency-free"

# 2. The lockfile, if present, must not reference any registry source.
if [ -f Cargo.lock ] && grep -q 'source = "registry' Cargo.lock; then
    echo "HERMETIC VIOLATION: Cargo.lock references a registry source"
    exit 1
fi

# 3. Public API docs must build without warnings (broken intra-doc links,
#    missing docs on public items, etc. are errors).
if ! RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace; then
    echo "check_hermetic: cargo doc FAILED"
    exit 1
fi
echo "check_hermetic: OK"
