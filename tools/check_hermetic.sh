#!/usr/bin/env bash
# Hermetic-build gate (see DESIGN.md, "Determinism & vendored utilities").
#
# Enforces the workspace invariant that every dependency is a `path`
# dependency inside this repository — no crates.io registry, no git
# dependencies, no network — and that the public API documentation builds
# cleanly. Run from anywhere:
#
#   tools/check_hermetic.sh
#
# Exit code 0 = hermetic and documented; non-zero otherwise.

set -u
cd "$(dirname "$0")/.."

fail=0

# 1. Every [dependencies]/[dev-dependencies]/[workspace.dependencies] entry in
#    every Cargo.toml must be a path dependency (or a profile/package key).
#    A registry dependency looks like `name = "1.2"` or
#    `name = { version = ... }`; a git dependency has `git = ...`.
for manifest in Cargo.toml crates/*/Cargo.toml; do
    in_deps=0
    lineno=0
    while IFS= read -r line; do
        lineno=$((lineno + 1))
        # Strip comments and surrounding whitespace.
        stripped="${line%%#*}"
        stripped="$(printf '%s' "$stripped" | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//')"
        [ -z "$stripped" ] && continue
        case "$stripped" in
            \[*dependencies\]|\[workspace.dependencies\])
                in_deps=1
                continue
                ;;
            \[*\])
                in_deps=0
                continue
                ;;
        esac
        [ "$in_deps" -eq 1 ] || continue
        # `name.workspace = true` — inherited from the (audited) workspace table.
        key="${stripped%%=*}"
        key="$(printf '%s' "$key" | sed -e 's/[[:space:]]*$//')"
        case "$key" in
            *.workspace) continue ;;
        esac
        # Split `name = value` and classify the value.
        value="${stripped#*=}"
        value="$(printf '%s' "$value" | sed -e 's/^[[:space:]]*//')"
        case "$value" in
            \"*)
                # `name = "1.2"` — a bare version string is a registry dep.
                echo "HERMETIC VIOLATION: $manifest:$lineno: registry dependency: $stripped"
                fail=1
                ;;
            *git*=*)
                echo "HERMETIC VIOLATION: $manifest:$lineno: git dependency: $stripped"
                fail=1
                ;;
            *version*=*)
                echo "HERMETIC VIOLATION: $manifest:$lineno: registry (version) dependency: $stripped"
                fail=1
                ;;
            *path*=*|*workspace*=*)
                : # path or workspace-inherited (the workspace table is checked too)
                ;;
            *)
                echo "HERMETIC VIOLATION: $manifest:$lineno: unrecognized dependency form: $stripped"
                fail=1
                ;;
        esac
    done < "$manifest"
done

if [ "$fail" -ne 0 ]; then
    echo "check_hermetic: dependency audit FAILED"
    exit 1
fi
echo "check_hermetic: all Cargo.toml dependencies are path-only"

# 1b. The observability crate must stay entirely std-only: an EMPTY
#     [dependencies] section. Instrumentation sits on the hot exploration
#     path of every other crate, so it must never pull anything in —
#     not even workspace-internal crates (which would invert the
#     dependency direction and invite cycles).
obs_deps="$(awk '/^\[dependencies\]/{flag=1; next} /^\[/{flag=0} flag' crates/obs/Cargo.toml \
    | sed -e 's/#.*//' -e '/^[[:space:]]*$/d')"
if [ -n "$obs_deps" ]; then
    echo "HERMETIC VIOLATION: crates/obs must have zero dependencies, found:"
    echo "$obs_deps"
    exit 1
fi
echo "check_hermetic: crates/obs is dependency-free"

# 2. The lockfile, if present, must not reference any registry source.
if [ -f Cargo.lock ] && grep -q 'source = "registry' Cargo.lock; then
    echo "HERMETIC VIOLATION: Cargo.lock references a registry source"
    exit 1
fi

# 3. Public API docs must build without warnings (broken intra-doc links,
#    missing docs on public items, etc. are errors).
if ! RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace; then
    echo "check_hermetic: cargo doc FAILED"
    exit 1
fi
echo "check_hermetic: OK"
