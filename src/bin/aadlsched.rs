//! `aadlsched` — command-line schedulability analysis of AADL models,
//! the CLI equivalent of the paper's OSATE plugin (§5):
//!
//! ```text
//! aadlsched <model.aadl> [RootSystem.impl] [options]
//!
//! When the root system implementation is omitted, the unique system
//! implementation that no other implementation instantiates as a
//! subcomponent is used (the top of the instantiation hierarchy). If the
//! package has several such candidates, the root must be given explicitly.
//!
//! options:
//!   --quantum <ms>    override the scheduling quantum
//!   --protocol <p>    override the Concurrency_Control_Protocol of every
//!                     shared data component (none | pip | pcp, or the full
//!                     AADL literal) without editing the model
//!   --compact         compact translation (drop redundant skeleton scopes)
//!   --exhaustive      explore the full state space (default: stop at the
//!                     first deadlock)
//!   --threads <n>     parallel frontier expansion with n workers
//!   --shards <n>      visited-set shards (default: auto = next power of two
//!                     ≥ threads; never affects results, only contention)
//!   --max-states <n>  state budget (verdict becomes "unknown" if exceeded)
//!   --no-memo         disable successor memoization (escape hatch; verdicts
//!                     are identical either way, only the wall time changes)
//!   --zones           delay-zone exploration: collapse forced runs of
//!                     quanta into single bulk steps (identical verdicts
//!                     and traces, far fewer materialized states on models
//!                     with long uncontended stretches; ignored with --dot,
//!                     which needs the concrete per-quantum LTS — a warning
//!                     is printed on stderr when both are given)
//!   --zone-advance <closed|replay>  how zone mode follows a forced run:
//!                     `closed` (the default) advances through cached
//!                     per-shape delay derivatives in O(#parameters);
//!                     `replay` re-derives every quantum through the step
//!                     relation. Verdicts and traces are identical — the
//!                     switch exists for honest A/B timing
//!   --zone-cap <n>    per-edge step cap in zone mode (default 4096; longer
//!                     forced runs chain several edges, so the value never
//!                     changes verdicts, only edge granularity)
//!   --store <s>       persistent cross-run artifact store: a directory to
//!                     consult before exploring and deposit verdicts into
//!                     after, `readonly:<dir>` to consult without writing,
//!                     or `off` (the default — no store is touched)
//!   --tree            print the instance tree with bindings and timing
//!   --acsr            print the generated ACSR process definitions
//!   --dot <file>      write the explored LTS as Graphviz dot
//!   --metrics <file>  write a schema-versioned JSON run report
//!   --trace-events <file>  write the span/event stream as JSON lines
//!   --progress        emit rate-limited exploration progress on stderr
//! ```
//!
//! Exit codes: 0 schedulable, 1 not schedulable, 2 usage/input error,
//! 3 unknown (state budget exhausted before a verdict).
//!
//! For byte-stable reports (tests, diffing), set `AADLSCHED_FAKE_CLOCK=<ns>`
//! to replace the monotonic clock with a fake that advances by the given
//! number of nanoseconds per reading.

use std::process::ExitCode;

use aadl::instance::instantiate;
use aadl::parser::parse_package;
use aadl::properties::{ConcurrencyControlProtocol, TimeVal};
use aadl2acsr::{
    analyze_translated, translate, AnalysisOptions, TranslateError, TranslateOptions,
    EXIT_INPUT_ERROR,
};
use obs::{Json, JsonLinesSink, Sink};

struct Args {
    file: String,
    root: Option<String>,
    quantum_ms: Option<i64>,
    protocol: Option<ConcurrencyControlProtocol>,
    compact: bool,
    exhaustive: bool,
    threads: usize,
    shards: usize,
    max_states: Option<usize>,
    no_memo: bool,
    zones: bool,
    zone_cap: Option<usize>,
    zone_advance: Option<versa::ZoneAdvance>,
    store: Option<String>,
    print_acsr: bool,
    print_tree: bool,
    dot: Option<String>,
    metrics: Option<String>,
    trace_events: Option<String>,
    progress: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: aadlsched <model.aadl> [RootSystem.impl] \
         [--quantum <ms>] [--protocol <none|pip|pcp>] [--compact] \
         [--exhaustive] [--threads <n>] [--shards <n>] \
         [--max-states <n>] [--no-memo] [--zones] \
         [--zone-advance <closed|replay>] [--zone-cap <n>] \
         [--store <dir|readonly:dir|off>] \
         [--tree] [--acsr] [--dot <file>] \
         [--metrics <file>] [--trace-events <file>] [--progress]\n\
         (omit RootSystem.impl to analyze the package's top-level system \
         implementation)"
    );
    ExitCode::from(EXIT_INPUT_ERROR)
}

fn parse_args() -> Result<Args, String> {
    let mut raw = std::env::args().skip(1).peekable();
    let file = raw.next().ok_or("missing <model.aadl>")?;
    let root = match raw.peek() {
        Some(a) if !a.starts_with("--") => raw.next(),
        _ => None,
    };
    let mut args = Args {
        file,
        root,
        quantum_ms: None,
        protocol: None,
        compact: false,
        exhaustive: false,
        threads: 1,
        shards: 0,
        max_states: None,
        no_memo: false,
        zones: false,
        zone_cap: None,
        zone_advance: None,
        store: None,
        print_acsr: false,
        print_tree: false,
        dot: None,
        metrics: None,
        trace_events: None,
        progress: false,
    };
    while let Some(flag) = raw.next() {
        match flag.as_str() {
            "--quantum" => {
                args.quantum_ms = Some(
                    raw.next()
                        .ok_or("--quantum needs a value")?
                        .parse()
                        .map_err(|e| format!("--quantum: {e}"))?,
                )
            }
            "--protocol" => {
                let raw = raw.next().ok_or("--protocol needs a value")?;
                args.protocol = Some(ConcurrencyControlProtocol::parse(&raw).ok_or_else(
                    || format!("--protocol: unknown protocol `{raw}` (none | pip | pcp)"),
                )?)
            }
            "--compact" => args.compact = true,
            "--exhaustive" => args.exhaustive = true,
            "--threads" => {
                args.threads = raw
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--shards" => {
                args.shards = raw
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--max-states" => {
                args.max_states = Some(
                    raw.next()
                        .ok_or("--max-states needs a value")?
                        .parse()
                        .map_err(|e| format!("--max-states: {e}"))?,
                )
            }
            "--no-memo" => args.no_memo = true,
            "--zones" => args.zones = true,
            "--zone-cap" => {
                let cap: usize = raw
                    .next()
                    .ok_or("--zone-cap needs a value")?
                    .parse()
                    .map_err(|e| format!("--zone-cap: {e}"))?;
                if cap == 0 {
                    return Err("--zone-cap must be at least 1".into());
                }
                args.zone_cap = Some(cap);
            }
            "--zone-advance" => {
                let mode = raw.next().ok_or("--zone-advance needs <closed|replay>")?;
                args.zone_advance = Some(match mode.as_str() {
                    "closed" => versa::ZoneAdvance::Closed,
                    "replay" => versa::ZoneAdvance::Replay,
                    other => {
                        return Err(format!(
                            "--zone-advance: unknown mode `{other}` (closed | replay)"
                        ))
                    }
                });
            }
            "--store" => {
                args.store = Some(raw.next().ok_or("--store needs <dir|readonly:dir|off>")?)
            }
            "--acsr" => args.print_acsr = true,
            "--tree" => args.print_tree = true,
            "--dot" => args.dot = Some(raw.next().ok_or("--dot needs a file")?),
            "--metrics" => {
                args.metrics = Some(raw.next().ok_or("--metrics needs a file")?)
            }
            "--trace-events" => {
                args.trace_events = Some(raw.next().ok_or("--trace-events needs a file")?)
            }
            "--progress" => args.progress = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Build the run recorder from the CLI flags: disabled (a no-op) unless any
/// observability output was requested, a fake clock when
/// `AADLSCHED_FAKE_CLOCK` asks for byte-stable reports.
fn build_recorder(args: &Args) -> Result<obs::Recorder, String> {
    if args.metrics.is_none() && args.trace_events.is_none() && !args.progress {
        return Ok(obs::Recorder::disabled());
    }
    let rec = match std::env::var("AADLSCHED_FAKE_CLOCK") {
        Ok(tick) => {
            let tick: u64 = tick
                .parse()
                .map_err(|e| format!("AADLSCHED_FAKE_CLOCK must be a tick in ns: {e}"))?;
            obs::Recorder::with_clock(Box::new(obs::FakeClock::new(tick)))
        }
        Err(_) => obs::Recorder::enabled(),
    };
    Ok(if args.progress {
        rec.with_progress()
    } else {
        rec
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let rec = match build_recorder(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_INPUT_ERROR);
        }
    };

    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", args.file);
            return ExitCode::from(EXIT_INPUT_ERROR);
        }
    };
    let pkg = match parse_package(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: parse error: {e}", args.file);
            return ExitCode::from(EXIT_INPUT_ERROR);
        }
    };
    let root = match &args.root {
        Some(r) => r.clone(),
        None => match pkg.default_root() {
            Ok(r) => {
                println!("root system: {r} (auto-selected)");
                r
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_INPUT_ERROR);
            }
        },
    };
    let model = match instantiate(&pkg, &root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("instantiation error: {e}");
            return ExitCode::from(EXIT_INPUT_ERROR);
        }
    };
    println!(
        "instance model: {} components, {} thread(s), {} processor(s), {} semantic connection(s)",
        model.num_components(),
        model.threads().count(),
        model.processors().count(),
        model.connections.len()
    );
    if args.print_tree {
        println!("\n{}", model.render_tree());
    }

    if let Some(p) = args.protocol {
        println!("concurrency control: {p} (forced by --protocol)");
    }
    let topts = TranslateOptions {
        compact: args.compact,
        quantum: args.quantum_ms.map(TimeVal::ms),
        protocol_override: args.protocol,
        obs: rec.clone(),
        ..Default::default()
    };
    let tm = match translate(&model, &topts) {
        Ok(tm) => tm,
        Err(TranslateError::Validation(errs)) => {
            // Point the user at the exact property association the checker
            // rejected, with its source position when the model came from
            // text (builder-made models carry no spans).
            eprintln!("translation error: the model violates the translation's assumptions (§4.1):");
            for e in &errs {
                match (e.property(), e.span()) {
                    (Some(prop), Some(span)) => {
                        eprintln!("  - {e}\n    (`{prop}` at {}:{span})", args.file)
                    }
                    (Some(prop), None) => eprintln!("  - {e}\n    (property `{prop}`)"),
                    _ => eprintln!("  - {e}"),
                }
            }
            return ExitCode::from(EXIT_INPUT_ERROR);
        }
        Err(e) => {
            eprintln!("translation error: {e}");
            return ExitCode::from(EXIT_INPUT_ERROR);
        }
    };
    println!(
        "translation: {} thread processes, {} dispatchers, {} queues, quantum = {} µs",
        tm.inventory.threads,
        tm.inventory.dispatchers,
        tm.inventory.queues,
        tm.quantum_ps / 1_000_000
    );
    if args.print_acsr {
        println!("\nACSR definitions:");
        for (_, def) in tm.env.defs() {
            if let Some(body) = &def.body {
                println!("  {} = {}", def.name, tm.env.display_proc(body));
            }
        }
        println!();
    }

    let mut aopts = if args.exhaustive {
        AnalysisOptions::exhaustive()
    } else {
        AnalysisOptions::default()
    };
    aopts.explore.threads = args.threads;
    aopts.explore.shards = args.shards;
    if let Some(max) = args.max_states {
        aopts.explore.max_states = max;
    }
    aopts.explore.memo = !args.no_memo;
    aopts.explore.zones = args.zones;
    if let Some(cap) = args.zone_cap {
        aopts.explore.zone_cap = cap;
    }
    if let Some(advance) = args.zone_advance {
        aopts.explore.zone_advance = advance;
    }
    aopts.explore.collect_lts = args.dot.is_some();
    if args.zones && args.dot.is_some() {
        eprintln!(
            "warning: --dot needs the concrete per-quantum LTS, so --zones is \
             ignored for this run; drop --dot to explore with delay zones"
        );
    }
    aopts.explore.obs = rec.clone();
    // The persistent artifact store. Off by default, so every store-less
    // invocation (including the fake-clock snapshot tests) is byte-identical
    // to pre-store builds.
    match args.store.as_deref() {
        None | Some("off") => {}
        Some(spec) => {
            let (dir, mode) = match spec.strip_prefix("readonly:") {
                Some(dir) => (dir, cas::Mode::ReadOnly),
                None => (spec, cas::Mode::ReadWrite),
            };
            match cas::CasStore::open(dir, mode) {
                Ok(store) => {
                    println!(
                        "artifact store: {dir} ({})",
                        if store.read_only() { "read-only" } else { "read-write" }
                    );
                    aopts.explore.cas = Some(std::sync::Arc::new(store));
                }
                Err(e) => {
                    eprintln!("error: cannot open artifact store `{dir}`: {e}");
                    return ExitCode::from(EXIT_INPUT_ERROR);
                }
            }
        }
    }

    let verdict = analyze_translated(&model, &tm, &aopts);
    println!("exploration: {}", verdict.stats());

    if let Some(dot_file) = &args.dot {
        // Re-run with LTS collection through versa directly for the export.
        let mut opts = aopts.explore.clone();
        opts.collect_lts = true;
        opts.stop_at_first_deadlock = false;
        let ex = versa::explore(&tm.env, &tm.initial, &opts);
        if let Some(lts) = &ex.lts {
            match std::fs::write(dot_file, lts.to_dot(&tm.env)) {
                Ok(()) => println!("LTS written to {dot_file}"),
                Err(e) => eprintln!("cannot write {dot_file}: {e}"),
            }
        }
    }

    if rec.is_enabled() {
        let run = rec.finish();
        if let Some(path) = &args.trace_events {
            let mut buf = Vec::new();
            if let Err(e) = JsonLinesSink.emit(&run, &mut buf) {
                eprintln!("cannot render trace events: {e}");
                return ExitCode::from(EXIT_INPUT_ERROR);
            }
            if let Err(e) = std::fs::write(path, buf) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_INPUT_ERROR);
            }
            println!("trace events written to {path}");
        }
        if let Some(path) = &args.metrics {
            // The run id hashes the *inputs* — model source + the canonical
            // option string — never the wall clock, so identical invocations
            // produce identical ids.
            let canon_opts = format!(
                "root={root};quantum_ms={:?};compact={};exhaustive={};threads={};shards={};max_states={:?};memo={};zones={};zone_cap={};zone_advance={}",
                args.quantum_ms, args.compact, args.exhaustive, args.threads, args.shards,
                args.max_states, !args.no_memo, args.zones,
                aopts.explore.zone_cap, aopts.explore.zone_advance
            );
            let run_id = obs::run_id(&[source.as_bytes(), canon_opts.as_bytes()]);
            let mut report = obs::Report::new(&run_id, "aadlsched");
            report.set(
                "model",
                Json::obj([
                    ("file", Json::from(args.file.as_str())),
                    ("root", Json::from(root.as_str())),
                    ("components", Json::from(model.num_components())),
                    ("threads", Json::from(model.threads().count())),
                    ("processors", Json::from(model.processors().count())),
                    ("connections", Json::from(model.connections.len())),
                ]),
            );
            report.set(
                "translation",
                Json::obj([
                    ("threads", Json::from(tm.inventory.threads)),
                    ("dispatchers", Json::from(tm.inventory.dispatchers)),
                    ("queues", Json::from(tm.inventory.queues)),
                    ("device_gens", Json::from(tm.inventory.device_gens)),
                    ("observers", Json::from(tm.inventory.observers)),
                    ("defs", Json::from(tm.env.num_defs())),
                    ("quantum_ps", Json::Int(tm.quantum_ps)),
                ]),
            );
            report.set(
                "exploration",
                Json::obj([
                    ("states", Json::from(verdict.stats().states)),
                    ("transitions", Json::from(verdict.stats().transitions)),
                    ("levels", Json::from(verdict.stats().levels)),
                    ("peak_frontier", Json::from(verdict.stats().peak_frontier)),
                    ("dedup_hits", Json::from(verdict.stats().dedup_hits)),
                    ("deadlocks", Json::from(verdict.stats().deadlocks)),
                    ("memo_hits", Json::from(verdict.stats().memo_hits)),
                    ("memo_misses", Json::from(verdict.stats().memo_misses)),
                    ("memo_evictions", Json::from(verdict.stats().memo_evictions)),
                    ("unique_subterms", Json::from(verdict.stats().unique_subterms)),
                ]),
            );
            report.set(
                "verdict",
                Json::obj([
                    ("schedulable", Json::Bool(verdict.schedulable())),
                    ("truncated", Json::Bool(verdict.truncated())),
                ]),
            );
            report.attach_run(&run);
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_INPUT_ERROR);
            }
            println!("metrics written to {path}");
        }
    }

    // The exit code derives from the typed outcome in exactly one place
    // (AnalysisOutcome::exit_code); the CLI only chooses the human wording.
    match verdict.reason_str() {
        Some("cancelled") => println!("VERDICT: unknown (cancelled)"),
        Some(_) => println!("VERDICT: unknown (state budget exhausted)"),
        None if verdict.schedulable() => {
            println!("VERDICT: schedulable — every thread meets its deadline in every behaviour")
        }
        None => {
            println!("VERDICT: NOT schedulable");
            if let Some(scenario) = verdict.scenario() {
                println!("\n{}", scenario.render());
            }
        }
    }
    ExitCode::from(verdict.exit_code())
}
