//! # aadl-sched — umbrella crate
//!
//! Re-exports the whole tool chain for schedulability analysis of AADL models
//! via translation to the ACSR process algebra, reproducing Sokolsky, Lee &
//! Clarke, *Schedulability Analysis of AADL Models* (IPDPS 2006).
//!
//! * [`aadl`] — the AADL front end: declarative model, textual parser,
//!   instantiation, semantic connections, bindings, validation.
//! * [`acsr`] — the ACSR real-time process algebra.
//! * [`versa`] — state-space exploration and deadlock detection.
//! * [`aadl2acsr`] — the paper's contribution: the semantics-preserving
//!   AADL → ACSR translation, scheduling-policy encodings, schedulability
//!   analysis and AADL-level diagnostics.
//! * [`sched_baselines`] — classical schedulability tests and a Cheddar-style
//!   discrete-time simulator used as comparison baselines.
//!
//! See the workspace `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-reproduction index.

pub use aadl;
pub use aadl2acsr;
pub use acsr;
pub use sched_baselines;
pub use versa;
